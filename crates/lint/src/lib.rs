//! `scan-lint` — vendored zero-dependency static analysis for the
//! scan-BIST workspace.
//!
//! The workspace's load-bearing invariants — bit-identical serial vs
//! parallel diagnosis, the offline zero-dependency build, every random
//! draw flowing through pinned `scan-rng` streams, stdout reserved for
//! machine-readable payloads — were enforced only by convention.
//! This crate makes them machine-checked: a small line/column-tracking
//! Rust lexer (no external parser) feeds a rule engine that walks
//! every `.rs` file and every `Cargo.toml` in the workspace and
//! reports violations with an id, severity, span, and fix-hint.
//!
//! The rule set (see `docs/LINTS.md` for the full catalogue):
//!
//! | id | name | contract |
//! |---|---|---|
//! | L001 | `no-external-deps` | every dependency is a workspace path dep |
//! | L002 | `no-ambient-rng` | no `thread_rng`/`rand::`/`from_entropy` |
//! | L003 | `no-wall-clock-in-core` | clocks only in `crates/bench`+`crates/obs` |
//! | L004 | `no-unordered-iteration` | no `HashMap`/`HashSet` in deterministic crates |
//! | L005 | `unsafe-needs-safety-comment` | every `unsafe` carries `// SAFETY:` |
//! | L006 | `stdout-cleanliness` | stdout only in `crates/cli` + experiment bins |
//! | L007 | `nonexhaustive-public-errors` | pub error enums are `#[non_exhaustive]` |
//! | L008 | `no-silent-empty-intersection` | call `diagnose_checked`, not `diagnose` |
//! | L009 | `no-blocking-io-inside-span` | no (transitive) blocking I/O under a live span |
//! | L010 | `no-unwrap-in-obs-hot-path` | no `unwrap`/`expect` in obs serve/slo/recorder/timeseries |
//! | L011 | `no-unbounded-queue` | no `VecDeque`/`mpsc::channel()` in the daemon's admission path |
//! | L012 | `panic-freedom` | no panic site reachable from configured `[roots]` |
//! | L013 | `lock-order` | nested lock acquisitions follow one global order |
//! | L014 | `determinism-taint` | core functions never (transitively) reach RNG/clock/`HashMap` |
//!
//! L009 and L012–L014 are *semantic* rules: they run on a workspace
//! call graph ([`model`] → [`graph`] → [`reach`]) and report witness
//! call chains. The rest are lexical token rules.
//!
//! Suppression is always explicit and always justified: a per-rule
//! path allowance in the checked-in `lint.toml` (with a mandatory
//! `reason`), or an inline `// lint:allow(L00x): reason` on (or one
//! line above) the offending line. A directive without a reason is
//! itself a finding.
//!
//! `scan-lint --deny` runs as a gating step in `scripts/verify.sh`;
//! the same engine backs the `scanbist lint` subcommand.

pub mod config;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod reach;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::{Config, ConfigError};
pub use findings::{ChainHop, Finding, LintReport, Severity};

/// Lints the workspace rooted at `root` under `config`.
///
/// Findings suppressed by `lint.toml` allow-paths or inline
/// `// lint:allow` directives are returned with their
/// [`Finding::suppressed`] reason set; everything else counts toward
/// [`LintReport::deny_count`].
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot
/// be read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<LintReport> {
    lint_workspace_with_graph(root, config).map(|(report, _)| report)
}

/// Like [`lint_workspace`], but also returns the workspace call graph
/// the semantic rules ran on, for `--graph` NDJSON export.
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot
/// be read.
pub fn lint_workspace_with_graph(
    root: &Path,
    config: &Config,
) -> std::io::Result<(LintReport, graph::Graph)> {
    let (rust_files, manifests) = walk::collect(root, config)?;
    let mut manifest_sources = Vec::with_capacity(manifests.len());
    for file in &manifests {
        manifest_sources.push((file.rel.clone(), std::fs::read_to_string(&file.path)?));
    }
    let mut rust_sources = Vec::with_capacity(rust_files.len());
    for file in &rust_files {
        rust_sources.push((file.rel.clone(), std::fs::read_to_string(&file.path)?));
    }
    Ok(lint_sources(&rust_sources, &manifest_sources, config))
}

/// The in-memory lint core: runs every rule over already-read sources.
/// `rust` and `manifests` are `(root-relative path, contents)` pairs.
/// Exposed so tests can lint synthetic workspaces without touching the
/// filesystem.
#[must_use]
pub fn lint_sources(
    rust: &[(String, String)],
    manifests: &[(String, String)],
    config: &Config,
) -> (LintReport, graph::Graph) {
    let mut report = LintReport {
        rust_files: rust.len(),
        manifests: manifests.len(),
        ..LintReport::default()
    };
    let crate_map = crate_idents(manifests);
    for (rel, text) in manifests {
        let mut found = rules::check_manifest(rel, text);
        apply_config_allows(config, &mut found);
        report.findings.append(&mut found);
    }
    let mut models = Vec::with_capacity(rust.len());
    let mut allows_by_file: Vec<(usize, Vec<rules::InlineAllow>)> = Vec::new();
    for (idx, (rel, text)) in rust.iter().enumerate() {
        let tokens = lexer::tokenize(text);
        let (allows, mut malformed) = rules::inline_allows(rel, &tokens);
        let (mut found, unsafe_lines) = rules::check_rust(rel, &tokens);
        for line in unsafe_lines {
            report.unsafe_sites.push((rel.clone(), line));
        }
        for finding in &mut found {
            suppress(config, &allows, finding);
        }
        report.findings.append(&mut found);
        report.findings.append(&mut malformed);
        models.push(model::build_file_model(rel, &crate_ident_for(rel, &crate_map), &tokens));
        if !allows.is_empty() {
            allows_by_file.push((idx, allows));
        }
    }
    let workspace_graph = graph::Graph::build(&models);
    let mut semantic = rules::check_semantic(&workspace_graph, config);
    for finding in &mut semantic {
        let allows = allows_by_file
            .iter()
            .find(|(idx, _)| rust[*idx].0 == finding.file)
            .map_or(&[][..], |(_, a)| a.as_slice());
        suppress(config, allows, finding);
    }
    report.findings.append(&mut semantic);
    (report, workspace_graph)
}

/// Applies `lint.toml` allow-paths and inline allows to one finding.
fn suppress(config: &Config, allows: &[rules::InlineAllow], finding: &mut Finding) {
    if let Some(reason) = config.allow_reason(finding.rule, &finding.file) {
        finding.suppressed = Some(format!("lint.toml: {reason}"));
        return;
    }
    if let Some(allow) = allows
        .iter()
        .find(|a| a.rule == finding.rule && (finding.line == a.line || finding.line == a.line + 1))
    {
        finding.suppressed = Some(allow.reason.clone());
    }
}

/// Parses each manifest's `[package] name` into a (directory-prefix,
/// crate-ident) map; the root manifest maps the empty prefix.
fn crate_idents(manifests: &[(String, String)]) -> Vec<(String, String)> {
    let mut map = Vec::new();
    for (rel, text) in manifests {
        let dir = rel.strip_suffix("Cargo.toml").unwrap_or(rel);
        let dir = dir.trim_end_matches('/').to_string();
        let mut in_package = false;
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
                continue;
            }
            if !in_package {
                continue;
            }
            if let Some((key, value)) = line.split_once('=') {
                if key.trim() == "name" {
                    let name = value.trim().trim_matches('"');
                    map.push((dir.clone(), name.replace('-', "_")));
                    break;
                }
            }
        }
    }
    // Longest prefix first so nested crates win over the root package.
    map.sort_by_key(|(prefix, _)| std::cmp::Reverse(prefix.len()));
    map
}

/// Crate ident for a file: the longest manifest directory prefix, or
/// the path-derived fallback.
fn crate_ident_for(rel: &str, crate_map: &[(String, String)]) -> String {
    for (dir, ident) in crate_map {
        if dir.is_empty() || rel == dir || rel.strip_prefix(dir.as_str()).is_some_and(|r| r.starts_with('/')) {
            if dir.is_empty() && rel.starts_with("crates/") {
                continue; // the umbrella package does not own crate members
            }
            return ident.clone();
        }
    }
    graph::fallback_crate_ident(rel)
}

/// Applies `lint.toml` allow-paths to manifest findings (inline
/// allows do not exist in TOML files).
fn apply_config_allows(config: &Config, findings: &mut [Finding]) {
    for finding in findings {
        if let Some(reason) = config.allow_reason(finding.rule, &finding.file) {
            finding.suppressed = Some(format!("lint.toml: {reason}"));
        }
    }
}

/// Loads `lint.toml` from `root` if present, or an empty config.
///
/// # Errors
///
/// Returns the rendered [`ConfigError`] when the file exists but does
/// not parse — a broken suppression file must fail loudly, not lint
/// with defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}
