//! `scan-lint` — vendored zero-dependency static analysis for the
//! scan-BIST workspace.
//!
//! The workspace's load-bearing invariants — bit-identical serial vs
//! parallel diagnosis, the offline zero-dependency build, every random
//! draw flowing through pinned `scan-rng` streams, stdout reserved for
//! machine-readable payloads — were enforced only by convention.
//! This crate makes them machine-checked: a small line/column-tracking
//! Rust lexer (no external parser) feeds a rule engine that walks
//! every `.rs` file and every `Cargo.toml` in the workspace and
//! reports violations with an id, severity, span, and fix-hint.
//!
//! The rule set (see `docs/LINTS.md` for the full catalogue):
//!
//! | id | name | contract |
//! |---|---|---|
//! | L001 | `no-external-deps` | every dependency is a workspace path dep |
//! | L002 | `no-ambient-rng` | no `thread_rng`/`rand::`/`from_entropy` |
//! | L003 | `no-wall-clock-in-core` | clocks only in `crates/bench`+`crates/obs` |
//! | L004 | `no-unordered-iteration` | no `HashMap`/`HashSet` in deterministic crates |
//! | L005 | `unsafe-needs-safety-comment` | every `unsafe` carries `// SAFETY:` |
//! | L006 | `stdout-cleanliness` | stdout only in `crates/cli` + experiment bins |
//! | L007 | `nonexhaustive-public-errors` | pub error enums are `#[non_exhaustive]` |
//! | L008 | `no-silent-empty-intersection` | call `diagnose_checked`, not `diagnose` |
//! | L009 | `no-blocking-io-inside-span` | no socket/file writes under a live span |
//! | L010 | `no-unwrap-in-obs-hot-path` | no `unwrap`/`expect` in obs serve/slo/recorder/timeseries |
//! | L011 | `no-unbounded-queue` | no `VecDeque`/`mpsc::channel()` in the daemon's admission path |
//!
//! Suppression is always explicit and always justified: a per-rule
//! path allowance in the checked-in `lint.toml` (with a mandatory
//! `reason`), or an inline `// lint:allow(L00x): reason` on (or one
//! line above) the offending line. A directive without a reason is
//! itself a finding.
//!
//! `scan-lint --deny` runs as a gating step in `scripts/verify.sh`;
//! the same engine backs the `scanbist lint` subcommand.

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::{Config, ConfigError};
pub use findings::{Finding, LintReport, Severity};

/// Lints the workspace rooted at `root` under `config`.
///
/// Findings suppressed by `lint.toml` allow-paths or inline
/// `// lint:allow` directives are returned with their
/// [`Finding::suppressed`] reason set; everything else counts toward
/// [`LintReport::deny_count`].
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot
/// be read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<LintReport> {
    let (rust_files, manifests) = walk::collect(root, config)?;
    let mut report = LintReport {
        rust_files: rust_files.len(),
        manifests: manifests.len(),
        ..LintReport::default()
    };
    for file in &manifests {
        let text = std::fs::read_to_string(&file.path)?;
        let mut found = rules::check_manifest(&file.rel, &text);
        apply_config_allows(config, &mut found);
        report.findings.append(&mut found);
    }
    for file in &rust_files {
        let text = std::fs::read_to_string(&file.path)?;
        let tokens = lexer::tokenize(&text);
        let (allows, mut malformed) = rules::inline_allows(&file.rel, &tokens);
        let (mut found, unsafe_lines) = rules::check_rust(&file.rel, &tokens);
        for line in unsafe_lines {
            report.unsafe_sites.push((file.rel.clone(), line));
        }
        for finding in &mut found {
            if let Some(reason) = config.allow_reason(finding.rule, &finding.file) {
                finding.suppressed = Some(format!("lint.toml: {reason}"));
                continue;
            }
            if let Some(allow) = allows.iter().find(|a| {
                a.rule == finding.rule
                    && (finding.line == a.line || finding.line == a.line + 1)
            }) {
                finding.suppressed = Some(allow.reason.clone());
            }
        }
        report.findings.append(&mut found);
        report.findings.append(&mut malformed);
    }
    Ok(report)
}

/// Applies `lint.toml` allow-paths to manifest findings (inline
/// allows do not exist in TOML files).
fn apply_config_allows(config: &Config, findings: &mut [Finding]) {
    for finding in findings {
        if let Some(reason) = config.allow_reason(finding.rule, &finding.file) {
            finding.suppressed = Some(format!("lint.toml: {reason}"));
        }
    }
}

/// Loads `lint.toml` from `root` if present, or an empty config.
///
/// # Errors
///
/// Returns the rendered [`ConfigError`] when the file exists but does
/// not parse — a broken suppression file must fail loudly, not lint
/// with defaults.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}
