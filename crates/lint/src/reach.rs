//! Reachability over the workspace call graph.
//!
//! Semantic rules (L009/L012/L013/L014) all reduce to the same two
//! primitives: a forward multi-root BFS that records parent pointers so a
//! witness chain can be reconstructed, and a reverse closure ("which
//! functions can reach this set"). Nodes can be *masked* (`#[cfg(test)]`
//! items) in which case they are never entered and never extended.

/// Result of a multi-root BFS: `visited[i]` iff node `i` is reachable from
/// some root, `parent[i]` is the predecessor on one shortest path (roots
/// and unvisited nodes have `parent[i] == usize::MAX`).
#[derive(Debug)]
pub struct Reach {
    pub visited: Vec<bool>,
    pub parent: Vec<usize>,
}

impl Reach {
    /// Reconstruct the witness path root -> .. -> `node`. Empty when the
    /// node was never reached.
    #[must_use]
    pub fn witness(&self, node: usize) -> Vec<usize> {
        if node >= self.visited.len() || !self.visited[node] {
            return Vec::new();
        }
        let mut path = vec![node];
        let mut cur = node;
        while self.parent[cur] != usize::MAX {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

/// Multi-root BFS over `adj`. Masked nodes are never visited, even when
/// listed as roots, so `#[cfg(test)]` code neither triggers nor launders
/// reachability.
#[must_use]
pub fn bfs(adj: &[Vec<usize>], roots: &[usize], masked: &[bool]) -> Reach {
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if r < n && !masked[r] && !visited[r] {
            visited[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if v < n && !masked[v] && !visited[v] {
                visited[v] = true;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    Reach { visited, parent }
}

/// Reverse the adjacency so `reverse(adj)[v]` lists the callers of `v`.
#[must_use]
pub fn reverse(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut rev = vec![Vec::new(); adj.len()];
    for (u, outs) in adj.iter().enumerate() {
        for &v in outs {
            if v < adj.len() {
                rev[v].push(u);
            }
        }
    }
    rev
}

/// Set of nodes that can reach any node in `targets` (including the
/// targets themselves), ignoring masked nodes.
#[must_use]
pub fn can_reach(adj: &[Vec<usize>], targets: &[usize], masked: &[bool]) -> Vec<bool> {
    let rev = reverse(adj);
    bfs(&rev, targets, masked).visited
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_records_witness_parents() {
        // 0 -> 1 -> 2 -> 3, plus a shortcut 0 -> 3
        let adj = vec![vec![1, 3], vec![2], vec![3], vec![]];
        let r = bfs(&adj, &[0], &[false; 4]);
        assert!(r.visited.iter().all(|&v| v));
        assert_eq!(r.witness(3), vec![0, 3], "shortest path wins");
        assert_eq!(r.witness(2), vec![0, 1, 2]);
        assert_eq!(r.witness(0), vec![0]);
    }

    #[test]
    fn masked_nodes_block_traversal() {
        // 0 -> 1(masked) -> 2 : 2 must not be reachable through 1.
        let adj = vec![vec![1], vec![2], vec![]];
        let r = bfs(&adj, &[0], &[false, true, false]);
        assert!(r.visited[0]);
        assert!(!r.visited[1]);
        assert!(!r.visited[2]);
        // Masked roots are dropped entirely.
        let r = bfs(&adj, &[1], &[false, true, false]);
        assert!(r.visited.iter().all(|&v| !v));
    }

    #[test]
    fn cycles_terminate() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let r = bfs(&adj, &[0], &[false; 3]);
        assert!(r.visited.iter().all(|&v| v));
        assert_eq!(r.witness(2), vec![0, 1, 2]);
    }

    #[test]
    fn can_reach_is_reverse_reachability() {
        // 0 -> 1 -> 2, 3 isolated; who can reach {2}?
        let adj = vec![vec![1], vec![2], vec![], vec![]];
        let reach = can_reach(&adj, &[2], &[false; 4]);
        assert_eq!(reach, vec![true, true, true, false]);
    }
}
