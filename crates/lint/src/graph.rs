//! Workspace call graph assembled from per-file [`crate::model`] output.
//!
//! Resolution is name-based and deliberately conservative in the
//! *over-approximating* direction for anything that could hide a panic or
//! a lock, and in the *under-approximating* direction for paths that are
//! clearly external (`std::fs::write` never resolves to a workspace
//! function). The exact rules, in order:
//!
//! 1. `crate::` is rewritten to the caller's crate ident; `Self::` to the
//!    enclosing `impl`/`trait` type; leading `self`/`super` segments are
//!    dropped (module-relative approximation).
//! 2. Method calls (`x.f()`) link to every workspace method named `f`
//!    whose owner type or implemented trait is *named somewhere in the
//!    caller's file* — receiver types are not inferred, but calling a
//!    method on a value requires the type (or a trait it implements) to
//!    be lexically in scope, so this prunes name-only aliases like
//!    `Vec::pop` vs `BoundedQueue::pop`.
//! 3. Qualified calls (`a::b::f()`) link to workspace functions whose
//!    qualified path ends with the written segments, expanding the first
//!    segment through the caller's `use` imports; if nothing matches the
//!    path is treated as external.
//! 4. Bare calls (`f()`) prefer same-file functions, then `use`-imported
//!    matches, then fall back to every workspace function named `f`.

use crate::model::{CallSite, Fact, FactKind, FileModel, LockPair};
use std::collections::BTreeMap;

/// One function node in the workspace graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    pub file: String,
    pub crate_ident: String,
    pub name: String,
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_owner: Option<String>,
    /// Fully qualified display path, e.g.
    /// `scan_daemon::server::Server::handle`.
    pub qual: String,
    pub line: u32,
    pub col: u32,
    pub is_test: bool,
    pub facts: Vec<Fact>,
    pub lock_pairs: Vec<LockPair>,
    pub calls: Vec<CallSite>,
}

/// A resolved caller→callee edge, annotated with the call site.
#[derive(Clone, Debug)]
pub struct Edge {
    pub to: usize,
    pub line: u32,
    pub col: u32,
    pub under_span: bool,
    /// Call sits inside a `catch_unwind(...)` argument list: panics in
    /// the callee do not unwind the caller (L012 stops here).
    pub fenced: bool,
    pub held_locks: Vec<crate::model::HeldLock>,
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    pub nodes: Vec<FnNode>,
    pub edges: Vec<Vec<Edge>>,
    /// Call sites whose path matched no workspace function (external).
    pub unresolved: usize,
    pub files: usize,
}

impl Graph {
    /// Build the graph from file models. Models must already carry their
    /// crate idents.
    #[must_use]
    pub fn build(models: &[FileModel]) -> Graph {
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut file_of_node: Vec<usize> = Vec::new();
        for (mi, m) in models.iter().enumerate() {
            for f in &m.functions {
                let mut qual_parts: Vec<String> = vec![m.crate_ident.clone()];
                qual_parts.extend(file_modules(&m.file));
                qual_parts.extend(f.modules.iter().cloned());
                if let Some(o) = &f.owner {
                    qual_parts.push(o.clone());
                }
                qual_parts.push(f.name.clone());
                nodes.push(FnNode {
                    file: m.file.clone(),
                    crate_ident: m.crate_ident.clone(),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    trait_owner: f.trait_owner.clone(),
                    qual: qual_parts.join("::"),
                    line: f.line,
                    col: f.col,
                    is_test: f.is_test,
                    facts: f.facts.clone(),
                    lock_pairs: f.lock_pairs.clone(),
                    calls: f.calls.clone(),
                });
                file_of_node.push(mi);
            }
        }

        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.as_str()).or_default().push(i);
        }
        // Qualified suffix keys per node: crate::mods::[Owner::]name.
        let keys: Vec<Vec<String>> = nodes
            .iter()
            .map(|n| n.qual.split("::").map(str::to_string).collect())
            .collect();

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let mut unresolved = 0usize;
        for from in 0..nodes.len() {
            let model = &models[file_of_node[from]];
            let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
            let calls = nodes[from].calls.clone();
            for call in &calls {
                let targets = resolve(call, from, &nodes, model, &by_name, &keys);
                if targets.is_empty() {
                    unresolved += 1;
                    continue;
                }
                for to in targets {
                    if to == from {
                        continue;
                    }
                    if let Some(&at) = seen.get(&to) {
                        // An unfenced duplicate call strengthens the edge.
                        if !call.fenced {
                            edges[from][at].fenced = false;
                        }
                        continue;
                    }
                    seen.insert(to, edges[from].len());
                    edges[from].push(Edge {
                        to,
                        line: call.line,
                        col: call.col,
                        under_span: call.under_span,
                        fenced: call.fenced,
                        held_locks: call.held_locks.clone(),
                    });
                }
            }
        }

        Graph {
            nodes,
            edges,
            unresolved,
            files: models.len(),
        }
    }

    /// Plain adjacency (edge targets only) for [`crate::reach`].
    #[must_use]
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        self.edges
            .iter()
            .map(|es| es.iter().map(|e| e.to).collect())
            .collect()
    }

    /// Mask vector: true for `#[cfg(test)]`-ish nodes.
    #[must_use]
    pub fn test_mask(&self) -> Vec<bool> {
        self.nodes.iter().map(|n| n.is_test).collect()
    }

    /// Edge from `from` to `to`, if present.
    #[must_use]
    pub fn edge(&self, from: usize, to: usize) -> Option<&Edge> {
        self.edges[from].iter().find(|e| e.to == to)
    }

    /// Count facts of one kind across all nodes.
    #[must_use]
    pub fn fact_count(&self, kind: FactKind) -> usize {
        self.nodes
            .iter()
            .map(|n| n.facts.iter().filter(|f| f.kind == kind).count())
            .sum()
    }

    /// Render the graph + facts as NDJSON (`graph_fn` / `graph_edge`
    /// records plus a trailing `graph` summary), the shape `obs-check`
    /// validates.
    #[must_use]
    pub fn render_ndjson(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut edge_count = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            let panics = n.facts.iter().filter(|f| f.kind == FactKind::Panic).count();
            let locks = n.facts.iter().filter(|f| f.kind == FactKind::Lock).count();
            let io = n.facts.iter().filter(|f| f.kind == FactKind::Io).count();
            let taints = n
                .facts
                .iter()
                .filter(|f| {
                    matches!(
                        f.kind,
                        FactKind::Clock | FactKind::Rng | FactKind::Unordered
                    )
                })
                .count();
            let _ = writeln!(
                out,
                "{{\"type\":\"graph_fn\",\"id\":{},\"fn\":{},\"file\":{},\"line\":{},\"test\":{},\"calls\":{},\"panics\":{},\"locks\":{},\"io\":{},\"taints\":{}}}",
                i,
                crate::findings::json_string(&n.qual),
                crate::findings::json_string(&n.file),
                n.line,
                n.is_test,
                self.edges[i].len(),
                panics,
                locks,
                io,
                taints,
            );
        }
        for (from, es) in self.edges.iter().enumerate() {
            for e in es {
                edge_count += 1;
                let _ = writeln!(
                    out,
                    "{{\"type\":\"graph_edge\",\"from\":{},\"to\":{},\"from_fn\":{},\"to_fn\":{},\"file\":{},\"line\":{}}}",
                    from,
                    e.to,
                    crate::findings::json_string(&self.nodes[from].qual),
                    crate::findings::json_string(&self.nodes[e.to].qual),
                    crate::findings::json_string(&self.nodes[from].file),
                    e.line,
                );
            }
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"graph\",\"files\":{},\"functions\":{},\"edges\":{},\"unresolved\":{},\"panic_sites\":{},\"lock_sites\":{},\"taint_sites\":{}}}",
            self.files,
            self.nodes.len(),
            edge_count,
            self.unresolved,
            self.fact_count(FactKind::Panic),
            self.fact_count(FactKind::Lock),
            self.fact_count(FactKind::Clock)
                + self.fact_count(FactKind::Rng)
                + self.fact_count(FactKind::Unordered),
        );
        out
    }
}

/// Crate ident derived from the path alone, used when no manifest
/// provides the package name (fixture trees, in-memory tests). Follows
/// the workspace convention `crates/<dir>` → `scan_<dir>`; anything
/// outside `crates/` belongs to the umbrella package.
#[must_use]
pub fn fallback_crate_ident(file: &str) -> String {
    let mut comps = file.split('/');
    if comps.next() == Some("crates") {
        if let Some(dir) = comps.next() {
            return format!("scan_{}", dir.replace('-', "_"));
        }
    }
    "scan_bist_suite".to_string()
}

/// Module path contributed by a file's position in its crate:
/// `crates/daemon/src/server.rs` → `["server"]`, `src/bin/obs_check.rs` →
/// `["obs_check"]`, `lib.rs`/`main.rs`/`mod.rs` → their directory path.
fn file_modules(file: &str) -> Vec<String> {
    let mut comps: Vec<&str> = file.split('/').collect();
    // Drop the crate prefix (`crates/<name>`) and the `src` shelf.
    if comps.first() == Some(&"crates") && comps.len() >= 2 {
        comps.drain(0..2);
    }
    comps.retain(|c| *c != "src" && *c != "bin");
    let mut out: Vec<String> = Vec::new();
    for (i, c) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        if last {
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if stem != "lib" && stem != "main" && stem != "mod" {
                out.push(stem.to_string());
            }
        } else {
            out.push((*c).to_string());
        }
    }
    out
}

fn resolve(
    call: &CallSite,
    from: usize,
    nodes: &[FnNode],
    model: &FileModel,
    by_name: &BTreeMap<&str, Vec<usize>>,
    keys: &[Vec<String>],
) -> Vec<usize> {
    let caller = &nodes[from];
    let name = match call.path.last() {
        Some(n) => n.as_str(),
        None => return Vec::new(),
    };
    let candidates: &[usize] = by_name.get(name).map_or(&[], Vec::as_slice);
    if candidates.is_empty() {
        return Vec::new();
    }

    if call.is_method {
        // Any workspace method with this name whose owner type (or
        // implemented trait) is lexically visible in the caller's file.
        // Receiver types are not inferred; the visibility filter is what
        // keeps `AtomicU8::load` from aliasing `SloConfig::load`.
        return candidates
            .iter()
            .copied()
            .filter(|&c| {
                let cand = &nodes[c];
                cand.owner
                    .as_deref()
                    .is_some_and(|o| model.type_idents.contains(o))
                    || cand
                        .trait_owner
                        .as_deref()
                        .is_some_and(|t| model.type_idents.contains(t))
            })
            .collect();
    }

    // Normalize the written path.
    let mut segs: Vec<String> = call.path.clone();
    if let Some(first) = segs.first_mut() {
        if first == "crate" {
            *first = caller.crate_ident.clone();
        } else if first == "Self" {
            match &caller.owner {
                Some(o) => *first = o.clone(),
                None => {
                    segs.remove(0);
                }
            }
        }
    }
    while segs.len() > 1 && (segs[0] == "self" || segs[0] == "super") {
        segs.remove(0);
    }

    if segs.len() > 1 {
        let matched: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| suffix_matches(&keys[c], &segs))
            .collect();
        if !matched.is_empty() {
            return matched;
        }
        // Expand the head through this file's `use` imports and retry.
        if let Some(u) = model.uses.iter().find(|u| u.alias == segs[0]) {
            let mut full = u.segments.clone();
            full.extend(segs[1..].iter().cloned());
            let matched: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| suffix_matches(&keys[c], &full))
                .collect();
            if !matched.is_empty() {
                return matched;
            }
        }
        // Qualified path matching nothing in the workspace: external.
        return Vec::new();
    }

    // Bare name: same-file definitions shadow everything else.
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| nodes[c].file == caller.file && nodes[c].owner.is_none())
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    // A `use`-imported free function resolves precisely.
    if let Some(u) = model.uses.iter().find(|u| u.alias == name) {
        let matched: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| suffix_matches(&keys[c], &u.segments))
            .collect();
        if !matched.is_empty() {
            return matched;
        }
    }
    // Otherwise link every same-name free function — over-approximate so
    // cross-file helpers inside one crate are never missed.
    candidates
        .iter()
        .copied()
        .filter(|&c| nodes[c].owner.is_none())
        .collect()
}

fn suffix_matches(key: &[String], segs: &[String]) -> bool {
    if segs.len() > key.len() {
        return false;
    }
    key[key.len() - segs.len()..]
        .iter()
        .zip(segs.iter())
        .all(|(a, b)| a == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::model::build_file_model;

    fn build(files: &[(&str, &str, &str)]) -> Graph {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(path, krate, src)| build_file_model(path, krate, &tokenize(src)))
            .collect();
        Graph::build(&models)
    }

    fn idx(g: &Graph, qual_suffix: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qual.ends_with(qual_suffix))
            .unwrap_or_else(|| {
                panic!(
                    "no node ending {qual_suffix}; have {:?}",
                    g.nodes.iter().map(|n| &n.qual).collect::<Vec<_>>()
                )
            })
    }

    #[test]
    fn qualified_call_resolves_across_crates() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "scan_a",
                "pub fn entry() { scan_b::helpers::run(); }",
            ),
            (
                "crates/b/src/helpers.rs",
                "scan_b",
                "pub fn run() {}\npub fn unrelated() {}",
            ),
        ]);
        let from = idx(&g, "scan_a::entry");
        let to = idx(&g, "scan_b::helpers::run");
        assert_eq!(g.edges[from].len(), 1);
        assert_eq!(g.edges[from][0].to, to);
    }

    #[test]
    fn use_import_resolves_bare_and_module_calls() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "scan_a",
                "use scan_b::helpers::run;\nuse scan_b::helpers;\n\
                 pub fn one() { run(); }\npub fn two() { helpers::run(); }",
            ),
            ("crates/b/src/helpers.rs", "scan_b", "pub fn run() {}"),
        ]);
        let to = idx(&g, "scan_b::helpers::run");
        assert_eq!(g.edges[idx(&g, "scan_a::one")][0].to, to);
        assert_eq!(g.edges[idx(&g, "scan_a::two")][0].to, to);
    }

    #[test]
    fn same_file_definition_shadows_other_crates() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "scan_a",
                "pub fn entry() { helper(); }\nfn helper() {}",
            ),
            ("crates/b/src/lib.rs", "scan_b", "pub fn helper() {}"),
        ]);
        let from = idx(&g, "scan_a::entry");
        assert_eq!(g.edges[from].len(), 1);
        assert_eq!(g.edges[from][0].to, idx(&g, "scan_a::helper"));
    }

    #[test]
    fn bare_cross_file_call_falls_back_to_all_free_fns() {
        let g = build(&[
            (
                "crates/a/src/main.rs",
                "scan_a",
                "pub fn entry() { shared_helper(); }",
            ),
            ("crates/a/src/util.rs", "scan_a", "pub fn shared_helper() {}"),
        ]);
        let from = idx(&g, "scan_a::entry");
        assert_eq!(g.edges[from].len(), 1);
        assert_eq!(g.edges[from][0].to, idx(&g, "scan_a::util::shared_helper"));
    }

    #[test]
    fn external_qualified_paths_do_not_alias_workspace_fns() {
        // `fs::write` must not link to a workspace fn named `write`.
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "scan_a",
                "use std::fs;\npub fn entry() { fs::write(\"p\", b\"x\"); }",
            ),
            ("crates/b/src/sink.rs", "scan_b", "pub fn write() {}"),
        ]);
        let from = idx(&g, "scan_a::entry");
        assert!(g.edges[from].is_empty(), "edges: {:?}", g.edges[from]);
    }

    #[test]
    fn method_calls_link_to_all_same_name_methods() {
        let g = build(&[
            (
                "crates/a/src/lib.rs",
                "scan_a",
                "pub fn entry(q: &Q) { q.push_job(1); }",
            ),
            (
                "crates/b/src/queue.rs",
                "scan_b",
                "pub struct Q;\nimpl Q { pub fn push_job(&self, x: u32) {} }\n\
                 pub fn push_job() {}",
            ),
        ]);
        let from = idx(&g, "scan_a::entry");
        assert_eq!(g.edges[from].len(), 1, "only the method, not the free fn");
        assert_eq!(g.edges[from][0].to, idx(&g, "Q::push_job"));
    }

    #[test]
    fn self_and_crate_paths_normalize() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "scan_a",
            "pub struct S;\nimpl S {\n\
             pub fn outer(&self) { Self::inner(); crate::free(); }\n\
             fn inner() {}\n}\npub fn free() {}",
        )]);
        let from = idx(&g, "S::outer");
        let tos: Vec<usize> = g.edges[from].iter().map(|e| e.to).collect();
        assert!(tos.contains(&idx(&g, "S::inner")));
        assert!(tos.contains(&idx(&g, "scan_a::free")));
    }

    #[test]
    fn ndjson_has_fn_edge_and_summary_records() {
        let g = build(&[(
            "crates/a/src/lib.rs",
            "scan_a",
            "pub fn entry() { helper(); }\nfn helper() { x.unwrap(); }",
        )]);
        let nd = g.render_ndjson();
        assert!(nd.contains("\"type\":\"graph_fn\""));
        assert!(nd.contains("\"type\":\"graph_edge\""));
        let last = nd.lines().last().unwrap();
        assert!(last.contains("\"type\":\"graph\""), "summary last: {last}");
        assert!(last.contains("\"functions\":2"));
        assert!(last.contains("\"panic_sites\":1"));
    }
}
