//! The rule set: fourteen workspace-contract lints — lexical rules over
//! the token stream (Rust sources), a line-oriented manifest check
//! (`Cargo.toml`), and semantic rules over the workspace call graph
//! (L009, L012, L013, L014).
//!
//! Each rule has an id, short name, severity, and fix-hint; findings
//! carry the 1-based line/column of the offending token. Semantic
//! findings additionally carry a witness call chain (root → … → site).
//! Rules are scoped by path where the contract itself is path-scoped
//! (wall-clock is the bench/obs/daemon crates' business; stdout belongs
//! to the CLI and the experiment bins; `HashMap` is only a determinism
//! hazard in the crates whose outputs must be bit-identical).
//!
//! Suppression happens at a higher level (config allow-paths and
//! inline `// lint:allow`); rules here report everything they see.

use crate::config::Config;
use crate::findings::{ChainHop, Finding, Severity};
use crate::graph::Graph;
use crate::lexer::{Token, TokenKind};
use crate::model::FactKind;
use crate::reach;
use std::collections::{BTreeMap, BTreeSet};

/// The deterministic crates whose iteration order is contractual
/// (serial vs parallel bit-identity, pinned RNG streams).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sim/",
    "crates/bist/",
    "crates/soc/",
];

/// Crates allowed to read wall clocks: the timing harness, the
/// observability layer (monotonic span timing), and the daemon
/// (deadline arithmetic and socket timeouts).
const WALL_CLOCK_CRATES: &[&str] = &["crates/bench/", "crates/obs/", "crates/daemon/"];

/// Paths allowed to print to stdout: the CLI front end (stdout is its
/// payload channel), the experiment bins (same contract, enforced
/// end-to-end by `crates/bench/tests/bin_stdout.rs`), and the load
/// generator bin (scenario summaries are its payload).
const STDOUT_PATHS: &[&str] = &["crates/cli/", "crates/bench/src/bin/", "crates/daemon/src/bin/"];

/// Paths where every work queue must be explicitly bounded: the
/// daemon's admission path. `VecDeque` grows without limit and
/// `mpsc::channel()` buffers without limit; under overload either one
/// turns backpressure into memory exhaustion. L011 denies both here —
/// use `scan_daemon::queue::BoundedQueue` (or `sync_channel`) instead.
const BOUNDED_QUEUE_PATHS: &[&str] = &["crates/daemon/"];

/// The crate that defines `diagnose_checked`; direct `diagnose()`
/// calls are its internal business only.
const DIAGNOSE_CRATE: &str = "crates/core/";

/// Crates where a live span guard must not cover blocking I/O: the
/// deterministic hot paths plus the observability layer itself. A
/// span that blocks on a socket or file charges the wait to whatever
/// it wraps, poisoning every profile and baseline derived from it.
const SPAN_IO_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sim/",
    "crates/bist/",
    "crates/soc/",
    "crates/obs/",
];

/// Observability hot paths where a panic is a telemetry outage — or
/// worse: the flight recorder's panic hook runs on *every* panic, the
/// SLO evaluator and sampler run on a background thread whose death
/// silently stops sampling, and the serve module answers scrapes
/// mid-campaign. `unwrap()`/`expect()` here turn a recoverable hiccup
/// into a lost black box, so L010 denies them outside `#[cfg(test)]`.
const OBS_HOT_PATHS: &[&str] = &[
    "crates/obs/src/serve.rs",
    "crates/obs/src/slo.rs",
    "crates/obs/src/recorder.rs",
    "crates/obs/src/timeseries.rs",
];

fn under(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

fn finding(
    rule: &'static str,
    name: &'static str,
    file: &str,
    token_line: u32,
    token_col: u32,
    message: String,
    hint: &'static str,
) -> Finding {
    Finding {
        rule,
        name,
        severity: Severity::Deny,
        file: file.to_owned(),
        line: token_line,
        col: token_col,
        message,
        hint,
        suppressed: None,
        chain: Vec::new(),
    }
}

/// An inline `// lint:allow(L00x): reason` directive found in a
/// comment. It suppresses findings of that rule on its own line and
/// the line directly below (so it can sit above the offending line or
/// trail it).
#[derive(Clone, Debug)]
pub struct InlineAllow {
    /// Rule id the directive targets.
    pub rule: String,
    /// Written justification (required; an empty reason is itself
    /// reported as a finding).
    pub reason: String,
    /// Line the directive appears on.
    pub line: u32,
}

/// Extracts inline allow directives from comment tokens. Directives
/// missing a reason are returned as findings instead of allows.
#[must_use]
pub fn inline_allows(file: &str, tokens: &[Token]) -> (Vec<InlineAllow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for token in tokens {
        if token.kind != TokenKind::Comment {
            continue;
        }
        let mut rest = token.text.as_str();
        while let Some(start) = rest.find("lint:allow(") {
            rest = &rest[start + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_owned();
            let after = &rest[close + 1..];
            // The reason is whatever follows the closing paren, minus
            // leading separator punctuation.
            let reason = after
                .trim_start_matches([':', ',', '-', '—', ' '])
                .trim()
                .to_owned();
            rest = after;
            if reason.is_empty() {
                malformed.push(finding(
                    "L000",
                    "malformed-suppression",
                    file,
                    token.line,
                    token.col,
                    format!(
                        "inline `lint:allow({rule})` has no reason — write \
                         `// lint:allow({rule}): why this is sound`"
                    ),
                    "every suppression must carry a written justification",
                ));
            } else {
                allows.push(InlineAllow {
                    rule,
                    reason,
                    line: token.line,
                });
            }
        }
    }
    (allows, malformed)
}

/// Runs all token-level rules (L002–L009) over one Rust file,
/// returning raw findings plus the file's `unsafe` inventory.
#[must_use]
pub fn check_rust(file: &str, tokens: &[Token]) -> (Vec<Finding>, Vec<u32>) {
    let mut findings = Vec::new();
    let mut unsafe_lines = Vec::new();
    // Significant (non-comment) tokens drive the pattern rules;
    // comments are consulted for SAFETY annotations.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let comments: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Comment)
        .collect();

    for (i, token) in sig.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        match token.text.as_str() {
            // L002 — ambient randomness.
            "thread_rng" | "from_entropy" => findings.push(finding(
                "L002",
                "no-ambient-rng",
                file,
                token.line,
                token.col,
                format!("`{}` draws ambient randomness", token.text),
                "derive a keyed stream from the vendored scan-rng crate instead",
            )),
            "rand" if path_sep_follows(&sig, i) => findings.push(finding(
                "L002",
                "no-ambient-rng",
                file,
                token.line,
                token.col,
                "`rand::` path — the external rand crate is banned".to_owned(),
                "derive a keyed stream from the vendored scan-rng crate instead",
            )),
            // L003 — wall clocks outside bench/obs.
            "Instant" | "SystemTime"
                if !under(file, WALL_CLOCK_CRATES)
                    && path_sep_follows(&sig, i)
                    && sig.get(i + 3).is_some_and(|t| t.is_ident("now")) =>
            {
                findings.push(finding(
                    "L003",
                    "no-wall-clock-in-core",
                    file,
                    token.line,
                    token.col,
                    format!("`{}::now` read outside crates/bench and crates/obs", token.text),
                    "route timing through scan_bench::timing or scan-obs spans",
                ));
            }
            // L004 — unordered iteration hazard in deterministic crates.
            "HashMap" | "HashSet" if under(file, DETERMINISTIC_CRATES) => {
                findings.push(finding(
                    "L004",
                    "no-unordered-iteration",
                    file,
                    token.line,
                    token.col,
                    format!(
                        "`{}` in a deterministic crate — iteration order is unspecified",
                        token.text
                    ),
                    "use BTreeMap/BTreeSet, or sort before iterating and suppress \
                     with a reason if the map is never iterated",
                ));
            }
            // L005 — unsafe needs a SAFETY comment.
            "unsafe" => {
                unsafe_lines.push(token.line);
                if !has_safety_comment(&comments, token.line) {
                    findings.push(finding(
                        "L005",
                        "unsafe-needs-safety-comment",
                        file,
                        token.line,
                        token.col,
                        "`unsafe` without a `// SAFETY:` comment in the 3 lines above"
                            .to_owned(),
                        "state the invariant that makes this sound in a // SAFETY: comment",
                    ));
                }
            }
            // L006 — stdout cleanliness.
            "print" | "println"
                if !under(file, STDOUT_PATHS)
                    && sig.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                findings.push(finding(
                    "L006",
                    "stdout-cleanliness",
                    file,
                    token.line,
                    token.col,
                    format!(
                        "`{}!` outside crates/cli and the experiment bins — stdout is \
                         the payload channel",
                        token.text
                    ),
                    "write diagnostics to stderr (eprintln!) or thread a Write sink",
                ));
            }
            // L007 — pub error enums must be #[non_exhaustive].
            "enum"
                if token_is_pub_before(&sig, i)
                    && sig.get(i + 1).is_some_and(|t| {
                        t.kind == TokenKind::Ident && t.text.contains("Error")
                    })
                    && !non_exhaustive_before(&sig, i - 1) =>
            {
                let name_token = sig[i + 1];
                findings.push(finding(
                    "L007",
                    "nonexhaustive-public-errors",
                    file,
                    name_token.line,
                    name_token.col,
                    format!("pub error enum `{}` is exhaustively matchable", name_token.text),
                    "add #[non_exhaustive] so new failure modes are not breaking changes",
                ));
            }
            // L011 — unbounded queues in the daemon's admission path.
            "VecDeque" if under(file, BOUNDED_QUEUE_PATHS) => {
                findings.push(finding(
                    "L011",
                    "no-unbounded-queue",
                    file,
                    token.line,
                    token.col,
                    "`VecDeque` in the daemon — an unbounded buffer turns \
                     backpressure into memory exhaustion under overload"
                        .to_owned(),
                    "use the bounded admission queue (scan_daemon::queue::BoundedQueue) \
                     or justify the bound with a suppression",
                ));
            }
            "channel"
                if under(file, BOUNDED_QUEUE_PATHS)
                    && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !call_is_method_or_def(&sig, i) =>
            {
                findings.push(finding(
                    "L011",
                    "no-unbounded-queue",
                    file,
                    token.line,
                    token.col,
                    "`channel()` in the daemon — `std::sync::mpsc::channel` buffers \
                     without limit under overload"
                        .to_owned(),
                    "use sync_channel(bound) or the bounded admission queue \
                     (scan_daemon::queue::BoundedQueue)",
                ));
            }
            // L008 — direct diagnose() outside the defining crate.
            "diagnose"
                if !under(file, &[DIAGNOSE_CRATE])
                    && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !call_is_method_or_def(&sig, i) =>
            {
                findings.push(finding(
                    "L008",
                    "no-silent-empty-intersection",
                    file,
                    token.line,
                    token.col,
                    "direct `diagnose()` call — an empty candidate set is silently \
                     ambiguous"
                        .to_owned(),
                    "call diagnose_checked (or the robust engine) and handle \
                     AllSessionsPassed / ContradictoryHistory",
                ));
            }
            _ => {}
        }
    }
    if under(file, OBS_HOT_PATHS) {
        findings.extend(check_obs_unwrap(file, &sig));
    }
    (findings, unsafe_lines)
}

/// L010 — `no-unwrap-in-obs-hot-path`: within [`OBS_HOT_PATHS`], no
/// `.unwrap()` or `.expect(…)` call outside `#[cfg(test)]` items. The
/// observability layer must degrade, not die: a panic in the sampler
/// thread stops all sampling, a panic under the recorder's own panic
/// hook loses the black box, and a panic while serving a scrape kills
/// the endpoint mid-campaign. Use the poison-recovering `lock()`
/// helpers, `let … else` with a logged fallback, or propagate an
/// error. Test modules are exempt — a test *should* panic on a broken
/// invariant.
fn check_obs_unwrap(file: &str, sig: &[&Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut depth = 0usize;
    // Depth of the brace block owned by an active `#[cfg(test)]`
    // attribute; tokens inside it are exempt.
    let mut skip_until: Option<usize> = None;
    let mut pending_cfg_test = false;
    for (i, token) in sig.iter().enumerate() {
        if token.is_punct('{') {
            depth += 1;
            if pending_cfg_test && skip_until.is_none() {
                skip_until = Some(depth);
                pending_cfg_test = false;
            }
        } else if token.is_punct('}') {
            if skip_until == Some(depth) {
                skip_until = None;
            }
            depth = depth.saturating_sub(1);
        }
        if skip_until.is_some() || token.kind != TokenKind::Ident {
            continue;
        }
        // `#[cfg(test)]` — the next brace block is the test item.
        if token.is_ident("cfg")
            && i >= 2
            && sig[i - 1].is_punct('[')
            && sig[i - 2].is_punct('#')
            && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
            && sig.get(i + 2).is_some_and(|t| t.is_ident("test"))
        {
            pending_cfg_test = true;
            continue;
        }
        if (token.is_ident("unwrap") || token.is_ident("expect"))
            && i > 0
            && sig[i - 1].is_punct('.')
            && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            findings.push(finding(
                "L010",
                "no-unwrap-in-obs-hot-path",
                file,
                token.line,
                token.col,
                format!(
                    "`.{}(…)` in an observability hot path — a panic here kills \
                     the sampler/recorder/endpoint instead of degrading",
                    token.text
                ),
                "recover instead of panicking: poison-recovering lock() helpers, \
                 `let … else` with a logged fallback, or propagate the error",
            ));
        }
    }
    findings
}

/// Runs the semantic (call-graph) rules: L009 `no-blocking-io-inside-
/// span`, L012 `panic-freedom`, L013 `lock-order`, and L014
/// `determinism-taint`. Findings carry witness chains.
#[must_use]
pub fn check_semantic(graph: &Graph, config: &Config) -> Vec<Finding> {
    let adj = graph.adjacency();
    let masked = graph.test_mask();
    let mut findings = Vec::new();
    findings.extend(check_l009(graph, &adj, &masked));
    // L012 walks a fence-filtered adjacency: a call inside a
    // `catch_unwind(...)` argument cannot unwind its caller, so the
    // panic-freedom contract stops at that boundary.
    let unwind_adj: Vec<Vec<usize>> = graph
        .edges
        .iter()
        .map(|es| es.iter().filter(|e| !e.fenced).map(|e| e.to).collect())
        .collect();
    findings.extend(check_l012(graph, &unwind_adj, &masked, config));
    findings.extend(check_l013(graph, &adj, &masked));
    findings.extend(check_l014(graph, &adj, &masked));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// Builds the witness chain for a forward path of node indices: each
/// hop carries the call-site line into the next node; the final hop is
/// the offending site itself.
fn chain_for_path(graph: &Graph, path: &[usize], site_line: u32) -> Vec<ChainHop> {
    let mut hops = Vec::new();
    for w in path.windows(2) {
        let line = graph
            .edge(w[0], w[1])
            .map_or(graph.nodes[w[0]].line, |e| e.line);
        hops.push(ChainHop {
            func: graph.nodes[w[0]].qual.clone(),
            file: graph.nodes[w[0]].file.clone(),
            line,
        });
    }
    if let Some(&last) = path.last() {
        hops.push(ChainHop {
            func: graph.nodes[last].qual.clone(),
            file: graph.nodes[last].file.clone(),
            line: site_line,
        });
    }
    hops
}

/// Forward path `from → … → nearest target` read out of a reverse-BFS
/// (`rev_reach` computed over the reversed adjacency from the targets).
fn forward_path(rev_reach: &reach::Reach, from: usize) -> Vec<usize> {
    let mut path = rev_reach.witness(from);
    path.reverse();
    path
}

/// L009 (semantic) — within [`SPAN_IO_CRATES`], no blocking I/O may
/// execute while a span guard is live: neither directly nor through any
/// transitive callee, across files and crates. A function is I/O-dirty
/// when its body contains a blocking token or its signature takes an
/// I/O handle, or when it can reach such a function through the call
/// graph. `#[cfg(test)]` code is exempt — test spans measure tests.
fn check_l009(graph: &Graph, adj: &[Vec<usize>], masked: &[bool]) -> Vec<Finding> {
    let io_nodes: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.facts.iter().any(|f| f.kind == FactKind::Io))
        .map(|(i, _)| i)
        .collect();
    let rev = reach::reverse(adj);
    let rev_reach = reach::bfs(&rev, &io_nodes, masked);
    let mut findings = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if masked[i] || !under(&node.file, SPAN_IO_CRATES) {
            continue;
        }
        for fact in &node.facts {
            if fact.kind == FactKind::Io && fact.under_span && !fact.in_sig {
                findings.push(finding(
                    "L009",
                    "no-blocking-io-inside-span",
                    &node.file,
                    fact.line,
                    fact.col,
                    format!(
                        "`{}` while a span guard is live — the span's timing absorbs \
                         the blocking wait",
                        fact.what
                    ),
                    "drop the span guard before the I/O, or move the write out of the \
                     instrumented region; suppress with a reason only if the span \
                     deliberately measures the I/O itself",
                ));
            }
        }
        for e in &graph.edges[i] {
            if !e.under_span || masked[e.to] || !rev_reach.visited[e.to] {
                continue;
            }
            let path = forward_path(&rev_reach, e.to);
            let io_node = &graph.nodes[*path.last().unwrap_or(&e.to)];
            let io_line = io_node
                .facts
                .iter()
                .find(|f| f.kind == FactKind::Io)
                .map_or(io_node.line, |f| f.line);
            let mut chain = vec![ChainHop {
                func: node.qual.clone(),
                file: node.file.clone(),
                line: e.line,
            }];
            chain.extend(chain_for_path(graph, &path, io_line));
            let mut f = finding(
                "L009",
                "no-blocking-io-inside-span",
                &node.file,
                e.line,
                e.col,
                format!(
                    "call to `{}` while a span guard is live — the callee (transitively) \
                     performs blocking I/O, so the span's timing absorbs the wait",
                    graph.nodes[e.to].qual
                ),
                "drop the span guard before the call, or move the I/O out of the \
                 instrumented region; suppress with a reason only if the span \
                 deliberately measures the I/O itself",
            );
            f.chain = chain;
            findings.push(f);
        }
    }
    findings
}

/// L012 — `panic-freedom`: from the roots configured in `lint.toml
/// [roots] panic_freedom`, no panic site may be transitively reachable
/// outside `#[cfg(test)]`. Each finding sits at the panic site and
/// carries the full witness call chain from the root. Inert when no
/// roots are configured.
fn check_l012(
    graph: &Graph,
    adj: &[Vec<usize>],
    masked: &[bool],
    config: &Config,
) -> Vec<Finding> {
    if config.panic_roots.is_empty() {
        return Vec::new();
    }
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.is_test
                && config
                    .panic_roots
                    .iter()
                    .any(|r| r.matches(&n.file, &n.name))
        })
        .map(|(i, _)| i)
        .collect();
    let r = reach::bfs(adj, &roots, masked);
    let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
    let mut findings = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !r.visited[i] {
            continue;
        }
        for fact in &node.facts {
            if fact.kind != FactKind::Panic
                || fact.fenced
                || !seen.insert((node.file.clone(), fact.line, fact.col))
            {
                continue;
            }
            let path = r.witness(i);
            let root_qual = graph.nodes[path[0]].qual.clone();
            let mut f = finding(
                "L012",
                "panic-freedom",
                &node.file,
                fact.line,
                fact.col,
                format!(
                    "`{}` can panic and is reachable from root `{}` ({} call hop(s))",
                    fact.what,
                    root_qual,
                    path.len() - 1,
                ),
                "make the path panic-free (handle the error, use checked ops/get()), \
                 isolate it behind catch_unwind and suppress with that reason, or \
                 drop the root from [roots] if it is not a liveness boundary",
            );
            f.chain = chain_for_path(graph, &path, fact.line);
            findings.push(f);
        }
    }
    findings
}

/// One direction of an observed lock ordering, with its witness.
struct LockWitness {
    file: String,
    line: u32,
    col: u32,
    chain: Vec<ChainHop>,
}

/// L013 — `lock-order`: nested lock acquisitions (direct, or a call
/// made while holding a lock whose callee transitively acquires
/// another) must follow one global partial order. When both `(a, b)`
/// and `(b, a)` orders are observed anywhere in the workspace, both
/// sites are reported, each with its witness chain.
fn check_l013(graph: &Graph, adj: &[Vec<usize>], masked: &[bool]) -> Vec<Finding> {
    // Lock names acquired anywhere (receiver idents; `<expr>` receivers
    // are unattributable and excluded from ordering).
    let mut lock_names: BTreeSet<&str> = BTreeSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if masked[i] {
            continue;
        }
        for fact in &node.facts {
            if fact.kind == FactKind::Lock && fact.what != "<expr>" {
                lock_names.insert(fact.what.as_str());
            }
        }
    }
    // Per lock name: reverse reachability from its direct acquirers.
    let rev = reach::reverse(adj);
    let mut rev_reach: BTreeMap<&str, reach::Reach> = BTreeMap::new();
    for name in &lock_names {
        let holders: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                !masked[*i]
                    && n.facts
                        .iter()
                        .any(|f| f.kind == FactKind::Lock && f.what == *name)
            })
            .map(|(i, _)| i)
            .collect();
        rev_reach.insert(name, reach::bfs(&rev, &holders, masked));
    }

    let mut orders: BTreeMap<(String, String), LockWitness> = BTreeMap::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if masked[i] {
            continue;
        }
        // Direct nested acquisitions inside one function.
        for p in &node.lock_pairs {
            if p.first.name == "<expr>" || p.second.name == "<expr>" {
                continue;
            }
            let key = (p.first.name.clone(), p.second.name.clone());
            orders.entry(key).or_insert_with(|| {
                let col = lock_col(graph, i, &p.second.name, p.second.line);
                LockWitness {
                    file: node.file.clone(),
                    line: p.second.line,
                    col,
                    chain: vec![
                        ChainHop {
                            func: node.qual.clone(),
                            file: node.file.clone(),
                            line: p.first.line,
                        },
                        ChainHop {
                            func: node.qual.clone(),
                            file: node.file.clone(),
                            line: p.second.line,
                        },
                    ],
                }
            });
        }
        // Calls made while holding a lock, into callees that acquire.
        for e in &graph.edges[i] {
            if e.held_locks.is_empty() || masked[e.to] {
                continue;
            }
            for (name, rr) in &rev_reach {
                if !rr.visited[e.to] {
                    continue;
                }
                for held in &e.held_locks {
                    if held.name == **name || held.name == "<expr>" {
                        continue;
                    }
                    let key = (held.name.clone(), (*name).to_string());
                    if orders.contains_key(&key) {
                        continue;
                    }
                    let path = forward_path(rr, e.to);
                    let acq = &graph.nodes[*path.last().unwrap_or(&e.to)];
                    let acq_line = acq
                        .facts
                        .iter()
                        .find(|f| f.kind == FactKind::Lock && f.what == **name)
                        .map_or(acq.line, |f| f.line);
                    let mut chain = vec![
                        ChainHop {
                            func: node.qual.clone(),
                            file: node.file.clone(),
                            line: held.line,
                        },
                        ChainHop {
                            func: node.qual.clone(),
                            file: node.file.clone(),
                            line: e.line,
                        },
                    ];
                    chain.extend(chain_for_path(graph, &path, acq_line));
                    orders.insert(
                        key,
                        LockWitness {
                            file: node.file.clone(),
                            line: e.line,
                            col: e.col,
                            chain,
                        },
                    );
                }
            }
        }
    }

    let mut findings = Vec::new();
    let keys: Vec<(String, String)> = orders.keys().cloned().collect();
    for key in &keys {
        let (a, b) = key;
        if a >= b {
            continue; // visit each unordered pair once
        }
        let rev_key = (b.clone(), a.clone());
        if !orders.contains_key(&rev_key) {
            continue;
        }
        for (fwd, other) in [(key, &rev_key), (&rev_key, key)] {
            let w = &orders[fwd];
            let o = &orders[other];
            let mut f = finding(
                "L013",
                "lock-order",
                &w.file,
                w.line,
                w.col,
                format!(
                    "lock `{}` is held while acquiring `{}`, but the reverse order \
                     occurs at {}:{} — inconsistent lock order can deadlock",
                    fwd.0, fwd.1, o.file, o.line,
                ),
                "pick one global acquisition order for these locks and restructure \
                 one of the two paths to follow it",
            );
            f.chain = w.chain.clone();
            findings.push(f);
        }
    }
    findings
}

/// Column of the lock acquisition fact matching (`name`, `line`) in
/// node `i`, defaulting to 1.
fn lock_col(graph: &Graph, i: usize, name: &str, line: u32) -> u32 {
    graph.nodes[i]
        .facts
        .iter()
        .find(|f| f.kind == FactKind::Lock && f.what == name && f.line == line)
        .map_or(1, |f| f.col)
}

/// L014 — `determinism-taint`: the transitive closure of the L002/L003/
/// L004 tokens. A deterministic-core function that (transitively)
/// reaches ambient RNG, a wall-clock read, or unordered iteration —
/// even through helpers in other files and crates — taints the
/// diagnosis result. Sites inside the deterministic crates themselves
/// are already covered lexically; wall-clock and unordered sites inside
/// the crates licensed to use them ([`WALL_CLOCK_CRATES`]) are fine
/// unless a core function reaches ambient RNG there.
fn check_l014(graph: &Graph, adj: &[Vec<usize>], masked: &[bool]) -> Vec<Finding> {
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.is_test && under(&n.file, DETERMINISTIC_CRATES))
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    let r = reach::bfs(adj, &roots, masked);
    let mut seen: BTreeSet<(String, u32, u32)> = BTreeSet::new();
    let mut findings = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !r.visited[i] || under(&node.file, DETERMINISTIC_CRATES) {
            continue;
        }
        for fact in &node.facts {
            let (flagged, label) = match fact.kind {
                FactKind::Rng => (true, "ambient RNG"),
                FactKind::Clock => (!under(&node.file, WALL_CLOCK_CRATES), "wall clock"),
                FactKind::Unordered => (
                    !under(&node.file, WALL_CLOCK_CRATES),
                    "unordered iteration",
                ),
                _ => (false, ""),
            };
            if !flagged || !seen.insert((node.file.clone(), fact.line, fact.col)) {
                continue;
            }
            let path = r.witness(i);
            let root_qual = graph.nodes[path[0]].qual.clone();
            let mut f = finding(
                "L014",
                "determinism-taint",
                &node.file,
                fact.line,
                fact.col,
                format!(
                    "`{}` ({label}) is transitively reachable from deterministic-core \
                     function `{}` — nondeterminism leaks into diagnosis results",
                    fact.what, root_qual,
                ),
                "replace the nondeterministic source (BTreeMap, scan-rng streams, \
                 injected clocks) or break the call path out of the deterministic core",
            );
            f.chain = chain_for_path(graph, &path, fact.line);
            findings.push(f);
        }
    }
    findings
}

/// True when significant tokens `i+1`, `i+2` are `::`.
fn path_sep_follows(sig: &[&Token], i: usize) -> bool {
    sig.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && sig.get(i + 2).is_some_and(|t| t.is_punct(':'))
}

/// True when a `// SAFETY:` (or `/* SAFETY: */`) comment sits on the
/// `unsafe` line itself or within the 3 lines above it.
fn has_safety_comment(comments: &[&Token], unsafe_line: u32) -> bool {
    comments.iter().any(|c| {
        c.text.contains("SAFETY:")
            && c.line <= unsafe_line
            && unsafe_line.saturating_sub(c.line) <= 3
    })
}

/// True when the token before `i` (an `enum` keyword) is `pub`.
/// `pub(crate)` and private enums are not public API and are skipped.
fn token_is_pub_before(sig: &[&Token], i: usize) -> bool {
    i > 0 && sig[i - 1].is_ident("pub")
}

/// Walks attribute groups backwards from the token before `pub`
/// (index `pub_index - 1`... caller passes the index *of* `pub`) and
/// reports whether any attribute mentions `non_exhaustive`.
fn non_exhaustive_before(sig: &[&Token], pub_index: usize) -> bool {
    let mut j = pub_index; // index of `pub`; attributes end at j-1
    while j > 0 {
        let end = j - 1;
        if !sig[end].is_punct(']') {
            return false; // ran out of attributes
        }
        // Find the matching `[`, tolerating nested brackets inside the
        // attribute (e.g. #[cfg_attr(..., derive(...))]).
        let mut depth = 0usize;
        let mut k = end;
        loop {
            if sig[k].is_punct(']') {
                depth += 1;
            } else if sig[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false; // unbalanced; bail conservatively
            }
            k -= 1;
        }
        if k == 0 || !sig[k - 1].is_punct('#') {
            return false;
        }
        if sig[k..end].iter().any(|t| t.is_ident("non_exhaustive")) {
            return true;
        }
        j = k - 1; // continue above the `#`
    }
    false
}

/// True when `diagnose(` at `i` is a method call (`x.diagnose(`), a
/// definition (`fn diagnose(`), or a macro fragment we should not
/// flag.
fn call_is_method_or_def(sig: &[&Token], i: usize) -> bool {
    i > 0 && (sig[i - 1].is_punct('.') || sig[i - 1].is_ident("fn"))
}

/// L001 — `no-external-deps`: every dependency in every `Cargo.toml`
/// must be a workspace path dependency (or `workspace = true`
/// inheritance). A line-oriented scan is enough: dependency sections
/// are flat `name = value` lists, and a value that carries neither
/// `path` nor `workspace` names a registry crate.
#[must_use]
pub fn check_manifest(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.foo]`-style tables: (header line, name, any path/
    // workspace key seen).
    let mut dep_table: Option<(u32, String, bool)> = None;
    for (index, raw) in text.lines().enumerate() {
        let line_no = u32::try_from(index + 1).unwrap_or(u32::MAX);
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dep_table(&mut dep_table, file, &mut findings);
            let header = line.trim_matches(['[', ']']);
            in_dep_section = is_dep_section(header);
            if let Some(name) = dep_table_name(header) {
                dep_table = Some((line_no, name.to_owned(), false));
            }
            continue;
        }
        if let Some((_, _, satisfied)) = &mut dep_table {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || key == "workspace" {
                *satisfied = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `foo.workspace = true` / `foo.path = "…"` dotted keys are
        // workspace-local; inline tables must mention path/workspace.
        let local = key.ends_with(".workspace")
            || key.ends_with(".path")
            || value.contains("path")
            || value.contains("workspace");
        if !local {
            findings.push(finding(
                "L001",
                "no-external-deps",
                file,
                line_no,
                1,
                format!("dependency `{key}` is not a workspace path dependency"),
                "vendor the code into a crates/ member; the build environment has \
                 no registry access",
            ));
        }
    }
    flush_dep_table(&mut dep_table, file, &mut findings);
    findings
}

fn flush_dep_table(
    dep_table: &mut Option<(u32, String, bool)>,
    file: &str,
    findings: &mut Vec<Finding>,
) {
    if let Some((line, name, satisfied)) = dep_table.take() {
        if !satisfied {
            findings.push(finding(
                "L001",
                "no-external-deps",
                file,
                line,
                1,
                format!("dependency table `{name}` has no `path` or `workspace` key"),
                "vendor the code into a crates/ member; the build environment has \
                 no registry access",
            ));
        }
    }
}

fn is_dep_section(header: &str) -> bool {
    matches!(
        header,
        "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
    ) || (header.starts_with("target.") && header.ends_with("dependencies"))
}

/// For `[dependencies.foo]`-style headers, the dependency name.
fn dep_table_name(header: &str) -> Option<&str> {
    for section in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(name) = header.strip_prefix(section) {
            return Some(name);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn rust_findings(file: &str, source: &str) -> Vec<Finding> {
        check_rust(file, &tokenize(source)).0
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l002_flags_ambient_rng() {
        let f = rust_findings("crates/x/src/lib.rs", "let r = rand::thread_rng();");
        assert_eq!(rules_of(&f), vec!["L002", "L002"]);
        assert!(rust_findings("crates/x/src/lib.rs", "let r = scan_rng::Rng::new(0);").is_empty());
        // `rand` as a plain variable is not the crate path.
        assert!(rust_findings("crates/x/src/lib.rs", "let rand = 3; use_it(rand);").is_empty());
    }

    #[test]
    fn l003_scoped_to_non_timing_crates() {
        let source = "let t = Instant::now();";
        assert_eq!(rules_of(&rust_findings("crates/core/src/a.rs", source)), vec!["L003"]);
        assert!(rust_findings("crates/bench/src/timing.rs", source).is_empty());
        assert!(rust_findings("crates/obs/src/span.rs", source).is_empty());
        // `Instant::elapsed` etc. without `now` is fine.
        assert!(rust_findings("crates/core/src/a.rs", "type T = Instant;").is_empty());
    }

    #[test]
    fn l004_scoped_to_deterministic_crates() {
        let source = "use std::collections::HashMap;";
        assert_eq!(rules_of(&rust_findings("crates/core/src/a.rs", source)), vec!["L004"]);
        assert_eq!(rules_of(&rust_findings("crates/soc/tests/t.rs", source)), vec!["L004"]);
        assert!(rust_findings("crates/netlist/src/a.rs", source).is_empty());
        assert!(rust_findings("crates/obs/src/a.rs", source).is_empty());
    }

    #[test]
    fn l005_requires_nearby_safety_comment() {
        let bad = "fn f() { unsafe { work() } }";
        let (findings, unsafes) = check_rust("crates/x/src/a.rs", &tokenize(bad));
        assert_eq!(rules_of(&findings), vec!["L005"]);
        assert_eq!(unsafes, vec![1]);

        let good = "// SAFETY: the buffer outlives the call\nfn f() { unsafe { work() } }";
        let (findings, unsafes) = check_rust("crates/x/src/a.rs", &tokenize(good));
        assert!(findings.is_empty());
        assert_eq!(unsafes, vec![2]);

        // A SAFETY comment more than 3 lines up does not count.
        let far = "// SAFETY: stale\n\n\n\n\nunsafe { work() }";
        let (findings, _) = check_rust("crates/x/src/a.rs", &tokenize(far));
        assert_eq!(rules_of(&findings), vec!["L005"]);
    }

    #[test]
    fn l006_scoped_to_stdout_owners() {
        let source = "println!(\"hi\"); print!(\"x\"); eprintln!(\"ok\");";
        let f = rust_findings("crates/obs/src/a.rs", source);
        assert_eq!(rules_of(&f), vec!["L006", "L006"]);
        assert!(rust_findings("crates/cli/src/main.rs", source).is_empty());
        assert!(rust_findings("crates/bench/src/bin/table1.rs", source).is_empty());
        // The bench *library* is not exempt.
        assert_eq!(
            rules_of(&rust_findings("crates/bench/src/timing.rs", "println!(\"t\");")),
            vec!["L006"]
        );
    }

    #[test]
    fn l007_checks_attributes() {
        let bad = "#[derive(Clone, Debug)]\npub enum ParseError { Bad }";
        assert_eq!(rules_of(&rust_findings("crates/x/src/a.rs", bad)), vec!["L007"]);

        let good = "#[derive(Clone)]\n#[non_exhaustive]\npub enum ParseError { Bad }";
        assert!(rust_findings("crates/x/src/a.rs", good).is_empty());

        // Attribute order does not matter.
        let good2 = "#[non_exhaustive]\n#[derive(Clone)]\npub enum IoError { Bad }";
        assert!(rust_findings("crates/x/src/a.rs", good2).is_empty());

        // Non-error enums and private enums are out of scope.
        assert!(rust_findings("crates/x/src/a.rs", "pub enum Mode { A }").is_empty());
        assert!(rust_findings("crates/x/src/a.rs", "enum InnerError { A }").is_empty());
    }

    #[test]
    fn l008_flags_free_calls_only() {
        let free = "let d = diagnose(&plan, &outcome);";
        assert_eq!(rules_of(&rust_findings("crates/bench/src/bin/x.rs", free)), vec!["L008"]);
        assert!(rust_findings("crates/core/src/experiment.rs", free).is_empty());
        assert!(rust_findings("crates/x/src/a.rs", "let d = tester.diagnose(&f);").is_empty());
        assert!(rust_findings("crates/x/src/a.rs", "pub fn diagnose(x: u8) {}").is_empty());
        let qualified = "let d = scan_diagnosis::diagnose(&plan, &outcome);";
        assert_eq!(
            rules_of(&rust_findings("crates/x/src/a.rs", qualified)),
            vec!["L008"]
        );
    }

    /// Builds a workspace graph from (file, source) pairs and runs the
    /// semantic rules under `config`.
    fn semantic(files: &[(&str, &str)], config: &Config) -> Vec<Finding> {
        let models: Vec<crate::model::FileModel> = files
            .iter()
            .map(|(file, src)| {
                crate::model::build_file_model(
                    file,
                    &crate::graph::fallback_crate_ident(file),
                    &tokenize(src),
                )
            })
            .collect();
        check_semantic(&Graph::build(&models), config)
    }

    fn semantic_default(files: &[(&str, &str)]) -> Vec<Finding> {
        semantic(files, &Config::default())
    }

    #[test]
    fn l009_flags_blocking_io_under_live_span() {
        // Blocking write while the span guard is live.
        let bad = "fn f() { let _s = scan_obs::span!(\"hot\"); \
                   std::fs::write(path, data).ok(); }";
        let f = semantic_default(&[("crates/core/src/a.rs", bad)]);
        assert_eq!(rules_of(&f), vec!["L009"]);

        // Same I/O after the span's block has closed is fine.
        let good = "fn f() { { let _s = scan_obs::span!(\"hot\"); work(); } \
                    std::fs::write(path, data).ok(); }";
        assert!(semantic_default(&[("crates/core/src/a.rs", good)]).is_empty());

        // span::enter and socket writes count too.
        let socket = "fn f() { let _s = span::enter(\"scrape\"); \
                      stream.write_all(b\"x\").ok(); }";
        assert_eq!(
            rules_of(&semantic_default(&[("crates/obs/src/a.rs", socket)])),
            vec!["L009"]
        );
        let tcp = "fn f() { let _s = scan_obs::span!(\"net\"); \
                   let c = TcpStream::connect(addr); }";
        assert_eq!(
            rules_of(&semantic_default(&[("crates/sim/src/a.rs", tcp)])),
            vec!["L009"]
        );

        // I/O with no span live, and spans with no I/O, are fine.
        assert!(semantic_default(&[(
            "crates/core/src/a.rs",
            "fn f() { std::fs::write(path, data).ok(); }"
        )])
        .is_empty());
        assert!(semantic_default(&[(
            "crates/core/src/a.rs",
            "fn f() { let _s = scan_obs::span!(\"hot\"); work(); }"
        )])
        .is_empty());

        // Out-of-scope crates (the CLI writes files under spans by
        // design) are not flagged.
        assert!(semantic_default(&[("crates/cli/src/commands.rs", bad)]).is_empty());
    }

    #[test]
    fn l009_propagates_through_the_call_graph() {
        // Factoring the write into a helper does not launder the wait
        // out of the span — including across files and crates, through
        // more than one hop.
        let caller = "fn f(c: &mut S) { let _s = scan_obs::span!(\"scrape\"); respond(c); }";
        let hop = "pub fn respond(c: &mut S) { deep(c); }";
        let io = "pub fn deep(c: &mut S) { c.write_all(b\"x\").ok(); }";
        let f = semantic_default(&[
            ("crates/obs/src/a.rs", caller),
            ("crates/obs/src/b.rs", hop),
            ("crates/netlist/src/c.rs", io),
        ]);
        assert_eq!(rules_of(&f), vec!["L009"]);
        let chain = &f[0].chain;
        assert!(chain.len() >= 3, "chain: {chain:?}");
        assert_eq!(chain[0].file, "crates/obs/src/a.rs");
        assert_eq!(chain.last().unwrap().file, "crates/netlist/src/c.rs");

        // The same helper called with no span live is fine, and the
        // helper's own definition is never flagged.
        let clean_call = "fn f(c: &mut S) { respond(c); } \
                          fn respond(c: &mut S) { c.write_all(b\"x\").ok(); }";
        assert!(semantic_default(&[("crates/obs/src/a.rs", clean_call)]).is_empty());

        // A dirty signature (takes a TcpStream) marks the helper too,
        // even when declared after its call site.
        let sig_dirty = "fn f() { let _s = scan_obs::span!(\"net\"); probe(c); } \
                         fn probe(c: TcpStream) { c.peer_addr().ok(); }";
        assert_eq!(
            rules_of(&semantic_default(&[("crates/obs/src/a.rs", sig_dirty)])),
            vec!["L009"]
        );

        // `#[cfg(test)]` spans measuring test I/O are exempt.
        let test_span = "#[cfg(test)]\nmod tests {\n fn t() { \
                         let _s = scan_obs::span!(\"io\"); \
                         std::fs::write(p, d).ok(); } }";
        assert!(semantic_default(&[("crates/obs/src/a.rs", test_span)]).is_empty());
    }

    #[test]
    fn l012_panic_reachability_with_witness_chain() {
        let config = Config::parse(
            "[roots]\npanic_freedom = [\"crates/daemon/src/server.rs::handle\"]\n",
        )
        .unwrap();
        let server = "pub fn handle(req: Req) -> Resp { plan_build(req) }";
        let core = "pub fn plan_build(req: Req) -> Resp { req.parts.first().unwrap() }";
        let f = semantic(
            &[
                ("crates/daemon/src/server.rs", server),
                ("crates/core/src/plan.rs", core),
            ],
            &config,
        );
        assert_eq!(rules_of(&f), vec!["L012"]);
        assert_eq!(f[0].file, "crates/core/src/plan.rs");
        let chain = &f[0].chain;
        assert_eq!(chain.len(), 2, "chain: {chain:?}");
        assert_eq!(chain[0].file, "crates/daemon/src/server.rs");
        assert_eq!(chain[1].file, "crates/core/src/plan.rs");

        // Without roots the rule is inert.
        let f = semantic_default(&[
            ("crates/daemon/src/server.rs", server),
            ("crates/core/src/plan.rs", core),
        ]);
        assert!(f.iter().all(|x| x.rule != "L012"));

        // Panic sites only reachable through #[cfg(test)] code are fine.
        let masked = "pub fn handle(req: Req) -> Resp { ok(req) }\n\
                      pub fn ok(r: Req) -> Resp { Resp::empty() }\n\
                      #[cfg(test)]\nmod tests { fn t() { boom(); } }\n\
                      pub fn boom() { panic!(\"only tests reach me… via tests\") }";
        let f = semantic(&[("crates/daemon/src/server.rs", masked)], &config);
        assert!(f.iter().all(|x| x.rule != "L012"), "{f:?}");
    }

    #[test]
    fn l013_inconsistent_lock_order_reports_both_witnesses() {
        let a = "pub fn queue_then_cache(s: &S) {\n\
                 let q = s.queue.lock();\n\
                 cache_touch(s);\n\
                 }";
        let b = "pub fn cache_touch(s: &S) { let c = s.cache.lock(); }\n\
                 pub fn cache_then_queue(s: &S) {\n\
                 let c = s.cache.lock();\n\
                 let q = s.queue.lock();\n\
                 }";
        let f = semantic_default(&[
            ("crates/daemon/src/a.rs", a),
            ("crates/daemon/src/b.rs", b),
        ]);
        let l013: Vec<&Finding> = f.iter().filter(|x| x.rule == "L013").collect();
        assert_eq!(l013.len(), 2, "{f:?}");
        // One witness spans two files (queue held in a.rs, cache
        // acquired in b.rs), the other is the direct pair in b.rs.
        assert!(l013
            .iter()
            .any(|x| x.chain.iter().any(|h| h.file == "crates/daemon/src/a.rs")
                && x.chain.iter().any(|h| h.file == "crates/daemon/src/b.rs")));

        // A consistent global order produces no findings.
        let consistent = "pub fn f(s: &S) { let q = s.queue.lock(); let c = s.cache.lock(); }\n\
                          pub fn g(s: &S) { let q = s.queue.lock(); let c = s.cache.lock(); }";
        assert!(semantic_default(&[("crates/daemon/src/a.rs", consistent)]).is_empty());
    }

    #[test]
    fn l014_taint_reaches_through_other_crates() {
        let core = "pub fn summarize(x: &X) -> Y { helper_stats(x) }";
        let helper = "pub fn helper_stats(x: &X) -> Y { \
                      let m: HashMap<u32, u32> = HashMap::new(); m.into() }";
        let f = semantic_default(&[
            ("crates/core/src/diag.rs", core),
            ("crates/netlist/src/stats.rs", helper),
        ]);
        let l014: Vec<&Finding> = f.iter().filter(|x| x.rule == "L014").collect();
        assert_eq!(l014.len(), 2, "two HashMap tokens: {f:?}");
        assert_eq!(l014[0].file, "crates/netlist/src/stats.rs");
        assert_eq!(l014[0].chain[0].file, "crates/core/src/diag.rs");

        // The same helper not reachable from core is fine.
        assert!(semantic_default(&[("crates/netlist/src/stats.rs", helper)]).is_empty());

        // Wall-clock reads in the crates licensed for them are fine
        // even when core reaches them; ambient RNG never is.
        let core2 = "pub fn run(x: &X) { scan_bench::timing::measure(x); }";
        let bench = "pub fn measure(x: &X) { let t = Instant::now(); }";
        let f = semantic_default(&[
            ("crates/core/src/diag.rs", core2),
            ("crates/bench/src/timing.rs", bench),
        ]);
        assert!(f.iter().all(|x| x.rule != "L014"), "{f:?}");
        let bench_rng = "pub fn measure(x: &X) { let r = thread_rng(); }";
        let f = semantic_default(&[
            ("crates/core/src/diag.rs", core2),
            ("crates/bench/src/timing.rs", bench_rng),
        ]);
        assert!(f.iter().any(|x| x.rule == "L014"), "{f:?}");
    }

    #[test]
    fn l010_flags_unwrap_in_obs_hot_paths_only() {
        let bad = "fn f() { let g = lock().unwrap(); g.expect(\"state\"); }";
        assert_eq!(
            rules_of(&rust_findings("crates/obs/src/slo.rs", bad)),
            vec!["L010", "L010"]
        );
        for file in [
            "crates/obs/src/serve.rs",
            "crates/obs/src/recorder.rs",
            "crates/obs/src/timeseries.rs",
        ] {
            assert_eq!(
                rules_of(&rust_findings(file, "fn f() { x.unwrap(); }")),
                vec!["L010"],
                "{file}"
            );
        }
        // Other obs modules — and everything else — are out of scope.
        assert!(rust_findings("crates/obs/src/export.rs", bad).is_empty());
        assert!(rust_findings("crates/core/src/a.rs", bad).is_empty());

        // Non-panicking relatives do not fire, nor do definitions.
        let clean = "fn f() { let g = lock().unwrap_or_else(PoisonError::into_inner); \
                     let v = x.unwrap_or(0); } fn unwrap() {}";
        assert!(rust_findings("crates/obs/src/slo.rs", clean).is_empty());

        // `#[cfg(test)]` items are exempt; code after them is not.
        let mixed = "fn f() { x.ok(); }\n\
                     #[cfg(test)]\nmod tests { fn t() { x.unwrap(); y.expect(\"e\"); } }\n\
                     fn g() { z.unwrap(); }";
        assert_eq!(
            rules_of(&rust_findings("crates/obs/src/recorder.rs", mixed)),
            vec!["L010"]
        );
    }

    #[test]
    fn l011_scoped_to_daemon_queue_paths() {
        let deque = "use std::collections::VecDeque; let q: VecDeque<Job> = VecDeque::new();";
        assert_eq!(
            rules_of(&rust_findings("crates/daemon/src/server.rs", deque)),
            vec!["L011", "L011", "L011"]
        );
        // Other crates may buffer freely.
        assert!(rust_findings("crates/obs/src/export.rs", deque).is_empty());

        let unbounded = "let (tx, rx) = std::sync::mpsc::channel();";
        assert_eq!(
            rules_of(&rust_findings("crates/daemon/src/queue.rs", unbounded)),
            vec!["L011"]
        );
        // Bounded channels and method calls named `channel` are fine.
        assert!(rust_findings(
            "crates/daemon/src/queue.rs",
            "let (tx, rx) = std::sync::mpsc::sync_channel(64);"
        )
        .is_empty());
        assert!(rust_findings("crates/daemon/src/a.rs", "let c = soc.channel(3);").is_empty());
        assert!(rust_findings("crates/daemon/src/a.rs", "fn channel(x: u8) {}").is_empty());
    }

    #[test]
    fn daemon_paths_may_use_wall_clocks_and_loadgen_stdout() {
        assert!(rust_findings("crates/daemon/src/server.rs", "let t = Instant::now();").is_empty());
        assert!(rust_findings("crates/daemon/src/bin/loadgen.rs", "println!(\"x\");").is_empty());
        // The daemon library still must not print to stdout.
        assert_eq!(
            rules_of(&rust_findings("crates/daemon/src/server.rs", "println!(\"x\");")),
            vec!["L006"]
        );
    }

    #[test]
    fn words_in_strings_and_comments_do_not_fire() {
        let source = r####"
// println!("in comment") and unsafe and HashMap
let s = "rand::thread_rng() HashMap unsafe println!";
let r = r#"Instant::now() diagnose(x)"#;
"####;
        assert!(rust_findings("crates/core/src/a.rs", source).is_empty());
    }

    #[test]
    fn inline_allow_parsing() {
        let tokens = tokenize(
            "// lint:allow(L004): membership-only set\nuse std::collections::HashSet;\n\
             // lint:allow(L006)\nprintln!(\"x\");",
        );
        let (allows, malformed) = inline_allows("f.rs", &tokens);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "L004");
        assert_eq!(allows[0].reason, "membership-only set");
        assert_eq!(allows[0].line, 1);
        assert_eq!(malformed.len(), 1);
        assert_eq!(malformed[0].rule, "L000");
    }

    #[test]
    fn l001_manifest_rules() {
        let clean = r#"
[package]
name = "scan-x"

[dependencies]
scan-obs.workspace = true
scan-rng = { path = "../rng", version = "0.1.0" }

[dev-dependencies]
scan-bench = { workspace = true }
"#;
        assert!(check_manifest("crates/x/Cargo.toml", clean).is_empty());

        let dirty = r#"
[dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }

[dependencies.criterion]
version = "0.5"
"#;
        let f = check_manifest("crates/x/Cargo.toml", dirty);
        assert_eq!(rules_of(&f), vec!["L001", "L001", "L001"]);
        assert!(f[0].message.contains("rand"));
        assert!(f[2].message.contains("criterion"));

        let table_ok = "[dependencies.scan-obs]\npath = \"../obs\"\n";
        assert!(check_manifest("crates/x/Cargo.toml", table_ok).is_empty());
    }
}
