//! The rule set: eleven workspace-contract lints over the token stream
//! (Rust sources) and a line-oriented manifest check (`Cargo.toml`).
//!
//! Each rule has an id, short name, severity, and fix-hint; findings
//! carry the 1-based line/column of the offending token. Rules are
//! scoped by path where the contract itself is path-scoped (wall-clock
//! is the bench/obs crates' business; stdout belongs to the CLI and
//! the experiment bins; `HashMap` is only a determinism hazard in the
//! crates whose outputs must be bit-identical).
//!
//! Suppression happens at a higher level (config allow-paths and
//! inline `// lint:allow`); rules here report everything they see.

use crate::findings::{Finding, Severity};
use crate::lexer::{Token, TokenKind};

/// The deterministic crates whose iteration order is contractual
/// (serial vs parallel bit-identity, pinned RNG streams).
const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sim/",
    "crates/bist/",
    "crates/soc/",
];

/// Crates allowed to read wall clocks: the timing harness, the
/// observability layer (monotonic span timing), and the daemon
/// (deadline arithmetic and socket timeouts).
const WALL_CLOCK_CRATES: &[&str] = &["crates/bench/", "crates/obs/", "crates/daemon/"];

/// Paths allowed to print to stdout: the CLI front end (stdout is its
/// payload channel), the experiment bins (same contract, enforced
/// end-to-end by `crates/bench/tests/bin_stdout.rs`), and the load
/// generator bin (scenario summaries are its payload).
const STDOUT_PATHS: &[&str] = &["crates/cli/", "crates/bench/src/bin/", "crates/daemon/src/bin/"];

/// Paths where every work queue must be explicitly bounded: the
/// daemon's admission path. `VecDeque` grows without limit and
/// `mpsc::channel()` buffers without limit; under overload either one
/// turns backpressure into memory exhaustion. L011 denies both here —
/// use `scan_daemon::queue::BoundedQueue` (or `sync_channel`) instead.
const BOUNDED_QUEUE_PATHS: &[&str] = &["crates/daemon/"];

/// The crate that defines `diagnose_checked`; direct `diagnose()`
/// calls are its internal business only.
const DIAGNOSE_CRATE: &str = "crates/core/";

/// Crates where a live span guard must not cover blocking I/O: the
/// deterministic hot paths plus the observability layer itself. A
/// span that blocks on a socket or file charges the wait to whatever
/// it wraps, poisoning every profile and baseline derived from it.
const SPAN_IO_CRATES: &[&str] = &[
    "crates/core/",
    "crates/sim/",
    "crates/bist/",
    "crates/soc/",
    "crates/obs/",
];

/// Observability hot paths where a panic is a telemetry outage — or
/// worse: the flight recorder's panic hook runs on *every* panic, the
/// SLO evaluator and sampler run on a background thread whose death
/// silently stops sampling, and the serve module answers scrapes
/// mid-campaign. `unwrap()`/`expect()` here turn a recoverable hiccup
/// into a lost black box, so L010 denies them outside `#[cfg(test)]`.
const OBS_HOT_PATHS: &[&str] = &[
    "crates/obs/src/serve.rs",
    "crates/obs/src/slo.rs",
    "crates/obs/src/recorder.rs",
    "crates/obs/src/timeseries.rs",
];

fn under(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

fn finding(
    rule: &'static str,
    name: &'static str,
    file: &str,
    token_line: u32,
    token_col: u32,
    message: String,
    hint: &'static str,
) -> Finding {
    Finding {
        rule,
        name,
        severity: Severity::Deny,
        file: file.to_owned(),
        line: token_line,
        col: token_col,
        message,
        hint,
        suppressed: None,
    }
}

/// An inline `// lint:allow(L00x): reason` directive found in a
/// comment. It suppresses findings of that rule on its own line and
/// the line directly below (so it can sit above the offending line or
/// trail it).
#[derive(Clone, Debug)]
pub struct InlineAllow {
    /// Rule id the directive targets.
    pub rule: String,
    /// Written justification (required; an empty reason is itself
    /// reported as a finding).
    pub reason: String,
    /// Line the directive appears on.
    pub line: u32,
}

/// Extracts inline allow directives from comment tokens. Directives
/// missing a reason are returned as findings instead of allows.
#[must_use]
pub fn inline_allows(file: &str, tokens: &[Token]) -> (Vec<InlineAllow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for token in tokens {
        if token.kind != TokenKind::Comment {
            continue;
        }
        let mut rest = token.text.as_str();
        while let Some(start) = rest.find("lint:allow(") {
            rest = &rest[start + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_owned();
            let after = &rest[close + 1..];
            // The reason is whatever follows the closing paren, minus
            // leading separator punctuation.
            let reason = after
                .trim_start_matches([':', ',', '-', '—', ' '])
                .trim()
                .to_owned();
            rest = after;
            if reason.is_empty() {
                malformed.push(finding(
                    "L000",
                    "malformed-suppression",
                    file,
                    token.line,
                    token.col,
                    format!(
                        "inline `lint:allow({rule})` has no reason — write \
                         `// lint:allow({rule}): why this is sound`"
                    ),
                    "every suppression must carry a written justification",
                ));
            } else {
                allows.push(InlineAllow {
                    rule,
                    reason,
                    line: token.line,
                });
            }
        }
    }
    (allows, malformed)
}

/// Runs all token-level rules (L002–L009) over one Rust file,
/// returning raw findings plus the file's `unsafe` inventory.
#[must_use]
pub fn check_rust(file: &str, tokens: &[Token]) -> (Vec<Finding>, Vec<u32>) {
    let mut findings = Vec::new();
    let mut unsafe_lines = Vec::new();
    // Significant (non-comment) tokens drive the pattern rules;
    // comments are consulted for SAFETY annotations.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let comments: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Comment)
        .collect();

    for (i, token) in sig.iter().enumerate() {
        if token.kind != TokenKind::Ident {
            continue;
        }
        match token.text.as_str() {
            // L002 — ambient randomness.
            "thread_rng" | "from_entropy" => findings.push(finding(
                "L002",
                "no-ambient-rng",
                file,
                token.line,
                token.col,
                format!("`{}` draws ambient randomness", token.text),
                "derive a keyed stream from the vendored scan-rng crate instead",
            )),
            "rand" if path_sep_follows(&sig, i) => findings.push(finding(
                "L002",
                "no-ambient-rng",
                file,
                token.line,
                token.col,
                "`rand::` path — the external rand crate is banned".to_owned(),
                "derive a keyed stream from the vendored scan-rng crate instead",
            )),
            // L003 — wall clocks outside bench/obs.
            "Instant" | "SystemTime"
                if !under(file, WALL_CLOCK_CRATES)
                    && path_sep_follows(&sig, i)
                    && sig.get(i + 3).is_some_and(|t| t.is_ident("now")) =>
            {
                findings.push(finding(
                    "L003",
                    "no-wall-clock-in-core",
                    file,
                    token.line,
                    token.col,
                    format!("`{}::now` read outside crates/bench and crates/obs", token.text),
                    "route timing through scan_bench::timing or scan-obs spans",
                ));
            }
            // L004 — unordered iteration hazard in deterministic crates.
            "HashMap" | "HashSet" if under(file, DETERMINISTIC_CRATES) => {
                findings.push(finding(
                    "L004",
                    "no-unordered-iteration",
                    file,
                    token.line,
                    token.col,
                    format!(
                        "`{}` in a deterministic crate — iteration order is unspecified",
                        token.text
                    ),
                    "use BTreeMap/BTreeSet, or sort before iterating and suppress \
                     with a reason if the map is never iterated",
                ));
            }
            // L005 — unsafe needs a SAFETY comment.
            "unsafe" => {
                unsafe_lines.push(token.line);
                if !has_safety_comment(&comments, token.line) {
                    findings.push(finding(
                        "L005",
                        "unsafe-needs-safety-comment",
                        file,
                        token.line,
                        token.col,
                        "`unsafe` without a `// SAFETY:` comment in the 3 lines above"
                            .to_owned(),
                        "state the invariant that makes this sound in a // SAFETY: comment",
                    ));
                }
            }
            // L006 — stdout cleanliness.
            "print" | "println"
                if !under(file, STDOUT_PATHS)
                    && sig.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                findings.push(finding(
                    "L006",
                    "stdout-cleanliness",
                    file,
                    token.line,
                    token.col,
                    format!(
                        "`{}!` outside crates/cli and the experiment bins — stdout is \
                         the payload channel",
                        token.text
                    ),
                    "write diagnostics to stderr (eprintln!) or thread a Write sink",
                ));
            }
            // L007 — pub error enums must be #[non_exhaustive].
            "enum"
                if token_is_pub_before(&sig, i)
                    && sig.get(i + 1).is_some_and(|t| {
                        t.kind == TokenKind::Ident && t.text.contains("Error")
                    })
                    && !non_exhaustive_before(&sig, i - 1) =>
            {
                let name_token = sig[i + 1];
                findings.push(finding(
                    "L007",
                    "nonexhaustive-public-errors",
                    file,
                    name_token.line,
                    name_token.col,
                    format!("pub error enum `{}` is exhaustively matchable", name_token.text),
                    "add #[non_exhaustive] so new failure modes are not breaking changes",
                ));
            }
            // L011 — unbounded queues in the daemon's admission path.
            "VecDeque" if under(file, BOUNDED_QUEUE_PATHS) => {
                findings.push(finding(
                    "L011",
                    "no-unbounded-queue",
                    file,
                    token.line,
                    token.col,
                    "`VecDeque` in the daemon — an unbounded buffer turns \
                     backpressure into memory exhaustion under overload"
                        .to_owned(),
                    "use the bounded admission queue (scan_daemon::queue::BoundedQueue) \
                     or justify the bound with a suppression",
                ));
            }
            "channel"
                if under(file, BOUNDED_QUEUE_PATHS)
                    && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !call_is_method_or_def(&sig, i) =>
            {
                findings.push(finding(
                    "L011",
                    "no-unbounded-queue",
                    file,
                    token.line,
                    token.col,
                    "`channel()` in the daemon — `std::sync::mpsc::channel` buffers \
                     without limit under overload"
                        .to_owned(),
                    "use sync_channel(bound) or the bounded admission queue \
                     (scan_daemon::queue::BoundedQueue)",
                ));
            }
            // L008 — direct diagnose() outside the defining crate.
            "diagnose"
                if !under(file, &[DIAGNOSE_CRATE])
                    && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && !call_is_method_or_def(&sig, i) =>
            {
                findings.push(finding(
                    "L008",
                    "no-silent-empty-intersection",
                    file,
                    token.line,
                    token.col,
                    "direct `diagnose()` call — an empty candidate set is silently \
                     ambiguous"
                        .to_owned(),
                    "call diagnose_checked (or the robust engine) and handle \
                     AllSessionsPassed / ContradictoryHistory",
                ));
            }
            _ => {}
        }
    }
    if under(file, SPAN_IO_CRATES) {
        findings.extend(check_span_blocking_io(file, &sig));
    }
    if under(file, OBS_HOT_PATHS) {
        findings.extend(check_obs_unwrap(file, &sig));
    }
    (findings, unsafe_lines)
}

/// L010 — `no-unwrap-in-obs-hot-path`: within [`OBS_HOT_PATHS`], no
/// `.unwrap()` or `.expect(…)` call outside `#[cfg(test)]` items. The
/// observability layer must degrade, not die: a panic in the sampler
/// thread stops all sampling, a panic under the recorder's own panic
/// hook loses the black box, and a panic while serving a scrape kills
/// the endpoint mid-campaign. Use the poison-recovering `lock()`
/// helpers, `let … else` with a logged fallback, or propagate an
/// error. Test modules are exempt — a test *should* panic on a broken
/// invariant.
fn check_obs_unwrap(file: &str, sig: &[&Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut depth = 0usize;
    // Depth of the brace block owned by an active `#[cfg(test)]`
    // attribute; tokens inside it are exempt.
    let mut skip_until: Option<usize> = None;
    let mut pending_cfg_test = false;
    for (i, token) in sig.iter().enumerate() {
        if token.is_punct('{') {
            depth += 1;
            if pending_cfg_test && skip_until.is_none() {
                skip_until = Some(depth);
                pending_cfg_test = false;
            }
        } else if token.is_punct('}') {
            if skip_until == Some(depth) {
                skip_until = None;
            }
            depth = depth.saturating_sub(1);
        }
        if skip_until.is_some() || token.kind != TokenKind::Ident {
            continue;
        }
        // `#[cfg(test)]` — the next brace block is the test item.
        if token.is_ident("cfg")
            && i >= 2
            && sig[i - 1].is_punct('[')
            && sig[i - 2].is_punct('#')
            && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
            && sig.get(i + 2).is_some_and(|t| t.is_ident("test"))
        {
            pending_cfg_test = true;
            continue;
        }
        if (token.is_ident("unwrap") || token.is_ident("expect"))
            && i > 0
            && sig[i - 1].is_punct('.')
            && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            findings.push(finding(
                "L010",
                "no-unwrap-in-obs-hot-path",
                file,
                token.line,
                token.col,
                format!(
                    "`.{}(…)` in an observability hot path — a panic here kills \
                     the sampler/recorder/endpoint instead of degrading",
                    token.text
                ),
                "recover instead of panicking: poison-recovering lock() helpers, \
                 `let … else` with a logged fallback, or propagate the error",
            ));
        }
    }
    findings
}

/// L009 — `no-blocking-io-inside-span`: within [`SPAN_IO_CRATES`], no
/// `TcpStream` use, `File::create`/`File::open`, `fs::write`,
/// `OpenOptions`, or `.write_all` call may sit between a span's open
/// and its drop. Span liveness is tracked lexically: a guard bound by
/// `span!(…)` / `span::enter(…)` / `span::enter_fmt(…)` lives until
/// its enclosing block closes. Blocking I/O propagates one level
/// through file-local helpers: a function whose signature or body
/// mentions a blocking token is "dirty", and calling it under a live
/// span is also a finding — factoring the write into a helper does
/// not launder the wait out of the span.
fn check_span_blocking_io(file: &str, sig: &[&Token]) -> Vec<Finding> {
    let dirty = dirty_functions(sig);
    let mut findings = Vec::new();
    let mut depth = 0usize;
    // Brace depths at which a span guard was bound; the guard dies
    // when the depth drops back below its binding depth.
    let mut live: Vec<usize> = Vec::new();
    for (i, token) in sig.iter().enumerate() {
        if token.is_punct('{') {
            depth += 1;
        } else if token.is_punct('}') {
            depth = depth.saturating_sub(1);
            while live.last().is_some_and(|&d| d > depth) {
                live.pop();
            }
        }
        if token.kind != TokenKind::Ident {
            continue;
        }
        let opens_span = (token.is_ident("span")
            && sig.get(i + 1).is_some_and(|t| t.is_punct('!')))
            || ((token.is_ident("enter") || token.is_ident("enter_fmt"))
                && i >= 3
                && sig[i - 1].is_punct(':')
                && sig[i - 2].is_punct(':')
                && sig[i - 3].is_ident("span"));
        if opens_span {
            live.push(depth);
            continue;
        }
        if live.is_empty() {
            continue;
        }
        if blocking_io_token(sig, i) {
            findings.push(finding(
                "L009",
                "no-blocking-io-inside-span",
                file,
                token.line,
                token.col,
                format!(
                    "`{}` while a span guard is live — the span's timing absorbs \
                     the blocking wait",
                    token.text
                ),
                "drop the span guard before the I/O, or move the write out of the \
                 instrumented region; suppress with a reason only if the span \
                 deliberately measures the I/O itself",
            ));
        } else if dirty.contains(&token.text.as_str())
            && sig.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !(i > 0 && sig[i - 1].is_ident("fn"))
        {
            findings.push(finding(
                "L009",
                "no-blocking-io-inside-span",
                file,
                token.line,
                token.col,
                format!(
                    "`{}(…)` while a span guard is live — the callee performs \
                     blocking I/O, so the span's timing absorbs the wait",
                    token.text
                ),
                "drop the span guard before the call, or move the I/O out of the \
                 instrumented region; suppress with a reason only if the span \
                 deliberately measures the I/O itself",
            ));
        }
    }
    findings
}

/// True when the ident at `i` is one of L009's blocking-I/O tokens:
/// `TcpStream`, `OpenOptions`, `File::create`/`File::open`,
/// `fs::write`/`fs::write_all`, or a `.write_all` method call.
fn blocking_io_token(sig: &[&Token], i: usize) -> bool {
    match sig[i].text.as_str() {
        "TcpStream" | "OpenOptions" => true,
        "File" => {
            path_sep_follows(sig, i)
                && sig
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("create") || t.is_ident("open"))
        }
        "fs" => {
            path_sep_follows(sig, i)
                && sig
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("write") || t.is_ident("write_all"))
        }
        "write_all" => i > 0 && sig[i - 1].is_punct('.'),
        _ => false,
    }
}

/// First pass for L009's call-through check: collects the names of
/// file-local functions whose signature or body contains a blocking
/// I/O token. Propagation is deliberately one level and file-local —
/// deep interprocedural analysis is out of scope for a token-stream
/// linter, and one hop already catches the "factored the write into a
/// helper" shape.
fn dirty_functions<'a>(sig: &[&'a Token]) -> Vec<&'a str> {
    let mut dirty = Vec::new();
    // Stack of (fn-name index, depth at the `fn` keyword, is_dirty).
    let mut stack: Vec<(usize, usize, bool)> = Vec::new();
    let mut depth = 0usize;
    for (i, token) in sig.iter().enumerate() {
        if token.is_punct('{') {
            depth += 1;
        } else if token.is_punct('}') {
            depth = depth.saturating_sub(1);
            while stack.last().is_some_and(|&(_, d, _)| d >= depth) {
                let (name, _, is_dirty) = stack.pop().expect("checked non-empty");
                if is_dirty && !dirty.contains(&sig[name].text.as_str()) {
                    dirty.push(sig[name].text.as_str());
                }
            }
        }
        if token.kind != TokenKind::Ident {
            continue;
        }
        if token.is_ident("fn")
            && sig.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            stack.push((i + 1, depth, false));
        } else if blocking_io_token(sig, i) {
            if let Some(frame) = stack.last_mut() {
                frame.2 = true;
            }
        }
    }
    // Functions still open at EOF (unbalanced braces) drain here.
    for (name, _, is_dirty) in stack {
        if is_dirty && !dirty.contains(&sig[name].text.as_str()) {
            dirty.push(sig[name].text.as_str());
        }
    }
    dirty
}

/// True when significant tokens `i+1`, `i+2` are `::`.
fn path_sep_follows(sig: &[&Token], i: usize) -> bool {
    sig.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && sig.get(i + 2).is_some_and(|t| t.is_punct(':'))
}

/// True when a `// SAFETY:` (or `/* SAFETY: */`) comment sits on the
/// `unsafe` line itself or within the 3 lines above it.
fn has_safety_comment(comments: &[&Token], unsafe_line: u32) -> bool {
    comments.iter().any(|c| {
        c.text.contains("SAFETY:")
            && c.line <= unsafe_line
            && unsafe_line.saturating_sub(c.line) <= 3
    })
}

/// True when the token before `i` (an `enum` keyword) is `pub`.
/// `pub(crate)` and private enums are not public API and are skipped.
fn token_is_pub_before(sig: &[&Token], i: usize) -> bool {
    i > 0 && sig[i - 1].is_ident("pub")
}

/// Walks attribute groups backwards from the token before `pub`
/// (index `pub_index - 1`... caller passes the index *of* `pub`) and
/// reports whether any attribute mentions `non_exhaustive`.
fn non_exhaustive_before(sig: &[&Token], pub_index: usize) -> bool {
    let mut j = pub_index; // index of `pub`; attributes end at j-1
    while j > 0 {
        let end = j - 1;
        if !sig[end].is_punct(']') {
            return false; // ran out of attributes
        }
        // Find the matching `[`, tolerating nested brackets inside the
        // attribute (e.g. #[cfg_attr(..., derive(...))]).
        let mut depth = 0usize;
        let mut k = end;
        loop {
            if sig[k].is_punct(']') {
                depth += 1;
            } else if sig[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false; // unbalanced; bail conservatively
            }
            k -= 1;
        }
        if k == 0 || !sig[k - 1].is_punct('#') {
            return false;
        }
        if sig[k..end].iter().any(|t| t.is_ident("non_exhaustive")) {
            return true;
        }
        j = k - 1; // continue above the `#`
    }
    false
}

/// True when `diagnose(` at `i` is a method call (`x.diagnose(`), a
/// definition (`fn diagnose(`), or a macro fragment we should not
/// flag.
fn call_is_method_or_def(sig: &[&Token], i: usize) -> bool {
    i > 0 && (sig[i - 1].is_punct('.') || sig[i - 1].is_ident("fn"))
}

/// L001 — `no-external-deps`: every dependency in every `Cargo.toml`
/// must be a workspace path dependency (or `workspace = true`
/// inheritance). A line-oriented scan is enough: dependency sections
/// are flat `name = value` lists, and a value that carries neither
/// `path` nor `workspace` names a registry crate.
#[must_use]
pub fn check_manifest(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_dep_section = false;
    // `[dependencies.foo]`-style tables: (header line, name, any path/
    // workspace key seen).
    let mut dep_table: Option<(u32, String, bool)> = None;
    for (index, raw) in text.lines().enumerate() {
        let line_no = u32::try_from(index + 1).unwrap_or(u32::MAX);
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dep_table(&mut dep_table, file, &mut findings);
            let header = line.trim_matches(['[', ']']);
            in_dep_section = is_dep_section(header);
            if let Some(name) = dep_table_name(header) {
                dep_table = Some((line_no, name.to_owned(), false));
            }
            continue;
        }
        if let Some((_, _, satisfied)) = &mut dep_table {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || key == "workspace" {
                *satisfied = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `foo.workspace = true` / `foo.path = "…"` dotted keys are
        // workspace-local; inline tables must mention path/workspace.
        let local = key.ends_with(".workspace")
            || key.ends_with(".path")
            || value.contains("path")
            || value.contains("workspace");
        if !local {
            findings.push(finding(
                "L001",
                "no-external-deps",
                file,
                line_no,
                1,
                format!("dependency `{key}` is not a workspace path dependency"),
                "vendor the code into a crates/ member; the build environment has \
                 no registry access",
            ));
        }
    }
    flush_dep_table(&mut dep_table, file, &mut findings);
    findings
}

fn flush_dep_table(
    dep_table: &mut Option<(u32, String, bool)>,
    file: &str,
    findings: &mut Vec<Finding>,
) {
    if let Some((line, name, satisfied)) = dep_table.take() {
        if !satisfied {
            findings.push(finding(
                "L001",
                "no-external-deps",
                file,
                line,
                1,
                format!("dependency table `{name}` has no `path` or `workspace` key"),
                "vendor the code into a crates/ member; the build environment has \
                 no registry access",
            ));
        }
    }
}

fn is_dep_section(header: &str) -> bool {
    matches!(
        header,
        "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
    ) || (header.starts_with("target.") && header.ends_with("dependencies"))
}

/// For `[dependencies.foo]`-style headers, the dependency name.
fn dep_table_name(header: &str) -> Option<&str> {
    for section in [
        "dependencies.",
        "dev-dependencies.",
        "build-dependencies.",
        "workspace.dependencies.",
    ] {
        if let Some(name) = header.strip_prefix(section) {
            return Some(name);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn rust_findings(file: &str, source: &str) -> Vec<Finding> {
        check_rust(file, &tokenize(source)).0
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn l002_flags_ambient_rng() {
        let f = rust_findings("crates/x/src/lib.rs", "let r = rand::thread_rng();");
        assert_eq!(rules_of(&f), vec!["L002", "L002"]);
        assert!(rust_findings("crates/x/src/lib.rs", "let r = scan_rng::Rng::new(0);").is_empty());
        // `rand` as a plain variable is not the crate path.
        assert!(rust_findings("crates/x/src/lib.rs", "let rand = 3; use_it(rand);").is_empty());
    }

    #[test]
    fn l003_scoped_to_non_timing_crates() {
        let source = "let t = Instant::now();";
        assert_eq!(rules_of(&rust_findings("crates/core/src/a.rs", source)), vec!["L003"]);
        assert!(rust_findings("crates/bench/src/timing.rs", source).is_empty());
        assert!(rust_findings("crates/obs/src/span.rs", source).is_empty());
        // `Instant::elapsed` etc. without `now` is fine.
        assert!(rust_findings("crates/core/src/a.rs", "type T = Instant;").is_empty());
    }

    #[test]
    fn l004_scoped_to_deterministic_crates() {
        let source = "use std::collections::HashMap;";
        assert_eq!(rules_of(&rust_findings("crates/core/src/a.rs", source)), vec!["L004"]);
        assert_eq!(rules_of(&rust_findings("crates/soc/tests/t.rs", source)), vec!["L004"]);
        assert!(rust_findings("crates/netlist/src/a.rs", source).is_empty());
        assert!(rust_findings("crates/obs/src/a.rs", source).is_empty());
    }

    #[test]
    fn l005_requires_nearby_safety_comment() {
        let bad = "fn f() { unsafe { work() } }";
        let (findings, unsafes) = check_rust("crates/x/src/a.rs", &tokenize(bad));
        assert_eq!(rules_of(&findings), vec!["L005"]);
        assert_eq!(unsafes, vec![1]);

        let good = "// SAFETY: the buffer outlives the call\nfn f() { unsafe { work() } }";
        let (findings, unsafes) = check_rust("crates/x/src/a.rs", &tokenize(good));
        assert!(findings.is_empty());
        assert_eq!(unsafes, vec![2]);

        // A SAFETY comment more than 3 lines up does not count.
        let far = "// SAFETY: stale\n\n\n\n\nunsafe { work() }";
        let (findings, _) = check_rust("crates/x/src/a.rs", &tokenize(far));
        assert_eq!(rules_of(&findings), vec!["L005"]);
    }

    #[test]
    fn l006_scoped_to_stdout_owners() {
        let source = "println!(\"hi\"); print!(\"x\"); eprintln!(\"ok\");";
        let f = rust_findings("crates/obs/src/a.rs", source);
        assert_eq!(rules_of(&f), vec!["L006", "L006"]);
        assert!(rust_findings("crates/cli/src/main.rs", source).is_empty());
        assert!(rust_findings("crates/bench/src/bin/table1.rs", source).is_empty());
        // The bench *library* is not exempt.
        assert_eq!(
            rules_of(&rust_findings("crates/bench/src/timing.rs", "println!(\"t\");")),
            vec!["L006"]
        );
    }

    #[test]
    fn l007_checks_attributes() {
        let bad = "#[derive(Clone, Debug)]\npub enum ParseError { Bad }";
        assert_eq!(rules_of(&rust_findings("crates/x/src/a.rs", bad)), vec!["L007"]);

        let good = "#[derive(Clone)]\n#[non_exhaustive]\npub enum ParseError { Bad }";
        assert!(rust_findings("crates/x/src/a.rs", good).is_empty());

        // Attribute order does not matter.
        let good2 = "#[non_exhaustive]\n#[derive(Clone)]\npub enum IoError { Bad }";
        assert!(rust_findings("crates/x/src/a.rs", good2).is_empty());

        // Non-error enums and private enums are out of scope.
        assert!(rust_findings("crates/x/src/a.rs", "pub enum Mode { A }").is_empty());
        assert!(rust_findings("crates/x/src/a.rs", "enum InnerError { A }").is_empty());
    }

    #[test]
    fn l008_flags_free_calls_only() {
        let free = "let d = diagnose(&plan, &outcome);";
        assert_eq!(rules_of(&rust_findings("crates/bench/src/bin/x.rs", free)), vec!["L008"]);
        assert!(rust_findings("crates/core/src/experiment.rs", free).is_empty());
        assert!(rust_findings("crates/x/src/a.rs", "let d = tester.diagnose(&f);").is_empty());
        assert!(rust_findings("crates/x/src/a.rs", "pub fn diagnose(x: u8) {}").is_empty());
        let qualified = "let d = scan_diagnosis::diagnose(&plan, &outcome);";
        assert_eq!(
            rules_of(&rust_findings("crates/x/src/a.rs", qualified)),
            vec!["L008"]
        );
    }

    #[test]
    fn l009_flags_blocking_io_under_live_span() {
        // Blocking write while the span guard is live.
        let bad = "fn f() { let _s = scan_obs::span!(\"hot\"); \
                   std::fs::write(path, data).unwrap(); }";
        assert_eq!(rules_of(&rust_findings("crates/core/src/a.rs", bad)), vec!["L009"]);

        // Same I/O after the span's block has closed is fine.
        let good = "fn f() { { let _s = scan_obs::span!(\"hot\"); work(); } \
                    std::fs::write(path, data).unwrap(); }";
        assert!(rust_findings("crates/core/src/a.rs", good).is_empty());

        // span::enter and socket writes count too.
        let socket = "fn f() { let _s = span::enter(\"scrape\"); \
                      stream.write_all(b\"x\").ok(); }";
        assert_eq!(rules_of(&rust_findings("crates/obs/src/a.rs", socket)), vec!["L009"]);
        let tcp = "fn f() { let _s = scan_obs::span!(\"net\"); \
                   let c = TcpStream::connect(addr); }";
        assert_eq!(rules_of(&rust_findings("crates/sim/src/a.rs", tcp)), vec!["L009"]);

        // I/O with no span live, and spans with no I/O, are fine.
        assert!(rust_findings(
            "crates/core/src/a.rs",
            "fn f() { std::fs::write(path, data).unwrap(); }"
        )
        .is_empty());
        assert!(rust_findings(
            "crates/core/src/a.rs",
            "fn f() { let _s = scan_obs::span!(\"hot\"); work(); }"
        )
        .is_empty());

        // Out-of-scope crates (the CLI writes files under spans by
        // design) are not flagged.
        assert!(rust_findings("crates/cli/src/commands.rs", bad).is_empty());

        // Factoring the write into a file-local helper does not
        // launder the wait out of the span: calling a dirty function
        // under a live span is flagged too (one hop, file-local).
        let laundered = "fn f(c: &mut S) { let _s = scan_obs::span!(\"scrape\"); \
                         respond(c); } \
                         fn respond(c: &mut S) { c.write_all(b\"x\").ok(); }";
        assert_eq!(
            rules_of(&rust_findings("crates/obs/src/a.rs", laundered)),
            vec!["L009"]
        );

        // The same helper called with no span live is fine, and the
        // helper's own definition is never flagged.
        let clean_call = "fn f(c: &mut S) { respond(c); } \
                          fn respond(c: &mut S) { c.write_all(b\"x\").ok(); }";
        assert!(rust_findings("crates/obs/src/a.rs", clean_call).is_empty());

        // A dirty signature (takes a TcpStream) marks the helper too,
        // even when declared after its call site.
        let sig_dirty = "fn f() { let _s = scan_obs::span!(\"net\"); probe(c); } \
                         fn probe(c: TcpStream) { c.peer_addr().ok(); }";
        assert_eq!(
            rules_of(&rust_findings("crates/obs/src/a.rs", sig_dirty)),
            vec!["L009"]
        );
    }

    #[test]
    fn l010_flags_unwrap_in_obs_hot_paths_only() {
        let bad = "fn f() { let g = lock().unwrap(); g.expect(\"state\"); }";
        assert_eq!(
            rules_of(&rust_findings("crates/obs/src/slo.rs", bad)),
            vec!["L010", "L010"]
        );
        for file in [
            "crates/obs/src/serve.rs",
            "crates/obs/src/recorder.rs",
            "crates/obs/src/timeseries.rs",
        ] {
            assert_eq!(
                rules_of(&rust_findings(file, "fn f() { x.unwrap(); }")),
                vec!["L010"],
                "{file}"
            );
        }
        // Other obs modules — and everything else — are out of scope.
        assert!(rust_findings("crates/obs/src/export.rs", bad).is_empty());
        assert!(rust_findings("crates/core/src/a.rs", bad).is_empty());

        // Non-panicking relatives do not fire, nor do definitions.
        let clean = "fn f() { let g = lock().unwrap_or_else(PoisonError::into_inner); \
                     let v = x.unwrap_or(0); } fn unwrap() {}";
        assert!(rust_findings("crates/obs/src/slo.rs", clean).is_empty());

        // `#[cfg(test)]` items are exempt; code after them is not.
        let mixed = "fn f() { x.ok(); }\n\
                     #[cfg(test)]\nmod tests { fn t() { x.unwrap(); y.expect(\"e\"); } }\n\
                     fn g() { z.unwrap(); }";
        assert_eq!(
            rules_of(&rust_findings("crates/obs/src/recorder.rs", mixed)),
            vec!["L010"]
        );
    }

    #[test]
    fn l011_scoped_to_daemon_queue_paths() {
        let deque = "use std::collections::VecDeque; let q: VecDeque<Job> = VecDeque::new();";
        assert_eq!(
            rules_of(&rust_findings("crates/daemon/src/server.rs", deque)),
            vec!["L011", "L011", "L011"]
        );
        // Other crates may buffer freely.
        assert!(rust_findings("crates/obs/src/export.rs", deque).is_empty());

        let unbounded = "let (tx, rx) = std::sync::mpsc::channel();";
        assert_eq!(
            rules_of(&rust_findings("crates/daemon/src/queue.rs", unbounded)),
            vec!["L011"]
        );
        // Bounded channels and method calls named `channel` are fine.
        assert!(rust_findings(
            "crates/daemon/src/queue.rs",
            "let (tx, rx) = std::sync::mpsc::sync_channel(64);"
        )
        .is_empty());
        assert!(rust_findings("crates/daemon/src/a.rs", "let c = soc.channel(3);").is_empty());
        assert!(rust_findings("crates/daemon/src/a.rs", "fn channel(x: u8) {}").is_empty());
    }

    #[test]
    fn daemon_paths_may_use_wall_clocks_and_loadgen_stdout() {
        assert!(rust_findings("crates/daemon/src/server.rs", "let t = Instant::now();").is_empty());
        assert!(rust_findings("crates/daemon/src/bin/loadgen.rs", "println!(\"x\");").is_empty());
        // The daemon library still must not print to stdout.
        assert_eq!(
            rules_of(&rust_findings("crates/daemon/src/server.rs", "println!(\"x\");")),
            vec!["L006"]
        );
    }

    #[test]
    fn words_in_strings_and_comments_do_not_fire() {
        let source = r####"
// println!("in comment") and unsafe and HashMap
let s = "rand::thread_rng() HashMap unsafe println!";
let r = r#"Instant::now() diagnose(x)"#;
"####;
        assert!(rust_findings("crates/core/src/a.rs", source).is_empty());
    }

    #[test]
    fn inline_allow_parsing() {
        let tokens = tokenize(
            "// lint:allow(L004): membership-only set\nuse std::collections::HashSet;\n\
             // lint:allow(L006)\nprintln!(\"x\");",
        );
        let (allows, malformed) = inline_allows("f.rs", &tokens);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "L004");
        assert_eq!(allows[0].reason, "membership-only set");
        assert_eq!(allows[0].line, 1);
        assert_eq!(malformed.len(), 1);
        assert_eq!(malformed[0].rule, "L000");
    }

    #[test]
    fn l001_manifest_rules() {
        let clean = r#"
[package]
name = "scan-x"

[dependencies]
scan-obs.workspace = true
scan-rng = { path = "../rng", version = "0.1.0" }

[dev-dependencies]
scan-bench = { workspace = true }
"#;
        assert!(check_manifest("crates/x/Cargo.toml", clean).is_empty());

        let dirty = r#"
[dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }

[dependencies.criterion]
version = "0.5"
"#;
        let f = check_manifest("crates/x/Cargo.toml", dirty);
        assert_eq!(rules_of(&f), vec!["L001", "L001", "L001"]);
        assert!(f[0].message.contains("rand"));
        assert!(f[2].message.contains("criterion"));

        let table_ok = "[dependencies.scan-obs]\npath = \"../obs\"\n";
        assert!(check_manifest("crates/x/Cargo.toml", table_ok).is_empty());
    }
}
