//! `scan-lint` — workspace static-analysis gate.
//!
//! Follows the workspace binary contract (`crates/bench/tests/
//! bin_stdout.rs`): stdout is reserved for machine payloads and stays
//! empty — the human findings table goes to stderr, the NDJSON report
//! to `--out` (validated by `obs-check`). `--deny` turns any
//! unsuppressed finding into a nonzero exit, which is how
//! `scripts/verify.sh` gates the build.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: scan-lint [--root DIR] [--config FILE] [--out FILE] [--graph FILE] [--deny]

Static-analysis pass over every .rs file and Cargo.toml in the
workspace: determinism, unsafe-audit, contract, and call-graph lints
L001-L014 (catalogue in docs/LINTS.md).

  --root DIR     workspace root to lint (default: current directory)
  --config FILE  lint.toml to honour (default: <root>/lint.toml)
  --out FILE     write the NDJSON findings report here
  --graph FILE   write the workspace call graph as NDJSON here
  --deny         exit nonzero when any unsuppressed finding remains
  -h, --help     print this usage text to stderr and exit

The findings table is written to stderr; stdout stays empty.
Suppressions: [allow.L00x] path prefixes in lint.toml, or inline
`// lint:allow(L00x): reason` comments — a reason is mandatory.
";

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    out: Option<PathBuf>,
    graph: Option<PathBuf>,
    deny: bool,
}

fn parse_options() -> Result<Option<Options>, String> {
    let mut options = Options {
        root: PathBuf::from("."),
        config: None,
        out: None,
        graph: None,
        deny: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--deny" => options.deny = true,
            "--root" => {
                options.root = args.next().ok_or("--root needs a value")?.into();
            }
            "--config" => {
                options.config = Some(args.next().ok_or("--config needs a value")?.into());
            }
            "--out" => {
                options.out = Some(args.next().ok_or("--out needs a value")?.into());
            }
            "--graph" => {
                options.graph = Some(args.next().ok_or("--graph needs a value")?.into());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Some(options))
}

fn run(options: &Options) -> Result<ExitCode, String> {
    let config = match &options.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            scan_lint::Config::parse(&text).map_err(|e| e.to_string())?
        }
        None => scan_lint::load_config(&options.root)?,
    };
    let (report, graph) = scan_lint::lint_workspace_with_graph(&options.root, &config)
        .map_err(|e| format!("cannot walk {}: {e}", options.root.display()))?;
    if let Some(path) = &options.graph {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, graph.render_ndjson())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(out) = &options.out {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(out, report.render_ndjson())
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    }
    eprint!("{}", report.render_table());
    let denied = report.deny_count();
    if options.deny && denied > 0 {
        eprintln!("scan-lint: --deny: failing on {denied} unsuppressed finding(s)");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match parse_options() {
        Ok(None) => {
            eprint!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Some(options)) => run(&options).unwrap_or_else(|message| {
            eprintln!("scan-lint: error: {message}");
            ExitCode::from(2)
        }),
        Err(message) => {
            eprintln!("scan-lint: error: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
