//! Syntax-aware item model built on top of the lexer.
//!
//! One pass over the token stream recovers just enough structure for the
//! semantic rules: module / `impl` / `trait` / `fn` nesting via
//! brace-matched scopes, `#[cfg(test)]` and `#[test]` attribute tracking,
//! `use` imports, and — inside every function body — call sites, panic
//! sites, lock acquisitions (with which locks are lexically held), span
//! liveness, blocking-I/O tokens and determinism-taint tokens. The output
//! feeds [`crate::graph`], which stitches per-file models into a workspace
//! call graph.
//!
//! This is deliberately not a full parser. Generics, macros-by-example and
//! trait dispatch are approximated conservatively; the limits are
//! documented in `docs/LINTS.md` under "lexical vs semantic rules".

use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Everything extracted from one `.rs` file.
#[derive(Clone, Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// Crate identifier (underscored package name, e.g. `scan_daemon`).
    pub crate_ident: String,
    /// Flattened `use` imports: full path plus the name it binds locally.
    pub uses: Vec<UsePath>,
    /// Functions in source order, including trait-method declarations.
    pub functions: Vec<FnItem>,
    /// Every capitalized identifier in the file — the type and trait
    /// names lexically in scope. Method-call resolution only links a
    /// candidate whose owner type (or implemented trait) appears here:
    /// calling a method on a value requires naming its type *somewhere*
    /// in the file (import, signature, construction, impl header), so
    /// this filters out name-only aliases like `AtomicU8::load` vs
    /// `SloConfig::load` without type inference.
    pub type_idents: BTreeSet<String>,
}

/// One `use` import, e.g. `use scan_obs::export as ex;` gives
/// `segments = ["scan_obs", "export"]`, `alias = "ex"`.
#[derive(Clone, Debug)]
pub struct UsePath {
    pub segments: Vec<String>,
    pub alias: String,
}

/// A `fn` item (free function, inherent/trait `impl` method, or trait
/// method declaration).
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub owner: Option<String>,
    /// For `impl Trait for Type` methods, the trait name — lets
    /// method-call resolution link trait-object dispatch sites that
    /// name only the trait, never the concrete type.
    pub trait_owner: Option<String>,
    /// Inline `mod` path inside the file (not the file's module path).
    pub modules: Vec<String>,
    pub line: u32,
    pub col: u32,
    /// True under `#[cfg(test)]` / `#[test]` or inside a `tests/` tree.
    pub is_test: bool,
    pub calls: Vec<CallSite>,
    pub facts: Vec<Fact>,
    /// Direct nested acquisitions: `second` taken while `first` was held.
    pub lock_pairs: Vec<LockPair>,
}

/// A resolved-later call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Path segments as written (`["scan_obs", "export", "write_file"]`,
    /// or just `["helper"]`); method calls carry the bare method name.
    pub path: Vec<String>,
    pub is_method: bool,
    pub line: u32,
    pub col: u32,
    /// True when a tracing span guard is lexically live at the call.
    pub under_span: bool,
    /// True when the call happens inside a `catch_unwind(...)` argument
    /// list — panics past this point do not unwind the caller, so
    /// panic-reachability (L012) stops here.
    pub fenced: bool,
    /// Lock guards lexically live at the call.
    pub held_locks: Vec<HeldLock>,
}

/// A lock acquisition that is (still) lexically live.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeldLock {
    /// Receiver name the guard came from (`state` in `self.state.lock()`).
    pub name: String,
    pub line: u32,
}

/// What kind of per-function fact a site contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FactKind {
    /// Can panic at runtime (`unwrap`, `panic!`, indexing, `/`, `%`, …).
    Panic,
    /// Mutex acquisition (`.lock()`).
    Lock,
    /// Blocking I/O token (`TcpStream`, `fs::write`, `.write_all`, …).
    Io,
    /// Wall-clock read (`Instant::now`, `SystemTime::now`).
    Clock,
    /// Ambient RNG (`thread_rng`, `from_entropy`, `rand::`).
    Rng,
    /// Unordered iteration source (`HashMap`, `HashSet`).
    Unordered,
}

/// One extracted fact with its site.
#[derive(Clone, Debug)]
pub struct Fact {
    pub kind: FactKind,
    /// Human-readable token, e.g. `.unwrap()`, `panic!`, `index`,
    /// `HashMap`, or the lock receiver name for [`FactKind::Lock`].
    pub what: String,
    pub line: u32,
    pub col: u32,
    pub under_span: bool,
    /// Fact found in the `fn` signature rather than the body (I/O only):
    /// taking a `TcpStream` taints the function even without a body call.
    pub in_sig: bool,
    /// True when the site sits inside a `catch_unwind(...)` argument
    /// list (see [`CallSite::fenced`]).
    pub fenced: bool,
}

/// Two locks held in a nested fashion inside a single function.
#[derive(Clone, Debug)]
pub struct LockPair {
    pub first: HeldLock,
    pub second: HeldLock,
}

/// How long a guard (span or lock) stays lexically live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Life {
    /// Live until the block at this depth closes (`let g = x.lock();`).
    Block(usize),
    /// Acquired in an `if`/`while`/`match` head: live only inside the
    /// block that follows (becomes `Block` when it opens).
    NextBlock,
    /// Statement temporary: dies at the next `;` at this depth.
    Stmt(usize),
}

#[derive(Clone, Debug)]
enum ScopeKind {
    Mod(String),
    /// `impl [Trait for] Type` — (type name, trait name).
    Impl(Option<String>, Option<String>),
    Trait(String),
    Fn(usize),
    Block,
}

#[derive(Clone, Debug)]
struct Scope {
    kind: ScopeKind,
    is_test: bool,
}

struct PendingFn {
    item: FnItem,
    /// Paren nesting inside the signature; body `{` only counts at 0.
    paren: usize,
}

/// Macro names whose invocation is a panic site. `debug_assert*` is
/// excluded: it compiles out of release builds, which is what ships.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names consumed as facts — no call edge is recorded for them,
/// otherwise `.lock()` would alias every workspace helper named `lock`.
const FACT_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "lock",
    "write_all",
];

/// Keywords and std constructors that never form call edges even when
/// followed by `(` (constructors also appear in pattern position).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "fn", "loop", "move", "as", "in", "let", "else",
    "break", "continue", "unsafe", "pub", "use", "where", "impl", "dyn", "Some", "None", "Ok",
    "Err", "Box", "Vec",
];

/// Item keywords that consume a pending `#[...]` attribute.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "mod", "impl", "trait", "struct", "enum", "use", "static", "const", "type", "macro",
];

/// Build the model for one file. `crate_ident` comes from the manifest
/// map in `lib.rs` (fallback: derived from the path).
#[must_use]
pub fn build_file_model(file: &str, crate_ident: &str, tokens: &[Token]) -> FileModel {
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::Comment | TokenKind::Lifetime))
        .collect();
    let file_is_test = file.contains("/tests/") || file.starts_with("tests/");

    let mut model = FileModel {
        file: file.to_string(),
        crate_ident: crate_ident.to_string(),
        uses: Vec::new(),
        functions: Vec::new(),
        type_idents: BTreeSet::new(),
    };
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_test = false;
    let mut pending_scope: Option<ScopeKind> = None;
    let mut pending_fn: Option<PendingFn> = None;
    let mut spans: Vec<Life> = Vec::new();
    let mut locks: Vec<(HeldLock, Life)> = Vec::new();
    let mut stmt_first: Option<String> = None;
    // Paren depth plus the depths at which a `catch_unwind(` opened:
    // sites are "fenced" while inside such an argument list.
    let mut parens = 0usize;
    let mut fences: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];

        if t.kind == TokenKind::Ident
            && t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            model.type_idents.insert(t.text.clone());
        }
        if t.is_ident("catch_unwind") && sig.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            fences.push(parens);
        } else if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens = parens.saturating_sub(1);
            while fences.last().is_some_and(|&d| parens <= d) {
                fences.pop();
            }
        }

        // Attributes: classify for test-ness, then skip their contents so
        // `#[derive(Clone)]` never looks like a call to `derive`.
        if t.is_punct('#') {
            let open = if sig.get(i + 1).is_some_and(|n| n.is_punct('[')) {
                Some(i + 1)
            } else if sig.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && sig.get(i + 2).is_some_and(|n| n.is_punct('['))
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = open {
                let (is_test_attr, end) = scan_attribute(&sig, open);
                pending_test |= is_test_attr;
                i = end;
                continue;
            }
        }

        if t.kind == TokenKind::Punct {
            match t.text.chars().next().unwrap_or(' ') {
                '{' => {
                    let parent_test = scopes.last().map_or(file_is_test, |s| s.is_test);
                    let kind = if let Some(pf) = pending_fn.take() {
                        if pf.paren == 0 {
                            let idx = model.functions.len();
                            model.functions.push(pf.item);
                            ScopeKind::Fn(idx)
                        } else {
                            // `{` inside a signature (e.g. const generic
                            // default) — keep waiting for the real body.
                            pending_fn = Some(pf);
                            ScopeKind::Block
                        }
                    } else {
                        pending_scope.take().unwrap_or(ScopeKind::Block)
                    };
                    let is_test = match &kind {
                        ScopeKind::Fn(idx) => model.functions[*idx].is_test,
                        _ => parent_test || pending_test,
                    };
                    if !matches!(kind, ScopeKind::Block) {
                        pending_test = false;
                    }
                    scopes.push(Scope { kind, is_test });
                    let depth = scopes.len();
                    for s in &mut spans {
                        if *s == Life::NextBlock {
                            *s = Life::Block(depth);
                        }
                    }
                    for (_, l) in &mut locks {
                        if *l == Life::NextBlock {
                            *l = Life::Block(depth);
                        }
                    }
                    stmt_first = None;
                    i += 1;
                    continue;
                }
                '}' => {
                    scopes.pop();
                    let depth = scopes.len();
                    spans.retain(|l| !dies_at_close(*l, depth));
                    locks.retain(|(_, l)| !dies_at_close(*l, depth));
                    stmt_first = None;
                    i += 1;
                    continue;
                }
                ';' => {
                    let depth = scopes.len();
                    spans.retain(|l| *l != Life::Stmt(depth));
                    locks.retain(|(_, l)| *l != Life::Stmt(depth));
                    if let Some(pf) = pending_fn.take() {
                        if pf.paren == 0 {
                            // Bodiless trait-method declaration.
                            model.functions.push(pf.item);
                        } else {
                            pending_fn = Some(pf);
                        }
                    }
                    stmt_first = None;
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }

        if stmt_first.is_none() {
            stmt_first = Some(if t.kind == TokenKind::Ident {
                t.text.clone()
            } else {
                String::new()
            });
        }

        // Inside a pending signature: track parens, harvest I/O facts.
        if let Some(pf) = pending_fn.as_mut() {
            if t.is_punct('(') {
                pf.paren += 1;
            } else if t.is_punct(')') {
                pf.paren = pf.paren.saturating_sub(1);
            } else if t.kind == TokenKind::Ident {
                if let Some(what) = io_token(&sig, i) {
                    pf.item.facts.push(Fact {
                        kind: FactKind::Io,
                        what,
                        line: t.line,
                        col: t.col,
                        under_span: false,
                        in_sig: true,
                        fenced: false,
                    });
                }
            }
            i += 1;
            continue;
        }

        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "fn" if sig.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                    let name_tok = sig[i + 1];
                    let parent_test = scopes.last().map_or(file_is_test, |s| s.is_test);
                    let mut owner = None;
                    let mut trait_owner = None;
                    let mut modules = Vec::new();
                    for s in &scopes {
                        match &s.kind {
                            ScopeKind::Mod(m) => modules.push(m.clone()),
                            ScopeKind::Impl(o, tr) => {
                                owner.clone_from(o);
                                trait_owner.clone_from(tr);
                            }
                            ScopeKind::Trait(o) => {
                                owner = Some(o.clone());
                                trait_owner = Some(o.clone());
                            }
                            _ => {}
                        }
                    }
                    pending_fn = Some(PendingFn {
                        item: FnItem {
                            name: name_tok.text.clone(),
                            owner,
                            trait_owner,
                            modules,
                            line: name_tok.line,
                            col: name_tok.col,
                            is_test: parent_test || pending_test,
                            calls: Vec::new(),
                            facts: Vec::new(),
                            lock_pairs: Vec::new(),
                        },
                        paren: 0,
                    });
                    pending_test = false;
                    i += 2;
                    continue;
                }
                "mod" if sig.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                    pending_scope = Some(ScopeKind::Mod(sig[i + 1].text.clone()));
                    if sig[i + 1].is_ident("tests") {
                        // Belt and braces: `mod tests` without the cfg
                        // attribute still isn't production code.
                        pending_test |= true;
                    }
                    i += 2;
                    continue;
                }
                "impl" => {
                    let (owner, trait_name) = impl_names(&sig, i);
                    pending_scope = Some(ScopeKind::Impl(owner, trait_name));
                    pending_test = pending_test || scopes.last().is_some_and(|s| s.is_test);
                    i += 1;
                    continue;
                }
                "trait" if sig.get(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) => {
                    pending_scope = Some(ScopeKind::Trait(sig[i + 1].text.clone()));
                    i += 2;
                    continue;
                }
                "use" => {
                    let next = parse_use(&sig, i + 1, &mut model.uses);
                    pending_test = false;
                    i = next;
                    continue;
                }
                kw if ITEM_KEYWORDS.contains(&kw) => {
                    pending_test = false;
                }
                _ => {}
            }

            if let Some(fn_idx) = current_fn(&scopes) {
                record_body_ident(
                    &sig,
                    i,
                    &mut model.functions[fn_idx],
                    &mut spans,
                    &mut locks,
                    stmt_first.as_deref(),
                    scopes.len(),
                    !fences.is_empty(),
                );
            }
        } else if t.kind == TokenKind::Punct {
            if let Some(fn_idx) = current_fn(&scopes) {
                record_body_punct(
                    &sig,
                    i,
                    &mut model.functions[fn_idx],
                    !spans.is_empty(),
                    !fences.is_empty(),
                );
            }
        }

        i += 1;
    }
    model
}

fn dies_at_close(l: Life, depth_after_pop: usize) -> bool {
    match l {
        Life::Block(d) | Life::Stmt(d) => d > depth_after_pop,
        Life::NextBlock => false,
    }
}

fn current_fn(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s.kind {
        ScopeKind::Fn(idx) => Some(idx),
        _ => None,
    })
}

/// Scan `#[ ... ]` starting at the `[`; return (is-test-attr, index past
/// `]`). Test attrs: `#[test]`, `#[cfg(test)]` and friends — any `test`
/// ident without a `not` (so `#[cfg(not(test))]` stays production).
fn scan_attribute(sig: &[&Token], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < sig.len() {
        let t = sig[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (has_test && !has_not, j + 1);
            }
        } else if t.kind == TokenKind::Ident {
            has_test |= t.is_ident("test");
            has_not |= t.is_ident("not");
        }
        j += 1;
    }
    (false, j)
}

/// `impl Trait for Type` → `(Type, Some(Trait))`; `impl Type` →
/// `(Type, None)`. Scans the header up to the opening `{`, skipping
/// generic parameter lists.
fn impl_names(sig: &[&Token], impl_idx: usize) -> (Option<String>, Option<String>) {
    let mut names: Vec<String> = Vec::new();
    let mut trait_name = None;
    let mut angle = 0usize;
    let mut j = impl_idx + 1;
    while j < sig.len() {
        let t = sig[j];
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` in the header can't happen; plain `>` closes generics.
            angle = angle.saturating_sub(1);
        } else if angle == 0 && t.kind == TokenKind::Ident {
            if t.is_ident("for") {
                trait_name = names.pop();
                names.clear();
            } else if !t.is_ident("where") && !t.is_ident("dyn") && !t.is_ident("mut") {
                names.push(t.text.clone());
            } else if t.is_ident("where") {
                break;
            }
        }
        j += 1;
    }
    (names.into_iter().next_back(), trait_name)
}

/// Parse one `use` tree starting just past the `use` keyword; returns the
/// index past the terminating `;`.
fn parse_use(sig: &[&Token], start: usize, out: &mut Vec<UsePath>) -> usize {
    let mut j = parse_use_tree(sig, start, &[], out);
    // Swallow up to the `;` if the tree parse stopped early.
    while j < sig.len() && !sig[j].is_punct(';') {
        j += 1;
    }
    j + 1
}

fn parse_use_tree(sig: &[&Token], mut j: usize, prefix: &[String], out: &mut Vec<UsePath>) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    while j < sig.len() {
        let t = sig[j];
        if t.kind == TokenKind::Ident {
            if t.is_ident("as") {
                if let Some(alias) = sig.get(j + 1) {
                    out.push(UsePath {
                        segments: segs.clone(),
                        alias: alias.text.clone(),
                    });
                    return j + 2;
                }
                return j + 1;
            }
            segs.push(t.text.clone());
            j += 1;
        } else if t.is_punct(':') {
            j += 1;
        } else if t.is_punct('{') {
            j += 1;
            loop {
                j = parse_use_tree(sig, j, &segs, out);
                if sig.get(j).is_some_and(|t| t.is_punct(',')) {
                    j += 1;
                } else {
                    break;
                }
            }
            if sig.get(j).is_some_and(|t| t.is_punct('}')) {
                j += 1;
            }
            return j;
        } else if t.is_punct('*') {
            out.push(UsePath {
                segments: segs.clone(),
                alias: "*".to_string(),
            });
            return j + 1;
        } else {
            break; // `,` / `}` / `;`
        }
    }
    if segs.len() > prefix.len() {
        let alias = segs.last().cloned().unwrap_or_default();
        out.push(UsePath {
            segments: segs,
            alias,
        });
    }
    j
}

/// Handle an identifier token inside a function body: macro panic sites,
/// span guards, lock acquisitions, taint tokens, I/O tokens, call sites.
#[allow(clippy::too_many_arguments)]
fn record_body_ident(
    sig: &[&Token],
    i: usize,
    item: &mut FnItem,
    spans: &mut Vec<Life>,
    locks: &mut Vec<(HeldLock, Life)>,
    stmt_first: Option<&str>,
    depth: usize,
    fenced: bool,
) {
    let t = sig[i];
    let under_span = !spans.is_empty();
    let next_bang = sig.get(i + 1).is_some_and(|n| n.is_punct('!'));
    let prev_dot = i > 0 && sig[i - 1].is_punct('.');

    if next_bang {
        if PANIC_MACROS.contains(&t.text.as_str()) {
            push_fact(item, FactKind::Panic, format!("{}!", t.text), t, under_span, fenced);
        } else if t.is_ident("span") && !prev_dot {
            // `span!(...)` — guard bound with `let`-like scope: the macro
            // expands to a RAII guard live until the enclosing block ends.
            spans.push(Life::Block(depth));
        }
        return; // macro names never become call edges
    }

    let next_paren = sig.get(i + 1).is_some_and(|n| n.is_punct('('));

    // `span::enter(...)` / `span::enter_fmt(...)` guards.
    if next_paren
        && (t.is_ident("enter") || t.is_ident("enter_fmt"))
        && i >= 2
        && sig[i - 1].is_punct(':')
        && sig[i - 2].is_punct(':')
        && i >= 3
        && sig[i - 3].is_ident("span")
    {
        spans.push(Life::Block(depth));
        return;
    }

    if prev_dot && next_paren {
        match t.text.as_str() {
            "unwrap" | "expect" | "unwrap_err" | "expect_err" => {
                // `self.expect(..)` is a user-defined method (a receiver
                // of type `Option`/`Result` is never literally `self` in
                // this workspace), e.g. the JSON parser's
                // `fn expect(&mut self, b: u8) -> Result<..>`.
                if !(i >= 2 && sig[i - 2].is_ident("self")) {
                    push_fact(item, FactKind::Panic, format!(".{}()", t.text), t, under_span, fenced);
                }
                return;
            }
            "lock" => {
                let name = lock_target_name(sig, i);
                let held = HeldLock {
                    name: name.clone(),
                    line: t.line,
                };
                for (prior, life) in locks.iter() {
                    if !matches!(life, Life::NextBlock) && prior.name != held.name {
                        item.lock_pairs.push(LockPair {
                            first: prior.clone(),
                            second: held.clone(),
                        });
                    }
                }
                push_fact(item, FactKind::Lock, name, t, under_span, fenced);
                let life = match stmt_first {
                    Some("let") => Life::Block(depth),
                    Some("if" | "while" | "match" | "for") => Life::NextBlock,
                    _ => Life::Stmt(depth),
                };
                locks.push((held, life));
                return;
            }
            _ => {}
        }
    }

    // Determinism-taint tokens (mirrors L002/L003/L004 lexical matchers).
    let next_colons = sig.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && sig.get(i + 2).is_some_and(|n| n.is_punct(':'));
    if (t.is_ident("Instant") || t.is_ident("SystemTime"))
        && next_colons
        && sig.get(i + 3).is_some_and(|n| n.is_ident("now"))
    {
        push_fact(
            item,
            FactKind::Clock,
            format!("{}::now", t.text),
            t,
            under_span,
            fenced,
        );
    } else if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
        push_fact(item, FactKind::Rng, t.text.clone(), t, under_span, fenced);
    } else if t.is_ident("rand") && next_colons {
        push_fact(item, FactKind::Rng, "rand::".to_string(), t, under_span, fenced);
    } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
        push_fact(item, FactKind::Unordered, t.text.clone(), t, under_span, fenced);
    }

    if let Some(what) = io_token(sig, i) {
        push_fact(item, FactKind::Io, what, t, under_span, fenced);
    }

    // Call sites.
    if next_paren && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
        if prev_dot && FACT_METHODS.contains(&t.text.as_str()) {
            return;
        }
        let (path, is_method) = call_path(sig, i);
        if path.is_empty() {
            return;
        }
        item.calls.push(CallSite {
            path,
            is_method,
            line: t.line,
            col: t.col,
            under_span,
            fenced,
            held_locks: locks
                .iter()
                .filter(|(_, l)| !matches!(l, Life::NextBlock))
                .map(|(h, _)| h.clone())
                .collect(),
        });
    }
}

/// Handle a punctuation token inside a function body: indexing `[`,
/// division `/` and remainder `%` panic sites.
fn record_body_punct(sig: &[&Token], i: usize, item: &mut FnItem, under_span: bool, fenced: bool) {
    let t = sig[i];
    let prev_is_value = i > 0
        && (sig[i - 1].kind == TokenKind::Ident
            || sig[i - 1].kind == TokenKind::Literal
            || sig[i - 1].is_punct(')')
            || sig[i - 1].is_punct(']'));
    if t.is_punct('[') {
        // Expression-position `[` = indexing; attr `[` is skipped earlier
        // and `vec![` has a `!` before it, so `prev_is_value` suffices.
        // Literals can't be indexed, so require ident/`)`/`]`.
        let indexable = i > 0
            && (sig[i - 1].kind == TokenKind::Ident
                || sig[i - 1].is_punct(')')
                || sig[i - 1].is_punct(']'));
        // `s[1]` — a bare integer-literal index is fixed-size array
        // state access, bounds-checked at compile time; don't flag it.
        let literal_index = sig
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Literal && n.text.starts_with(|c: char| c.is_ascii_digit()))
            && sig.get(i + 2).is_some_and(|n| n.is_punct(']'));
        if indexable && !literal_index && !sig[i - 1].is_ident("in") {
            push_fact(item, FactKind::Panic, "index".to_string(), t, under_span, fenced);
        }
    } else if (t.is_punct('/') || t.is_punct('%')) && prev_is_value {
        // Division/remainder by a literal can't panic (checked at build
        // time for zero), and float division never panics — a float
        // value on the left (`1.5 / x`, `1e9 / x`, `a as f64 / x`) pins
        // the type. Only flag symbolic integer-looking divisors.
        let next_literal = sig
            .get(i + 1)
            .is_some_and(|n| n.kind == TokenKind::Literal && n.text.starts_with(|c: char| c.is_ascii_digit()));
        let float_lhs = (sig[i - 1].kind == TokenKind::Literal
            && sig[i - 1].text.starts_with(|c: char| c.is_ascii_digit())
            && !sig[i - 1].text.starts_with("0x")
            && sig[i - 1].text.contains(['.', 'e', 'E']))
            || sig[i - 1].is_ident("f64")
            || sig[i - 1].is_ident("f32");
        if !next_literal && !float_lhs {
            let what = if t.is_punct('/') { "div" } else { "rem" };
            push_fact(item, FactKind::Panic, what.to_string(), t, under_span, fenced);
        }
    }
}

fn push_fact(
    item: &mut FnItem,
    kind: FactKind,
    what: String,
    t: &Token,
    under_span: bool,
    fenced: bool,
) {
    item.facts.push(Fact {
        kind,
        what,
        line: t.line,
        col: t.col,
        under_span,
        in_sig: false,
        fenced,
    });
}

/// Blocking-I/O token matcher shared by signature and body scanning.
/// Mirrors the historical L009 lexical matcher.
fn io_token(sig: &[&Token], i: usize) -> Option<String> {
    let t = sig[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let follows = |k: usize, word: &str| {
        sig.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && sig.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && sig.get(i + k).is_some_and(|a| a.is_ident(word))
    };
    match t.text.as_str() {
        "TcpStream" | "TcpListener" | "OpenOptions" | "UdpSocket" => Some(t.text.clone()),
        "File" if follows(3, "create") || follows(3, "open") => {
            Some(format!("File::{}", sig[i + 3].text))
        }
        "fs" if follows(3, "write") || follows(3, "read_to_string") || follows(3, "read") => {
            Some(format!("fs::{}", sig[i + 3].text))
        }
        "write_all" if i > 0 && sig[i - 1].is_punct('.') => Some(".write_all".to_string()),
        _ => None,
    }
}

/// Receiver name for `X.lock()`: the identifier closest to the `.lock`,
/// walking back through one matched call/index group if present.
fn lock_target_name(sig: &[&Token], lock_idx: usize) -> String {
    if lock_idx < 2 {
        return "<expr>".to_string();
    }
    let mut j = lock_idx - 2; // token before the `.`
    let t = sig[j];
    if t.kind == TokenKind::Ident {
        return t.text.clone();
    }
    if t.is_punct(')') || t.is_punct(']') {
        let (open, close) = if t.is_punct(')') { ('(', ')') } else { ('[', ']') };
        let mut depth = 1usize;
        while j > 0 {
            j -= 1;
            if sig[j].is_punct(close) {
                depth += 1;
            } else if sig[j].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if j > 0 && sig[j - 1].kind == TokenKind::Ident {
            return sig[j - 1].text.clone();
        }
    }
    "<expr>".to_string()
}

/// Reconstruct the (possibly qualified) call path ending at `i`, and
/// whether it is a method call. `a::b::f(` → (["a","b","f"], false);
/// `x.f(` → (["f"], true).
fn call_path(sig: &[&Token], i: usize) -> (Vec<String>, bool) {
    let mut segs = vec![sig[i].text.clone()];
    let mut j = i;
    while j >= 3
        && sig[j - 1].is_punct(':')
        && sig[j - 2].is_punct(':')
        && sig[j - 3].kind == TokenKind::Ident
    {
        segs.push(sig[j - 3].text.clone());
        j -= 3;
    }
    segs.reverse();
    let is_method = j > 0 && sig[j - 1].is_punct('.');
    if is_method && segs.len() > 1 {
        // `x.Foo::bar(` isn't real Rust; treat defensively as method.
        segs = vec![segs.pop().unwrap_or_default()];
    }
    (segs, is_method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn model(src: &str) -> FileModel {
        build_file_model("crates/x/src/lib.rs", "scan_x", &tokenize(src))
    }

    fn fn_named<'m>(m: &'m FileModel, name: &str) -> &'m FnItem {
        m.functions
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name} in {:?}", m.functions))
    }

    #[test]
    fn extracts_functions_with_owners_and_modules() {
        let m = model(
            "mod inner {\n\
             pub struct S;\n\
             impl S { pub fn method(&self) {} }\n\
             pub fn free() {}\n\
             }\n\
             trait T { fn decl(&self); fn with_default(&self) { self.decl() } }\n",
        );
        let method = fn_named(&m, "method");
        assert_eq!(method.owner.as_deref(), Some("S"));
        assert_eq!(method.modules, vec!["inner".to_string()]);
        let free = fn_named(&m, "free");
        assert_eq!(free.owner, None);
        let decl = fn_named(&m, "decl");
        assert!(decl.calls.is_empty());
        let dflt = fn_named(&m, "with_default");
        assert_eq!(dflt.owner.as_deref(), Some("T"));
        assert_eq!(dflt.calls.len(), 1);
        assert!(dflt.calls[0].is_method);
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let m = model("struct A; trait T { fn f(&self); } impl T for A { fn f(&self) {} }");
        let f = m.functions.iter().rfind(|f| f.name == "f").unwrap();
        assert_eq!(f.owner.as_deref(), Some("A"));
    }

    #[test]
    fn test_attributes_and_tests_modules_mark_items() {
        let m = model(
            "#[cfg(test)]\nmod tests {\n pub fn helper() { x.unwrap() }\n}\n\
             #[test]\nfn unit() { assert!(true); }\n\
             #[cfg(not(test))]\nfn prod() {}\n",
        );
        assert!(fn_named(&m, "helper").is_test);
        assert!(fn_named(&m, "unit").is_test);
        assert!(!fn_named(&m, "prod").is_test);
    }

    #[test]
    fn files_under_tests_are_all_test() {
        let m = build_file_model(
            "crates/x/tests/it.rs",
            "scan_x",
            &tokenize("fn run() { data[0]; }"),
        );
        assert!(m.functions[0].is_test);
    }

    #[test]
    fn panic_sites_cover_the_catalogue() {
        let m = model(
            "fn f(v: Vec<u32>, n: u32) -> u32 {\n\
             let a = v.first().unwrap();\n\
             let b = v.last().expect(\"x\");\n\
             if n == 0 { panic!(\"boom\") }\n\
             let c = v[n as usize];\n\
             let d = n / (n - 1);\n\
             let e = n % a;\n\
             a + b + c + d + e\n}\n",
        );
        let f = fn_named(&m, "f");
        let whats: Vec<&str> = f
            .facts
            .iter()
            .filter(|x| x.kind == FactKind::Panic)
            .map(|x| x.what.as_str())
            .collect();
        assert_eq!(
            whats,
            vec![".unwrap()", ".expect()", "panic!", "index", "div", "rem"]
        );
    }

    #[test]
    fn literal_divisors_and_vec_macro_do_not_panic() {
        let m = model("fn f(n: u32) -> u32 { let v = vec![1, 2]; n / 2 + v.len() as u32 }");
        let f = fn_named(&m, "f");
        assert!(
            f.facts.iter().all(|x| x.kind != FactKind::Panic),
            "facts: {:?}",
            f.facts
        );
    }

    #[test]
    fn literal_index_and_float_division_do_not_panic() {
        // `s[1]` is compile-checked array state access; `1.0 / x` is
        // float division. Neither can panic at runtime.
        let m = model("fn f(s: [u64; 4]) -> f64 { let a = s[1]; 1.0 / (a as f64) }");
        let f = fn_named(&m, "f");
        assert!(
            f.facts.iter().all(|x| x.kind != FactKind::Panic),
            "facts: {:?}",
            f.facts
        );
    }

    #[test]
    fn catch_unwind_fences_calls_and_facts() {
        let m = model(
            "fn w(jobs: &[u32], n: usize) {\n\
             let r = std::panic::catch_unwind(|| run(jobs[n]));\n\
             drop(r);\n\
             after();\n}\n\
             fn run(a: u32) {}\nfn after() {}\n",
        );
        let f = fn_named(&m, "w");
        let run_call = f.calls.iter().find(|c| c.path == vec!["run".to_string()]).unwrap();
        assert!(run_call.fenced);
        let after_call = f.calls.iter().find(|c| c.path == vec!["after".to_string()]).unwrap();
        assert!(!after_call.fenced);
        let index = f
            .facts
            .iter()
            .find(|x| x.kind == FactKind::Panic && x.what == "index")
            .unwrap();
        assert!(index.fenced);
    }

    #[test]
    fn attribute_contents_are_not_calls() {
        let m = model("#[derive(Clone, Debug)]\nstruct S;\nfn f() { g() }\nfn g() {}\n");
        let f = fn_named(&m, "f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].path, vec!["g".to_string()]);
    }

    #[test]
    fn qualified_calls_keep_their_path() {
        let m = model("fn f() { scan_obs::export::write_file(); helper(); }");
        let f = fn_named(&m, "f");
        assert_eq!(
            f.calls[0].path,
            vec![
                "scan_obs".to_string(),
                "export".to_string(),
                "write_file".to_string()
            ]
        );
        assert!(!f.calls[0].is_method);
        assert_eq!(f.calls[1].path, vec!["helper".to_string()]);
    }

    #[test]
    fn use_imports_flatten_groups_and_aliases() {
        let m = model(
            "use scan_obs::{export, span::Span as S};\nuse std::collections::BTreeMap;\nfn f() {}\n",
        );
        let aliases: Vec<(&str, Vec<&str>)> = m
            .uses
            .iter()
            .map(|u| {
                (
                    u.alias.as_str(),
                    u.segments.iter().map(String::as_str).collect(),
                )
            })
            .collect();
        assert!(aliases.contains(&("export", vec!["scan_obs", "export"])));
        assert!(aliases.contains(&("S", vec!["scan_obs", "span", "Span"])));
        assert!(aliases.contains(&("BTreeMap", vec!["std", "collections", "BTreeMap"])));
    }

    #[test]
    fn lock_nesting_inside_one_statement_scope() {
        let m = model(
            "fn f(s: &S) {\n\
             let a = s.queue.lock();\n\
             let b = s.cache.lock();\n\
             }\n\
             fn g(s: &S) {\n\
             if let Ok(a) = s.queue.lock() { a.push(1); }\n\
             if let Ok(b) = s.cache.lock() { b.touch(); }\n\
             }\n",
        );
        let f = fn_named(&m, "f");
        assert_eq!(f.lock_pairs.len(), 1);
        assert_eq!(f.lock_pairs[0].first.name, "queue");
        assert_eq!(f.lock_pairs[0].second.name, "cache");
        // Sequential if-let guards never overlap.
        let g = fn_named(&m, "g");
        assert!(g.lock_pairs.is_empty(), "pairs: {:?}", g.lock_pairs);
    }

    #[test]
    fn calls_record_held_locks_and_span_liveness() {
        let m = model(
            "fn f(s: &S) {\n\
             let g = s.state.lock();\n\
             helper(s);\n\
             }\n\
             fn h(o: &Obs) {\n\
             let _sp = span!(o, \"work\");\n\
             do_io();\n\
             }\n\
             fn outside() { do_io(); }\n",
        );
        let f = fn_named(&m, "f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].held_locks.len(), 1);
        assert_eq!(f.calls[0].held_locks[0].name, "state");
        let h = fn_named(&m, "h");
        assert!(h.calls.iter().any(|c| c.under_span));
        let outside = fn_named(&m, "outside");
        assert!(outside.calls.iter().all(|c| !c.under_span));
    }

    #[test]
    fn statement_temporary_lock_dies_at_semicolon() {
        let m = model(
            "fn f(s: &S) {\n\
             s.a.lock().unwrap().push(1);\n\
             let g = s.b.lock();\n\
             }\n",
        );
        let f = fn_named(&m, "f");
        // `a` guard died at the `;`, so no (a, b) pair.
        assert!(f.lock_pairs.is_empty(), "pairs: {:?}", f.lock_pairs);
    }

    #[test]
    fn taint_and_io_facts() {
        let m = model(
            "fn f() {\n\
             let t = Instant::now();\n\
             let r = thread_rng();\n\
             let m: HashMap<u32, u32> = HashMap::new();\n\
             let s = TcpStream::connect(addr);\n\
             }\n\
             fn sig_io(stream: &mut TcpStream) {}\n",
        );
        let f = fn_named(&m, "f");
        let kind = |k: FactKind| f.facts.iter().filter(|x| x.kind == k).count();
        assert_eq!(kind(FactKind::Clock), 1);
        assert_eq!(kind(FactKind::Rng), 1);
        assert_eq!(kind(FactKind::Unordered), 2);
        assert!(kind(FactKind::Io) >= 1);
        let s = fn_named(&m, "sig_io");
        assert!(s.facts.iter().any(|x| x.kind == FactKind::Io && x.in_sig));
    }

    #[test]
    fn fact_methods_do_not_create_call_edges() {
        let m = model("fn f(s: &S) { s.state.lock(); r.unwrap(); s.out.write_all(b\"x\"); }");
        let f = fn_named(&m, "f");
        assert!(f.calls.is_empty(), "calls: {:?}", f.calls);
    }
}
