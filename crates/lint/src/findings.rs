//! Finding representation and the two report formats: a human table
//! (stderr) and NDJSON (`--out`, validated by `obs-check`).

use std::fmt::Write as _;

/// How serious an unsuppressed finding is. Every shipped rule is
/// `Deny` — under `--deny` any unsuppressed finding fails the build —
/// but the severity travels with each finding so future advisory rules
/// slot in without a format change.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum Severity {
    /// Fails `--deny` runs.
    Deny,
    /// Reported but never fatal.
    Warn,
}

impl Severity {
    /// Lowercase wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One hop in a semantic rule's witness call chain: the function the
/// chain passes through and the line of the call (or, for the final hop,
/// the offending site itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainHop {
    /// Fully qualified function path (`scan_daemon::server::handle`).
    pub func: String,
    /// Root-relative file the hop lives in.
    pub file: String,
    /// 1-based line of the call site / final site.
    pub line: u32,
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id (`L001` … `L008`).
    pub rule: &'static str,
    /// Rule short name (`no-external-deps`, …).
    pub name: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Root-relative file path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// `Some(reason)` when suppressed by `lint.toml` or an inline
    /// `// lint:allow`.
    pub suppressed: Option<String>,
    /// Witness call chain for semantic rules (L009/L012/L013/L014):
    /// root → … → offending site. Empty for lexical rules.
    pub chain: Vec<ChainHop>,
}

/// The result of linting a workspace.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// Every finding, suppressed ones included (they still appear in
    /// the NDJSON stream, marked, so suppressions are auditable).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub rust_files: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests: usize,
    /// Location of every `unsafe` keyword in code (geiger-style
    /// inventory, printed in the summary even when all carry SAFETY
    /// comments).
    pub unsafe_sites: Vec<(String, u32)>,
}

impl LintReport {
    /// Findings not suppressed by config or inline allows.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Number of unsuppressed findings (what `--deny` gates on).
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.unsuppressed()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Renders the human-readable report: one line per unsuppressed
    /// finding, then the unsafe inventory and a summary.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for finding in self.unsuppressed() {
            let _ = writeln!(
                out,
                "{}:{}:{}: {} [{} {}] {}",
                finding.file,
                finding.line,
                finding.col,
                finding.severity.as_str(),
                finding.rule,
                finding.name,
                finding.message,
            );
            for hop in &finding.chain {
                let _ = writeln!(out, "    via {} ({}:{})", hop.func, hop.file, hop.line);
            }
            let _ = writeln!(out, "    fix: {}", finding.hint);
        }
        let suppressed = self.findings.len() - self.unsuppressed().count();
        let _ = writeln!(
            out,
            "scan-lint: {} file(s) ({} manifest(s)): {} finding(s), {} suppressed",
            self.rust_files + self.manifests,
            self.manifests,
            self.deny_count(),
            suppressed,
        );
        if self.unsafe_sites.is_empty() {
            let _ = writeln!(out, "unsafe inventory: 0 site(s) — workspace is unsafe-free");
        } else {
            let _ = writeln!(out, "unsafe inventory: {} site(s):", self.unsafe_sites.len());
            for (file, line) in &self.unsafe_sites {
                let _ = writeln!(out, "    {file}:{line}");
            }
        }
        out
    }

    /// Renders the NDJSON stream: one `finding` event per finding
    /// (suppressed included, marked) and one trailing `lint` summary
    /// event — so the stream is never empty and `obs-check` always has
    /// something to validate.
    #[must_use]
    pub fn render_ndjson(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            let mut line = String::from("{\"type\":\"finding\"");
            let _ = write!(
                line,
                ",\"rule\":{},\"name\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"hint\":{}",
                json_string(finding.rule),
                json_string(finding.name),
                json_string(finding.severity.as_str()),
                json_string(&finding.file),
                finding.line,
                finding.col,
                json_string(&finding.message),
                json_string(finding.hint),
            );
            if let Some(reason) = &finding.suppressed {
                let _ = write!(line, ",\"suppressed\":{}", json_string(reason));
            }
            if !finding.chain.is_empty() {
                line.push_str(",\"chain\":[");
                for (i, hop) in finding.chain.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(
                        line,
                        "{{\"fn\":{},\"file\":{},\"line\":{}}}",
                        json_string(&hop.func),
                        json_string(&hop.file),
                        hop.line,
                    );
                }
                line.push(']');
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        let suppressed = self.findings.len() - self.unsuppressed().count();
        let _ = writeln!(
            out,
            "{{\"type\":\"lint\",\"files\":{},\"manifests\":{},\"findings\":{},\"suppressed\":{},\"unsafe_sites\":{}}}",
            self.rust_files + self.manifests,
            self.manifests,
            self.deny_count(),
            suppressed,
            self.unsafe_sites.len(),
        );
        out
    }
}

/// Escapes `text` as a JSON string literal (with quotes).
#[must_use]
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport {
            findings: vec![
                Finding {
                    rule: "L002",
                    name: "no-ambient-rng",
                    severity: Severity::Deny,
                    file: "crates/x/src/lib.rs".into(),
                    line: 3,
                    col: 9,
                    message: "call to `thread_rng`".into(),
                    hint: "derive a scan-rng stream instead",
                    suppressed: None,
                    chain: Vec::new(),
                },
                Finding {
                    rule: "L004",
                    name: "no-unordered-iteration",
                    severity: Severity::Deny,
                    file: "crates/core/src/a.rs".into(),
                    line: 8,
                    col: 1,
                    message: "`HashMap` in deterministic crate".into(),
                    hint: "use BTreeMap",
                    suppressed: Some("membership-only".into()),
                    chain: Vec::new(),
                },
            ],
            rust_files: 2,
            manifests: 1,
            unsafe_sites: vec![("crates/x/src/lib.rs".into(), 12)],
        }
    }

    #[test]
    fn table_shows_only_unsuppressed() {
        let table = sample().render_table();
        assert!(table.contains("L002"));
        assert!(!table.contains("L004"));
        assert!(table.contains("1 finding(s), 1 suppressed"));
        assert!(table.contains("unsafe inventory: 1 site(s)"));
    }

    #[test]
    fn ndjson_includes_suppressed_marked() {
        let ndjson = sample().render_ndjson();
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"suppressed\":\"membership-only\""));
        assert!(lines[2].contains("\"type\":\"lint\""));
        assert!(lines[2].contains("\"findings\":1"));
    }

    #[test]
    fn chain_renders_in_table_and_ndjson() {
        let mut report = sample();
        report.findings[0].chain = vec![
            ChainHop {
                func: "scan_daemon::server::handle".into(),
                file: "crates/daemon/src/server.rs".into(),
                line: 100,
            },
            ChainHop {
                func: "scan_x::helper".into(),
                file: "crates/x/src/lib.rs".into(),
                line: 3,
            },
        ];
        let table = report.render_table();
        assert!(table.contains("via scan_daemon::server::handle (crates/daemon/src/server.rs:100)"));
        let ndjson = report.render_ndjson();
        let first = ndjson.lines().next().unwrap();
        assert!(
            first.contains(
                "\"chain\":[{\"fn\":\"scan_daemon::server::handle\",\"file\":\"crates/daemon/src/server.rs\",\"line\":100},"
            ),
            "line: {first}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
