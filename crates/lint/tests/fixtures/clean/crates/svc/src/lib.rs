//! Suppressed L013/L014 violations: an unordered map reachable from
//! the core, and a lock pair acquired in both orders.

use std::collections::HashMap;

/// Reached from the deterministic core — the map use below would be an
/// L014 taint without the directive.
pub fn histogram(first: &str, labels: &[&str]) -> usize {
    // lint:allow(L014): membership-only counting map in a demo helper
    let mut counts = HashMap::new();
    for l in labels {
        *counts.entry(*l).or_insert(0usize) += 1;
    }
    counts.len() + first.len()
}

pub struct State;

/// Acquires `queue` then `cache`.
pub fn fill(s: &State) {
    let q = s.queue.lock();
    // lint:allow(L013): fixture pins the suppressed direction of the pair
    let c = s.cache.lock();
    let _ = (q, c);
}

/// Acquires `cache` then `queue` — the reverse of `fill`.
pub fn drain(s: &State) {
    let c = s.cache.lock();
    // lint:allow(L013): fixture pins the suppressed direction of the pair
    let q = s.queue.lock();
    let _ = (c, q);
}
