//! Suppressed semantic-rule violations (L012/L014): each would fire
//! without its written justification.

/// Panic-freedom root (see this fixture's `lint.toml [roots]`); also
/// reaches the suppressed taint in `crates/svc`.
pub fn entry(labels: &[&str]) -> usize {
    // lint:allow(L012): the fixture always passes a nonempty slice
    let first = labels.first().unwrap();
    scan_svc::histogram(first, labels)
}
