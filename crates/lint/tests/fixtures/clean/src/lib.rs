// Fixture: violations that are all explicitly suppressed — L006 via
// the tree's lint.toml allow-path, L003 via an inline directive.
pub fn report() {
    println!("payload line");
    // lint:allow(L003): measuring wall time is this fixture's purpose
    let _t = std::time::Instant::now();
}
