// Fixture: L002 no-ambient-rng — ambient entropy draw.
pub fn seed() -> u64 {
    rand::thread_rng().gen()
}
