// Fixture: L005 unsafe-needs-safety-comment — no SAFETY comment.
pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
