//! Seeded L012 fixture: the `serve` root (named in this fixture's
//! `lint.toml [roots]`) reaches an unfenced panic site in the core
//! planner, two files away.

/// Entry point listed in `[roots] panic_freedom`.
pub fn serve(req: &[u32]) -> u32 {
    // The fenced probe is invisible to L012 — a panic cannot unwind
    // through `catch_unwind`.
    let _probe = std::panic::catch_unwind(|| scan_core::plan::risky(req));
    scan_core::plan::build_plan(req)
}
