//! Planner half of the seeded L012 chain.

/// Panics on an empty request — reachable from `serve`, unfenced.
pub fn build_plan(req: &[u32]) -> u32 {
    let step = req.iter().max().unwrap();
    *step
}

/// Also panics on empty input, but every caller fences it, so L012
/// stays quiet about this one.
pub fn risky(req: &[u32]) -> u32 {
    *req.iter().min().unwrap()
}
