// Fixture: blocking file I/O while a span guard is live (L009).
pub fn checkpoint(path: &std::path::Path, data: &[u8]) {
    let _span = scan_obs::span!("campaign/checkpoint");
    std::fs::write(path, data).expect("checkpoint written");
}
