// Fixture: L006 stdout-cleanliness — stdout write outside the CLI
// and the experiment bins.
pub fn narrate() {
    println!("progress: 50%");
}
