// Fixture: L007 nonexhaustive-public-errors — matchable pub error
// enum.
#[derive(Debug)]
pub enum LoadError {
    Missing,
    Corrupt,
}
