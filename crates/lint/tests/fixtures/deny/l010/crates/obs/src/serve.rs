// Fixture: panicking call in an observability hot path (L010). The
// endpoint thread must degrade on a poisoned lock, not die mid-scrape.
pub fn respond(state: &std::sync::Mutex<u64>) -> u64 {
    *state.lock().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let state = std::sync::Mutex::new(7);
        assert_eq!(*state.lock().unwrap(), 7);
    }
}
