// Fixture: L008 no-silent-empty-intersection — unchecked free
// `diagnose()` call outside the defining crate.
pub fn run(plan: &Plan, outcome: &Outcome) -> Diagnosis {
    diagnose(plan, outcome)
}
