// Fixture: L011 no-unbounded-queue — unbounded buffer in the daemon.
use std::collections::VecDeque;

pub fn admission() -> VecDeque<u64> {
    let (tx, rx) = std::sync::mpsc::channel();
    tx.send(1u64).ok();
    let mut queue = VecDeque::new();
    queue.push_back(rx.recv().unwrap_or(0));
    queue
}
