//! Seeded L014 fixture: a deterministic-core function reaches
//! unordered iteration in a helper crate, one call away.

/// Summarizes labels by calling the support histogram — which iterates
/// a `HashMap`.
pub fn summarize(labels: &[&str]) -> usize {
    scan_support::histogram(labels)
}
