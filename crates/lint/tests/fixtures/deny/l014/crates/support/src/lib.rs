//! Support helper — harmless on its own (it is not a deterministic
//! crate), tainting once the core reaches it.

use std::collections::HashMap;

/// Counts distinct labels; map iteration order is unspecified.
pub fn histogram(labels: &[&str]) -> usize {
    let mut counts = HashMap::new();
    for l in labels {
        *counts.entry(*l).or_insert(0usize) += 1;
    }
    counts.len()
}
