//! Reverse half of the seeded L013 pair, cross-file: holds `cache`
//! while calling into `state::evict`, which acquires `queue`.

pub fn sweep(s: &crate::state::State) {
    let c = s.cache.lock();
    crate::state::evict(s);
    let _ = c;
}
