//! Forward half of the seeded L013 pair: `queue` before `cache`.

pub struct State;

/// Acquires `queue`, then `cache`, in one scope.
pub fn enqueue(s: &State) {
    let q = s.queue.lock();
    let c = s.cache.lock();
    let _ = (q, c);
}

/// Acquires `queue` alone — the tail of the reverse-order chain that
/// starts in `sweep.rs`.
pub fn evict(s: &State) {
    let q = s.queue.lock();
    let _ = q;
}
