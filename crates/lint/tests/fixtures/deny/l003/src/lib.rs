// Fixture: L003 no-wall-clock-in-core — clock read outside bench/obs.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
