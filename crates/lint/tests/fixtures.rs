//! Fixture-driven integration tests: each directory under
//! `tests/fixtures/deny/` seeds exactly one violation of one rule, and
//! `tests/fixtures/clean/` holds violations that are all explicitly
//! suppressed. Both the library API and the `scan-lint` binary
//! contract (`--deny` exit codes, stdout silence, NDJSON `--out`) are
//! exercised against them.

use std::path::{Path, PathBuf};
use std::process::Command;

use scan_lint::{lint_workspace, load_config, Config};

/// All fourteen rules with their seeded fixture directory. The
/// semantic rules (L012-L014) ship fixture-local `lint.toml` files
/// ([roots] declarations), picked up via `load_config`.
const RULES: &[(&str, &str)] = &[
    ("L001", "l001"),
    ("L002", "l002"),
    ("L003", "l003"),
    ("L004", "l004"),
    ("L005", "l005"),
    ("L006", "l006"),
    ("L007", "l007"),
    ("L008", "l008"),
    ("L009", "l009"),
    ("L010", "l010"),
    ("L011", "l011"),
    ("L012", "l012"),
    ("L013", "l013"),
    ("L014", "l014"),
];

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn every_deny_fixture_triggers_its_rule() {
    for (rule, dir) in RULES {
        let root = fixture(&format!("deny/{dir}"));
        let config = load_config(&root).expect("fixture config parses");
        let report = lint_workspace(&root, &config).expect("fixture tree walks");
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(rule),
            "fixture {dir} should trigger {rule}, found {rules:?}"
        );
        assert!(
            report.deny_count() > 0,
            "fixture {dir} should have unsuppressed findings"
        );
        // Every finding carries a span and a fix-hint.
        for f in &report.findings {
            assert!(f.line >= 1 && f.col >= 1, "{rule}: zero span in {dir}");
            assert!(!f.hint.is_empty(), "{rule}: empty hint in {dir}");
        }
    }
}

#[test]
fn l005_fixture_feeds_the_unsafe_inventory() {
    let report =
        lint_workspace(&fixture("deny/l005"), &Config::default()).expect("fixture tree walks");
    assert_eq!(report.unsafe_sites.len(), 1);
    assert!(report.unsafe_sites[0].0.ends_with("lib.rs"));
}

#[test]
fn clean_fixture_suppresses_everything() {
    let root = fixture("clean");
    let config = load_config(&root).expect("fixture lint.toml parses");
    let report = lint_workspace(&root, &config).expect("fixture tree walks");
    assert_eq!(
        report.deny_count(),
        0,
        "clean fixture should be fully suppressed: {:?}",
        report.findings
    );
    let suppressed = report
        .findings
        .iter()
        .filter(|f| f.suppressed.is_some())
        .count();
    assert_eq!(
        suppressed, 6,
        "lint.toml L006, inline L003/L012/L014, and both L013 directions"
    );
}

#[test]
fn l012_witness_chain_spans_files() {
    let root = fixture("deny/l012");
    let config = load_config(&root).expect("fixture lint.toml parses");
    let report = lint_workspace(&root, &config).expect("fixture tree walks");
    let finding = report
        .findings
        .iter()
        .find(|f| f.rule == "L012")
        .expect("L012 fires");
    // The chain starts at the declared root in the daemon fixture crate
    // and ends at the panic site in the core fixture crate.
    let hops: Vec<(&str, &str)> = finding
        .chain
        .iter()
        .map(|h| (h.func.as_str(), h.file.as_str()))
        .collect();
    assert_eq!(
        hops,
        vec![
            ("scan_daemon::server::serve", "crates/daemon/src/server.rs"),
            ("scan_core::plan::build_plan", "crates/core/src/plan.rs"),
        ],
        "witness chain should span both fixture files"
    );
    assert_eq!(finding.file, "crates/core/src/plan.rs");
    // The fenced `risky` path must stay quiet: exactly one L012.
    assert_eq!(
        report.findings.iter().filter(|f| f.rule == "L012").count(),
        1,
        "the catch_unwind-fenced path must not be reported"
    );
}

#[test]
fn l013_reports_both_witness_chains() {
    let root = fixture("deny/l013");
    let report = lint_workspace(&root, &load_config(&root).expect("config"))
        .expect("fixture tree walks");
    let l013: Vec<_> = report.findings.iter().filter(|f| f.rule == "L013").collect();
    assert_eq!(l013.len(), 2, "one finding per acquisition direction");
    // The cross-file direction's chain walks sweep.rs into state.rs.
    let cross = l013
        .iter()
        .find(|f| f.file.ends_with("sweep.rs"))
        .expect("cross-file witness present");
    let files: Vec<&str> = cross.chain.iter().map(|h| h.file.as_str()).collect();
    assert!(
        files.contains(&"crates/daemon/src/sweep.rs")
            && files.contains(&"crates/daemon/src/state.rs"),
        "chain should span both files: {files:?}"
    );
}

fn scan_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scan-lint"))
        .args(args)
        .output()
        .expect("scan-lint binary runs")
}

#[test]
fn deny_exits_nonzero_per_rule_fixture() {
    for (rule, dir) in RULES {
        let root = fixture(&format!("deny/{dir}"));
        let output = scan_lint(&["--root", root.to_str().unwrap(), "--deny"]);
        assert!(
            !output.status.success(),
            "--deny on fixture {dir} should exit nonzero"
        );
        assert!(
            output.stdout.is_empty(),
            "stdout must stay empty on fixture {dir}"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(rule),
            "stderr for fixture {dir} should name {rule}: {stderr}"
        );
    }
}

#[test]
fn deny_exits_zero_on_suppressed_clean_fixture() {
    let root = fixture("clean");
    let output = scan_lint(&["--root", root.to_str().unwrap(), "--deny"]);
    assert!(
        output.status.success(),
        "clean fixture under --deny should pass: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(output.stdout.is_empty());
}

#[test]
fn out_writes_obs_check_compatible_ndjson() {
    let out = std::env::temp_dir().join(format!("scan_lint_fixture_{}.ndjson", std::process::id()));
    let root = fixture("deny/l004");
    let output = scan_lint(&[
        "--root",
        root.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "without --deny the exit is 0");
    let text = std::fs::read_to_string(&out).expect("NDJSON written");
    std::fs::remove_file(&out).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.iter().any(|l| l.contains("\"type\":\"finding\"") && l.contains("L004")),
        "finding event present: {text}"
    );
    assert!(
        lines.last().is_some_and(|l| l.contains("\"type\":\"lint\"")),
        "trailing lint summary present: {text}"
    );
}

#[test]
fn help_contract_matches_workspace_bins() {
    let output = scan_lint(&["--help"]);
    assert!(output.status.success());
    assert!(output.stdout.is_empty(), "--help writes to stderr only");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.starts_with("usage: scan-lint"));
}
