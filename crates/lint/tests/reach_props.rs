//! Property tests for the reachability engine (`scan_lint::reach`)
//! against a naive fixed-point oracle, over randomly generated call
//! graphs — cycles, self-loops, duplicate edges, and masked
//! (`#[cfg(test)]`) nodes included. Draws flow through the pinned
//! `scan_rng::testkit` streams, so a failure replays exactly.

use scan_lint::reach;
use scan_rng::testkit::{Gen, Runner};

/// A random directed graph as an adjacency list plus a mask vector.
fn random_graph(gen: &mut Gen) -> (Vec<Vec<usize>>, Vec<bool>) {
    let n = gen.usize("nodes", 1, 24);
    let mut adj = vec![Vec::new(); n];
    let edges = gen.usize("edges", 0, 3 * n);
    for _ in 0..edges {
        let from = gen.usize("from", 0, n - 1);
        let to = gen.usize("to", 0, n - 1);
        adj[from].push(to);
    }
    let masked = (0..n).map(|_| gen.bool("masked")).collect();
    (adj, masked)
}

/// Naive oracle: iterate "reachable ∪ successors(reachable)" to a fixed
/// point, never entering masked nodes. O(n·e), no parent pointers — just
/// the visited set.
fn oracle_visited(adj: &[Vec<usize>], roots: &[usize], masked: &[bool]) -> Vec<bool> {
    let n = adj.len();
    let mut visited = vec![false; n];
    for &r in roots {
        if r < n && !masked[r] {
            visited[r] = true;
        }
    }
    loop {
        let mut changed = false;
        for u in 0..n {
            if !visited[u] {
                continue;
            }
            for &v in &adj[u] {
                if v < n && !masked[v] && !visited[v] {
                    visited[v] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            return visited;
        }
    }
}

#[test]
fn bfs_visited_set_matches_naive_fixed_point() {
    Runner::new(300).seed(0x5ca9_11a7).run("bfs_vs_oracle", |gen| {
        let (adj, masked) = random_graph(gen);
        let n = adj.len();
        let root_count = gen.usize("roots", 0, n.min(4));
        let roots: Vec<usize> = (0..root_count)
            .map(|_| gen.usize("root", 0, n - 1))
            .collect();
        let r = reach::bfs(&adj, &roots, &masked);
        let expect = oracle_visited(&adj, &roots, &masked);
        assert_eq!(r.visited, expect, "adj={adj:?} roots={roots:?} masked={masked:?}");
    });
}

#[test]
fn witness_paths_are_real_unmasked_paths_from_a_root() {
    Runner::new(300).seed(0x717e55).run("witness_validity", |gen| {
        let (adj, masked) = random_graph(gen);
        let n = adj.len();
        let roots: Vec<usize> = (0..gen.usize("roots", 1, n.min(3)))
            .map(|_| gen.usize("root", 0, n - 1))
            .collect();
        let r = reach::bfs(&adj, &roots, &masked);
        for node in 0..n {
            let path = r.witness(node);
            if !r.visited[node] {
                assert!(path.is_empty(), "unreached node {node} has witness {path:?}");
                continue;
            }
            // Starts at a live root, ends at the node, every hop is a
            // real edge, no hop is masked.
            assert_eq!(*path.last().unwrap(), node);
            assert!(roots.contains(&path[0]), "witness start {} not a root", path[0]);
            for pair in path.windows(2) {
                assert!(
                    adj[pair[0]].contains(&pair[1]),
                    "witness hop {}->{} is not an edge",
                    pair[0],
                    pair[1]
                );
            }
            assert!(path.iter().all(|&p| !masked[p]), "masked hop in {path:?}");
        }
    });
}

#[test]
fn can_reach_agrees_with_oracle_on_reversed_graph() {
    Runner::new(300).seed(0xcafe).run("can_reach_vs_oracle", |gen| {
        let (adj, masked) = random_graph(gen);
        let n = adj.len();
        let targets: Vec<usize> = (0..gen.usize("targets", 0, n.min(4)))
            .map(|_| gen.usize("target", 0, n - 1))
            .collect();
        let got = reach::can_reach(&adj, &targets, &masked);
        let expect = oracle_visited(&reach::reverse(&adj), &targets, &masked);
        assert_eq!(got, expect, "adj={adj:?} targets={targets:?} masked={masked:?}");
    });
}
