//! The workspace lints itself: running the full rule set over this
//! repository with the checked-in `lint.toml` must produce zero
//! unsuppressed findings. This is the same gate `scripts/verify.sh`
//! enforces with `scan-lint --deny`; failing here means a change
//! introduced a contract violation without fixing or justifying it.

use std::path::Path;

use scan_lint::{lint_workspace_with_graph, load_config};

#[test]
fn workspace_is_lint_clean_under_deny() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let config = load_config(&root).expect("checked-in lint.toml parses");
    let (report, graph) = lint_workspace_with_graph(&root, &config).expect("workspace walks");
    let unsuppressed: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .map(|f| format!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message))
        .collect();
    assert!(
        unsuppressed.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        unsuppressed.join("\n")
    );
    // Sanity: the walk actually covered the workspace.
    assert!(report.rust_files > 100, "walked {} files", report.rust_files);
    assert!(report.manifests >= 10, "walked {} manifests", report.manifests);
    // The semantic layer must not be vacuous: the call graph links real
    // cross-function edges, and the checked-in config declares the
    // panic-freedom roots the daemon's liveness story rests on.
    assert!(graph.nodes.len() > 500, "{} graph nodes", graph.nodes.len());
    assert!(
        graph.edges.iter().map(Vec::len).sum::<usize>() > 500,
        "call graph has suspiciously few edges"
    );
    assert!(
        !config.panic_roots.is_empty(),
        "lint.toml lost its [roots] panic_freedom declarations"
    );
}
