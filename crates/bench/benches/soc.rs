//! Benchmarks for the SOC pipeline: SOC construction, campaign
//! preparation (pattern generation + fault sampling + error maps), and
//! meta-chain diagnosis of one fault on the paper's SOC 1.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scan_bist::Scheme;
use scan_diagnosis::{diagnose, CampaignSpec, ChainLayout, DiagnosisPlan, PreparedCampaign};
use scan_sim::FaultSimulator;
use scan_soc::d695;

fn bench_soc_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc_construction");
    group.sample_size(10);
    group.bench_function("soc1_six_largest", |b| {
        b.iter(|| black_box(d695::soc1().expect("SOC 1 builds")));
    });
    group.finish();
}

fn bench_campaign_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc_campaign_prep");
    group.sample_size(10);
    let soc = d695::soc1().expect("SOC 1 builds");
    let mut spec = CampaignSpec::new(128, 32, 8);
    spec.num_faults = 50;
    group.bench_function("s9234_core_50_faults", |b| {
        b.iter(|| {
            black_box(PreparedCampaign::from_soc(&soc, 0, &spec).expect("campaign prepares"))
        });
    });
    group.finish();
}

fn bench_meta_chain_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc_meta_chain_diagnosis");
    group.sample_size(20);
    let soc = d695::soc1().expect("SOC 1 builds");
    let core = &soc.cores()[0];
    let patterns = scan_diagnosis::lfsr_patterns(core.netlist(), 128, 0xACE1);
    let fsim = FaultSimulator::new(core.netlist(), core.view(), &patterns).expect("shapes");
    let fault = fsim.sample_detected_faults(1, 1)[0];
    let mut local_to_global = vec![usize::MAX; core.view().len()];
    for (global, (cell, _, _)) in soc.layout().into_iter().enumerate() {
        if cell.core == 0 {
            local_to_global[cell.local as usize] = global;
        }
    }
    let bits: Vec<(usize, usize)> = fsim
        .error_map(&fault)
        .iter_bits()
        .map(|(pos, pat)| (local_to_global[pos], pat))
        .collect();
    let plan = DiagnosisPlan::new(
        ChainLayout::from_soc(&soc),
        128,
        &scan_diagnosis::BistConfig::new(32, 8, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");
    group.bench_function("one_fault_7244_cells", |b| {
        b.iter(|| {
            let outcome = plan.analyze(bits.iter().copied());
            black_box(diagnose(&plan, &outcome).num_candidates())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_soc_construction,
    bench_campaign_preparation,
    bench_meta_chain_diagnosis
);
criterion_main!(benches);
