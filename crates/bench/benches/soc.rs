//! Benchmarks for the SOC pipeline: SOC construction, campaign
//! preparation (pattern generation + fault sampling + error maps), and
//! meta-chain diagnosis of one fault on the paper's SOC 1 — including
//! the serial-vs-parallel campaign comparison the `parallel` module
//! exists for.

use std::hint::black_box;

use scan_bench::timing::Bench;
use scan_bist::Scheme;
use scan_diagnosis::{diagnose, CampaignSpec, ChainLayout, DiagnosisPlan, PreparedCampaign};
use scan_sim::FaultSimulator;
use scan_soc::d695;

fn bench_soc_construction(b: &Bench) {
    b.run("soc1_construction_six_largest", || {
        black_box(d695::soc1().expect("SOC 1 builds"))
    });
}

fn bench_campaign_preparation(b: &Bench) {
    let soc = d695::soc1().expect("SOC 1 builds");
    let mut spec = CampaignSpec::new(128, 32, 8);
    spec.num_faults = 50;
    b.run("campaign_prep_s9234_core_50_faults", || {
        black_box(PreparedCampaign::from_soc(&soc, 0, &spec).expect("campaign prepares"))
    });
}

fn bench_campaign_run_serial_vs_parallel(b: &Bench) {
    let soc = d695::soc1().expect("SOC 1 builds");
    let mut spec = CampaignSpec::new(128, 32, 8);
    spec.num_faults = 50;
    let campaign = PreparedCampaign::from_soc(&soc, 0, &spec).expect("campaign prepares");
    b.run("campaign_run_serial_50_faults", || {
        black_box(campaign.run(Scheme::TWO_STEP_DEFAULT).expect("runs"))
    });
    b.run("campaign_run_parallel_auto_50_faults", || {
        black_box(
            campaign
                .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
                .expect("runs"),
        )
    });
}

fn bench_meta_chain_diagnosis(b: &Bench) {
    let soc = d695::soc1().expect("SOC 1 builds");
    let core = &soc.cores()[0];
    let patterns = scan_diagnosis::lfsr_patterns(core.netlist(), 128, 0xACE1);
    let fsim = FaultSimulator::new(core.netlist(), core.view(), &patterns).expect("shapes");
    let fault = fsim.sample_detected_faults(1, 1)[0];
    let mut local_to_global = vec![usize::MAX; core.view().len()];
    for (global, (cell, _, _)) in soc.layout().into_iter().enumerate() {
        if cell.core == 0 {
            local_to_global[cell.local as usize] = global;
        }
    }
    let bits: Vec<(usize, usize)> = fsim
        .error_map(&fault)
        .iter_bits()
        .map(|(pos, pat)| (local_to_global[pos], pat))
        .collect();
    let plan = DiagnosisPlan::new(
        ChainLayout::from_soc(&soc),
        128,
        &scan_diagnosis::BistConfig::new(32, 8, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");
    b.run("meta_chain_diagnosis_one_fault_7244_cells", || {
        let outcome = plan.analyze(bits.iter().copied());
        black_box(diagnose(&plan, &outcome).num_candidates())
    });
}

fn main() {
    let b = Bench::new("soc", 10);
    bench_soc_construction(&b);
    bench_campaign_preparation(&b);
    bench_campaign_run_serial_vs_parallel(&b);
    bench_meta_chain_diagnosis(&b);
}
