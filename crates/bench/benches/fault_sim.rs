//! Benchmarks for the simulation substrate: golden response evaluation
//! and per-fault error-map extraction at two circuit scales.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scan_diagnosis::lfsr_patterns;
use scan_netlist::{generate, Netlist, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse};

fn circuit_setup(name: &str, patterns: usize) -> (Netlist, usize) {
    let circuit = generate::benchmark(name);
    (circuit, patterns)
}

fn bench_golden_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden_response");
    group.sample_size(20);
    for name in ["s953", "s5378", "s13207"] {
        let (circuit, num_patterns) = circuit_setup(name, 128);
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
        group.bench_function(format!("{name}_128_patterns"), |b| {
            b.iter(|| {
                black_box(
                    FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match"),
                )
            });
        });
    }
    group.finish();
}

fn bench_fault_error_maps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_error_maps");
    group.sample_size(10);
    for name in ["s953", "s5378"] {
        let (circuit, num_patterns) = circuit_setup(name, 128);
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
        let faults: Vec<_> = FaultUniverse::collapsed(&circuit)
            .faults()
            .iter()
            .copied()
            .take(64)
            .collect();
        group.bench_function(format!("{name}_64_faults"), |b| {
            b.iter(|| {
                let mut detected = 0usize;
                for fault in &faults {
                    if fsim.error_map(fault).is_detected() {
                        detected += 1;
                    }
                }
                black_box(detected)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_golden_response, bench_fault_error_maps);
criterion_main!(benches);
