//! Benchmarks for the simulation substrate: golden response evaluation
//! and per-fault error-map extraction at two circuit scales.

use std::hint::black_box;

use scan_bench::timing::Bench;
use scan_diagnosis::lfsr_patterns;
use scan_netlist::{generate, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse};

fn bench_golden_response(b: &Bench) {
    for name in ["s953", "s5378", "s13207"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, 128, 0xACE1);
        b.run(&format!("golden_response_{name}_128_patterns"), || {
            black_box(FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match"))
        });
    }
}

fn bench_fault_error_maps(b: &Bench) {
    for name in ["s953", "s5378"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, 128, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
        let faults: Vec<_> = FaultUniverse::collapsed(&circuit)
            .faults()
            .iter()
            .copied()
            .take(64)
            .collect();
        b.run(&format!("error_maps_{name}_64_faults"), || {
            let mut detected = 0usize;
            for fault in &faults {
                if fsim.error_map(fault).is_detected() {
                    detected += 1;
                }
            }
            black_box(detected)
        });
    }
}

fn main() {
    let b = Bench::new("fault_sim", 10);
    bench_golden_response(&b);
    bench_fault_error_maps(&b);
}
