//! Microbenchmarks for the BIST primitives: LFSR stepping, stepwise
//! MISR clocking, and superposition error-signature computation.

use std::hint::black_box;

use scan_bench::timing::Bench;
use scan_bist::{Lfsr, Misr, MisrModel};

fn bench_lfsr_step(b: &Bench) {
    b.run("lfsr16_step_64k", || {
        let mut l = Lfsr::new(16).expect("degree supported");
        l.load(0xACE1);
        for _ in 0..65_536 {
            black_box(l.step());
        }
        l.state()
    });
}

fn bench_misr_clock(b: &Bench) {
    b.run("misr16_clock_64k", || {
        let mut m = Misr::new(16).expect("degree supported");
        for i in 0u64..65_536 {
            m.clock(i & 1);
        }
        m.signature()
    });
}

fn bench_superposition_signature(b: &Bench) {
    let model = MisrModel::new(16).expect("degree supported");
    // A sparse error stream typical of one clustered fault: ~1000 error
    // bits over a 128-pattern, 1700-cell session.
    let total_clocks = 128u64 * 1700;
    let bits: Vec<(u64, u32)> = (0..1000u64)
        .map(|i| ((i * 217) % total_clocks, 0u32))
        .collect();
    b.run("superposition_signature_1k_bits", || {
        black_box(model.signature(total_clocks, bits.iter().copied()))
    });
}

fn bench_x_pow_mod(b: &Bench) {
    let model = MisrModel::new(16).expect("degree supported");
    b.run("x_pow_mod_large_exponent", || {
        black_box(model.x_pow_mod(black_box(123_456_789)))
    });
}

fn main() {
    let b = Bench::new("bist", 30);
    bench_lfsr_step(&b);
    bench_misr_clock(&b);
    bench_superposition_signature(&b);
    bench_x_pow_mod(&b);
}
