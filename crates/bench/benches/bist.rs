//! Microbenchmarks for the BIST primitives: LFSR stepping, stepwise
//! MISR clocking, and superposition error-signature computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use scan_bist::{Lfsr, Misr, MisrModel};

fn bench_lfsr_step(c: &mut Criterion) {
    c.bench_function("lfsr16_step_64k", |b| {
        b.iter_batched(
            || {
                let mut l = Lfsr::new(16).expect("degree supported");
                l.load(0xACE1);
                l
            },
            |mut l| {
                for _ in 0..65_536 {
                    black_box(l.step());
                }
                l.state()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_misr_clock(c: &mut Criterion) {
    c.bench_function("misr16_clock_64k", |b| {
        b.iter_batched(
            || Misr::new(16).expect("degree supported"),
            |mut m| {
                for i in 0u64..65_536 {
                    m.clock(i & 1);
                }
                m.signature()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_superposition_signature(c: &mut Criterion) {
    let model = MisrModel::new(16).expect("degree supported");
    // A sparse error stream typical of one clustered fault: ~1000 error
    // bits over a 128-pattern, 1700-cell session.
    let total_clocks = 128u64 * 1700;
    let bits: Vec<(u64, u32)> = (0..1000u64)
        .map(|i| ((i * 217) % total_clocks, 0u32))
        .collect();
    c.bench_function("superposition_signature_1k_bits", |b| {
        b.iter(|| black_box(model.signature(total_clocks, bits.iter().copied())));
    });
}

fn bench_x_pow_mod(c: &mut Criterion) {
    let model = MisrModel::new(16).expect("degree supported");
    c.bench_function("x_pow_mod_large_exponent", |b| {
        b.iter(|| black_box(model.x_pow_mod(black_box(123_456_789))));
    });
}

criterion_group!(
    benches,
    bench_lfsr_step,
    bench_misr_clock,
    bench_superposition_signature,
    bench_x_pow_mod
);
criterion_main!(benches);
