//! Benchmarks for the ATPG substrate: single-fault PODEM, the full
//! fault-dropping run, and SCOAP computation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scan_atpg::{run_atpg, Podem, PodemLimits};
use scan_netlist::generate;
use scan_netlist::scoap::Scoap;
use scan_sim::FaultUniverse;

fn bench_scoap(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoap");
    group.sample_size(20);
    for name in ["s953", "s5378", "s13207"] {
        let circuit = generate::benchmark(name);
        group.bench_function(name, |b| {
            b.iter(|| black_box(Scoap::compute(&circuit)));
        });
    }
    group.finish();
}

fn bench_podem_single_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("podem_single_faults");
    group.sample_size(10);
    for name in ["s298", "s953"] {
        let circuit = generate::benchmark(name);
        let faults: Vec<_> = FaultUniverse::collapsed(&circuit)
            .faults()
            .iter()
            .copied()
            .step_by(13)
            .take(32)
            .collect();
        group.bench_function(format!("{name}_32_faults"), |b| {
            b.iter(|| {
                let mut podem = Podem::new(&circuit);
                let mut tests = 0usize;
                for fault in &faults {
                    if matches!(
                        podem.generate(fault, &PodemLimits::default()),
                        scan_atpg::PodemResult::Test(_)
                    ) {
                        tests += 1;
                    }
                }
                black_box(tests)
            });
        });
    }
    group.finish();
}

fn bench_full_atpg_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_atpg");
    group.sample_size(10);
    let circuit = generate::benchmark("s298");
    group.bench_function("s298_with_fault_dropping", |b| {
        b.iter(|| black_box(run_atpg(&circuit, &PodemLimits::default(), 1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scoap,
    bench_podem_single_faults,
    bench_full_atpg_run
);
criterion_main!(benches);
