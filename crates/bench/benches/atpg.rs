//! Benchmarks for the ATPG substrate: single-fault PODEM, the full
//! fault-dropping run, and SCOAP computation.

use std::hint::black_box;

use scan_atpg::{run_atpg, Podem, PodemLimits};
use scan_bench::timing::Bench;
use scan_netlist::generate;
use scan_netlist::scoap::Scoap;
use scan_sim::FaultUniverse;

fn bench_scoap(b: &Bench) {
    for name in ["s953", "s5378", "s13207"] {
        let circuit = generate::benchmark(name);
        b.run(&format!("scoap_{name}"), || {
            black_box(Scoap::compute(&circuit))
        });
    }
}

fn bench_podem_single_faults(b: &Bench) {
    for name in ["s298", "s953"] {
        let circuit = generate::benchmark(name);
        let faults: Vec<_> = FaultUniverse::collapsed(&circuit)
            .faults()
            .iter()
            .copied()
            .step_by(13)
            .take(32)
            .collect();
        b.run(&format!("podem_{name}_32_faults"), || {
            let mut podem = Podem::new(&circuit);
            let mut tests = 0usize;
            for fault in &faults {
                if matches!(
                    podem.generate(fault, &PodemLimits::default()),
                    scan_atpg::PodemResult::Test(_)
                ) {
                    tests += 1;
                }
            }
            black_box(tests)
        });
    }
}

fn bench_full_atpg_run(b: &Bench) {
    let circuit = generate::benchmark("s298");
    b.run("full_atpg_s298_with_fault_dropping", || {
        black_box(run_atpg(&circuit, &PodemLimits::default(), 1))
    });
}

fn main() {
    let b = Bench::new("atpg", 10);
    bench_scoap(&b);
    bench_podem_single_faults(&b);
    bench_full_atpg_run(&b);
}
