//! End-to-end diagnosis benchmarks: session signature analysis,
//! candidate intersection, and pruning for one fault, plus the
//! per-scheme ablation the paper's comparison rests on.

use std::hint::black_box;

use scan_bench::timing::Bench;
use scan_bist::Scheme;
use scan_diagnosis::{
    diagnose, lfsr_patterns, prune_by_cover, BistConfig, ChainLayout, DiagnosisPlan,
};
use scan_netlist::{generate, ScanView};
use scan_sim::{ErrorMap, FaultSimulator};

fn prepared_error_map() -> (usize, ErrorMap) {
    let circuit = generate::benchmark("s5378");
    let view = ScanView::natural(&circuit, true);
    let patterns = lfsr_patterns(&circuit, 128, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
    let fault = fsim.sample_detected_faults(1, 2003)[0];
    (view.len(), fsim.error_map(&fault))
}

fn bench_plan_construction(b: &Bench) {
    for (label, scheme) in [
        ("random", Scheme::RandomSelection),
        ("two_step", Scheme::TWO_STEP_DEFAULT),
    ] {
        b.run(&format!("plan_construction_{label}"), || {
            black_box(
                DiagnosisPlan::new(
                    ChainLayout::single_chain(228),
                    128,
                    &BistConfig::new(8, 8, scheme),
                )
                .expect("plan builds"),
            )
        });
    }
}

fn bench_single_fault_diagnosis(b: &Bench) {
    let (chain_len, errors) = prepared_error_map();
    for (label, scheme) in [
        ("random", Scheme::RandomSelection),
        ("interval", Scheme::IntervalBased),
        ("two_step", Scheme::TWO_STEP_DEFAULT),
    ] {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(chain_len),
            128,
            &BistConfig::new(8, 8, scheme),
        )
        .expect("plan builds");
        b.run(&format!("single_fault_diagnosis_s5378_{label}"), || {
            let outcome = plan.analyze(errors.iter_bits());
            let diag = diagnose(&plan, &outcome);
            let pruned = prune_by_cover(&plan, &outcome, diag.candidates());
            black_box((diag.num_candidates(), pruned.len()))
        });
    }
}

fn main() {
    let b = Bench::new("diagnosis", 30);
    bench_plan_construction(&b);
    bench_single_fault_diagnosis(&b);
}
