//! Microbenchmarks for partition generation: random-selection label
//! derivation, interval covering-seed search, and the combined two-step
//! plan at both circuit and SOC scale.

use std::hint::black_box;

use scan_bench::timing::Bench;
use scan_bist::partition::{
    fixed_interval_partition, generate_partitions, interval_partition, PartitionConfig,
};
use scan_bist::Scheme;

fn config(chain_len: usize, groups: u16) -> PartitionConfig {
    PartitionConfig::new(chain_len, groups)
}

fn main() {
    let b = Bench::new("partitioning", 20);

    let cfg = config(228, 8); // s5378 view: 179 FFs + 49 POs
    b.run("random_selection_8x_s5378_chain", || {
        black_box(generate_partitions(&cfg, Scheme::RandomSelection, 8))
    });

    b.run("interval_seed_search_chain_228_groups_8", || {
        black_box(interval_partition(&cfg, 0).expect("cover exists"))
    });

    let soc_cfg = config(7244, 32);
    b.run("interval_seed_search_soc1_chain_7244_groups_32", || {
        black_box(interval_partition(&soc_cfg, 0).expect("cover exists"))
    });

    b.run("two_step_plan_soc1_8_partitions", || {
        black_box(generate_partitions(&soc_cfg, Scheme::TWO_STEP_DEFAULT, 8))
    });

    b.run("fixed_interval_soc1", || {
        black_box(fixed_interval_partition(&soc_cfg))
    });
}
