//! Microbenchmarks for partition generation: random-selection label
//! derivation, interval covering-seed search, and the combined two-step
//! plan at both circuit and SOC scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scan_bist::partition::{
    fixed_interval_partition, generate_partitions, interval_partition, PartitionConfig,
};
use scan_bist::Scheme;

fn config(chain_len: usize, groups: u16) -> PartitionConfig {
    PartitionConfig::new(chain_len, groups)
}

fn bench_random_selection(c: &mut Criterion) {
    c.bench_function("random_selection_8x_s5378_chain", |b| {
        let cfg = config(228, 8); // s5378 view: 179 FFs + 49 POs
        b.iter(|| black_box(generate_partitions(&cfg, Scheme::RandomSelection, 8)));
    });
}

fn bench_interval_seed_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_seed_search");
    group.sample_size(20);
    group.bench_function("chain_228_groups_8", |b| {
        let cfg = config(228, 8);
        b.iter(|| black_box(interval_partition(&cfg, 0).expect("cover exists")));
    });
    group.bench_function("soc1_chain_7244_groups_32", |b| {
        let cfg = config(7244, 32);
        b.iter(|| black_box(interval_partition(&cfg, 0).expect("cover exists")));
    });
    group.finish();
}

fn bench_two_step_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_step_plan");
    group.sample_size(20);
    group.bench_function("soc1_8_partitions", |b| {
        let cfg = config(7244, 32);
        b.iter(|| black_box(generate_partitions(&cfg, Scheme::TWO_STEP_DEFAULT, 8)));
    });
    group.finish();
}

fn bench_fixed_interval(c: &mut Criterion) {
    c.bench_function("fixed_interval_soc1", |b| {
        let cfg = config(7244, 32);
        b.iter(|| black_box(fixed_interval_partition(&cfg)));
    });
}

criterion_group!(
    benches,
    bench_random_selection,
    bench_interval_seed_search,
    bench_two_step_plan,
    bench_fixed_interval
);
criterion_main!(benches);
