//! Stdout-cleanliness harness for every experiment binary.
//!
//! The contract (see `crates/bench/src/obs.rs`): stdout carries the
//! machine-readable table/figure payload and *nothing else*;
//! diagnostics, progress, and usage text go to stderr. Running a
//! binary with `--help` must exit 0 before any campaign work, print
//! the shared usage text to stderr, and leave stdout empty — which is
//! the degenerate "parses cleanly" payload. A binary that ever prints
//! banners or diagnostics to stdout fails here.

use std::process::Command;

/// Every binary in `src/bin`, paired with its compiled path. The env
/// vars are set by cargo for integration tests, so a new binary that
/// is not added here is caught by `all_binaries_are_listed`.
const BINS: &[(&str, &str)] = &[
    (
        "ablation_chain_mask",
        env!("CARGO_BIN_EXE_ablation_chain_mask"),
    ),
    (
        "ablation_interval_count",
        env!("CARGO_BIN_EXE_ablation_interval_count"),
    ),
    ("ablation_misr", env!("CARGO_BIN_EXE_ablation_misr")),
    ("ablation_ordering", env!("CARGO_BIN_EXE_ablation_ordering")),
    ("ablation_xmask", env!("CARGO_BIN_EXE_ablation_xmask")),
    ("adaptive_compare", env!("CARGO_BIN_EXE_adaptive_compare")),
    ("all_experiments", env!("CARGO_BIN_EXE_all_experiments")),
    ("chain_defects", env!("CARGO_BIN_EXE_chain_defects")),
    ("clustering", env!("CARGO_BIN_EXE_clustering")),
    ("compactors", env!("CARGO_BIN_EXE_compactors")),
    ("coverage", env!("CARGO_BIN_EXE_coverage")),
    ("diagnosis_time", env!("CARGO_BIN_EXE_diagnosis_time")),
    ("dictionary", env!("CARGO_BIN_EXE_dictionary")),
    ("figure3", env!("CARGO_BIN_EXE_figure3")),
    ("figure5", env!("CARGO_BIN_EXE_figure5")),
    ("localization", env!("CARGO_BIN_EXE_localization")),
    ("multifault", env!("CARGO_BIN_EXE_multifault")),
    ("noise_sweep", env!("CARGO_BIN_EXE_noise_sweep")),
    ("overhead", env!("CARGO_BIN_EXE_overhead")),
    ("table1", env!("CARGO_BIN_EXE_table1")),
    ("table2", env!("CARGO_BIN_EXE_table2")),
    ("table3", env!("CARGO_BIN_EXE_table3")),
    ("table4", env!("CARGO_BIN_EXE_table4")),
    ("topoff", env!("CARGO_BIN_EXE_topoff")),
    ("two_faulty_cores", env!("CARGO_BIN_EXE_two_faulty_cores")),
    ("vectors", env!("CARGO_BIN_EXE_vectors")),
    ("weighted", env!("CARGO_BIN_EXE_weighted")),
    ("windows", env!("CARGO_BIN_EXE_windows")),
];

#[test]
fn all_binaries_are_listed() {
    let mut on_disk: Vec<String> =
        std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/src/bin"))
            .expect("src/bin listable")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .trim_end_matches(".rs")
                    .to_owned()
            })
            .collect();
    on_disk.sort();
    let mut listed: Vec<String> = BINS.iter().map(|(name, _)| (*name).to_owned()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "src/bin and the harness list disagree — add the new binary to BINS"
    );
}

#[test]
fn help_exits_zero_with_clean_stdout() {
    for (name, exe) in BINS {
        let output = Command::new(exe)
            .arg("--help")
            .output()
            .unwrap_or_else(|e| panic!("{name}: failed to spawn: {e}"));
        assert!(
            output.status.success(),
            "{name} --help exited {:?}",
            output.status.code()
        );
        let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
        assert!(
            stdout.is_empty(),
            "{name} --help wrote to stdout (payload channel): {stdout:?}"
        );
        let stderr = String::from_utf8(output.stderr).expect("stderr is UTF-8");
        assert!(
            stderr.starts_with(&format!("usage: {name}")),
            "{name} --help stderr does not lead with its usage line: {stderr:?}"
        );
        assert!(
            stderr.contains("--profile-out") && stderr.contains("--trace-out"),
            "{name} --help does not document the shared observability flags"
        );
    }
}

/// `scan-lint` lives in another package, so cargo sets no
/// `CARGO_BIN_EXE_` var for it here — locate it as a sibling of this
/// package's binaries instead. `None` (not built yet) skips the test
/// so `cargo test -p scan-bench` alone still passes.
fn scan_lint_exe() -> Option<std::path::PathBuf> {
    let sibling = std::path::Path::new(env!("CARGO_BIN_EXE_table1")).with_file_name("scan-lint");
    sibling.exists().then_some(sibling)
}

#[test]
fn scan_lint_follows_the_same_help_contract() {
    let Some(exe) = scan_lint_exe() else {
        eprintln!("scan-lint not built alongside scan-bench; skipping");
        return;
    };
    let output = Command::new(&exe).arg("--help").output().expect("spawn");
    assert!(output.status.success(), "scan-lint --help failed");
    assert!(
        output.stdout.is_empty(),
        "scan-lint --help wrote to stdout (payload channel)"
    );
    let stderr = String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8");
    assert!(
        stderr.starts_with("usage: scan-lint"),
        "scan-lint --help stderr does not lead with its usage line: {stderr:?}"
    );

    let short = Command::new(&exe).arg("-h").output().expect("spawn");
    assert!(short.status.success());
    assert_eq!(output.stderr, short.stderr);
    assert!(short.stdout.is_empty());
}

#[test]
fn short_help_matches_long_help() {
    // One representative is enough — the flag handling is shared code.
    let (name, exe) = BINS[0];
    let long = Command::new(exe).arg("--help").output().expect("spawn");
    let short = Command::new(exe).arg("-h").output().expect("spawn");
    assert!(short.status.success(), "{name} -h failed");
    assert_eq!(long.stderr, short.stderr);
    assert!(short.stdout.is_empty());
}
