//! Shared experiment-harness utilities for the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! DATE 2003 paper; this crate provides the common campaign
//! configuration and plain-text table rendering they share. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded results.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::cast_precision_loss)]

use scan_bist::Scheme;
use scan_diagnosis::CampaignSpec;

pub mod obs;
pub mod suite;
pub mod timing;

pub use obs::ObsSession;

/// The schemes compared throughout the paper, in reporting order.
pub const PAPER_SCHEMES: [Scheme; 2] = [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT];

/// Campaign spec for Table 1 (s953: 200 patterns, 4 groups/partition,
/// up to 8 partitions, 500 faults).
#[must_use]
pub fn table1_spec() -> CampaignSpec {
    CampaignSpec::new(200, 4, 8)
}

/// Campaign spec for Table 2 (six largest ISCAS-89: 128 patterns per
/// session, 16 groups, 8 partitions, 500 faults, degree-16 partition
/// LFSR).
#[must_use]
pub fn table2_spec() -> CampaignSpec {
    CampaignSpec::new(128, 16, 8)
}

/// Campaign spec for Table 3 (SOC 1 on a single meta chain: 32 groups,
/// 8 partitions).
#[must_use]
pub fn table3_spec() -> CampaignSpec {
    CampaignSpec::new(128, 32, 8)
}

/// Campaign spec for Table 4 (SOC 2 / d695 variant on 8 meta chains: 8
/// groups, 8 partitions).
#[must_use]
pub fn table4_spec() -> CampaignSpec {
    CampaignSpec::new(128, 8, 8)
}

/// Renders a plain-text table with a header row and aligned columns.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|&h| h.to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a DR value the way the paper's tables do.
#[must_use]
pub fn fmt_dr(dr: f64) -> String {
    format!("{dr:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let out = render_table(
            &["name", "dr"],
            &[
                vec!["s953".to_owned(), "0.5".to_owned()],
                vec!["s38584".to_owned(), "12.25".to_owned()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("s953"));
        // Columns aligned: "dr" column starts at the same offset.
        let col = lines[0].find("dr").unwrap();
        assert_eq!(&lines[3][col..col + 5], "12.25");
    }

    #[test]
    fn specs_match_paper_parameters() {
        assert_eq!(table1_spec().num_patterns, 200);
        assert_eq!(table1_spec().groups, 4);
        assert_eq!(table2_spec().num_patterns, 128);
        assert_eq!(table3_spec().groups, 32);
        assert_eq!(table4_spec().groups, 8);
        assert_eq!(table1_spec().num_faults, 500);
    }
}
