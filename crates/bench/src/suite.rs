//! The `scanbist bench` performance suite: calibrated kernels over the
//! workspace's hot paths, robust summary statistics, and versioned
//! baseline files with regression comparison.
//!
//! Nine kernels cover the pipeline end to end — campaign fault
//! simulation (bit-parallel by default), the raw PPSFP error-map sweep
//! (`fault_sim_bitpar`), bit-serial and fused word-level MISR
//! compaction, interval and random-selection partition generation,
//! serial and parallel diagnosis campaigns, and an SOC per-core sweep.
//! Each kernel runs `warmup` untimed repetitions and
//! `repeats` timed ones; samples above `Q3 + 1.5·IQR` are rejected as
//! outliers before the median and p95 are taken, so a single scheduler
//! hiccup does not poison a baseline.
//!
//! Results serialize to `BENCH_<suite>.json` (see `docs/BENCHMARKS.md`
//! for the schema and regression policy), parse back via the vendored
//! [`scan_obs::json`] reader, and compare against a stored baseline
//! with a configurable slowdown threshold.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use scan_bist::partition::{generate_partitions, PartitionConfig};
use scan_bist::{Misr, Prpg, Scheme, WordMisr};
use scan_diagnosis::{lfsr_patterns, CampaignSpec, PreparedCampaign};
use scan_netlist::{generate, ScanView};
use scan_sim::PpsfpSimulator;
use scan_obs::json::{parse, Value};
use scan_soc::{CoreModule, Soc};

/// Version stamp written into every baseline file; bump when the JSON
/// schema or kernel definitions change incompatibly.
pub const FORMAT_VERSION: u64 = 1;

/// How a suite run is sized.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Suite name recorded in the output (`diagnosis` by default).
    pub suite: String,
    /// Quick mode: small circuit, few faults — for smoke tests.
    pub quick: bool,
    /// Timed repetitions per kernel.
    pub repeats: usize,
    /// Untimed warmup repetitions per kernel.
    pub warmup: usize,
}

impl SuiteConfig {
    /// The default sizing for a suite: 9 timed repeats (3 in quick
    /// mode) after one warmup. Nine repeats give the `Q3 + 1.5·IQR`
    /// outlier gate enough samples that one scheduler hiccup neither
    /// poisons the median nor (as five repeats regularly did) lands
    /// inside the quartiles and widens the cut itself.
    #[must_use]
    pub fn new(suite: &str, quick: bool) -> Self {
        SuiteConfig {
            suite: suite.to_owned(),
            quick,
            repeats: if quick { 3 } else { 9 },
            warmup: 1,
        }
    }
}

/// Robust summary of one kernel's timed samples.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct KernelStats {
    /// Median of the retained samples, nanoseconds.
    pub median_ns: u64,
    /// 95th percentile of the retained samples, nanoseconds.
    pub p95_ns: u64,
    /// Interquartile range of *all* samples, nanoseconds — the noise
    /// width the outlier cut was derived from.
    pub iqr_ns: u64,
    /// Samples retained after outlier rejection.
    pub samples: u64,
    /// Samples rejected as outliers (above `Q3 + 1.5·IQR`).
    pub dropped: u64,
    /// The rejection cutoff the gate used, `Q3 + 1.5·IQR` nanoseconds —
    /// recorded so a baseline documents *why* samples were dropped.
    pub cutoff_ns: u64,
    /// The rejected samples themselves, ascending nanoseconds. Empty
    /// when nothing was dropped.
    pub dropped_ns: Vec<u64>,
}

/// Summarizes raw per-repeat wall times: computes the IQR over all
/// samples, drops outliers above `Q3 + 1.5·IQR`, and reports the
/// median / p95 of what remains.
///
/// # Panics
///
/// Panics if `samples_ns` is empty.
#[must_use]
pub fn stats_from_samples(samples_ns: &[u64]) -> KernelStats {
    assert!(!samples_ns.is_empty(), "need at least one sample");
    let mut sorted = samples_ns.to_vec();
    sorted.sort_unstable();
    let q1 = percentile(&sorted, 25);
    let q3 = percentile(&sorted, 75);
    let iqr = q3 - q1;
    let cutoff = q3.saturating_add(iqr.saturating_mul(3) / 2);
    let (retained, dropped_ns): (Vec<u64>, Vec<u64>) =
        sorted.iter().copied().partition(|&s| s <= cutoff);
    // Q3 itself always survives the cut, so `retained` is non-empty.
    KernelStats {
        median_ns: percentile(&retained, 50),
        p95_ns: percentile(&retained, 95),
        iqr_ns: iqr,
        samples: retained.len() as u64,
        dropped: dropped_ns.len() as u64,
        cutoff_ns: cutoff,
        dropped_ns,
    }
}

/// The `pct`-th percentile of an ascending-sorted slice, by the
/// nearest-rank method (deterministic, no interpolation).
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    let n = sorted.len();
    let rank = (n * pct).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// One full suite run: metadata plus per-kernel statistics.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SuiteResult {
    /// Schema version ([`FORMAT_VERSION`]).
    pub version: u64,
    /// Suite name.
    pub suite: String,
    /// Whether quick-mode sizing was used.
    pub quick: bool,
    /// Timed repetitions per kernel.
    pub repeats: u64,
    /// Warmup repetitions per kernel.
    pub warmup: u64,
    /// Per-kernel statistics, keyed by kernel name.
    pub kernels: BTreeMap<String, KernelStats>,
}

impl SuiteResult {
    /// Renders the versioned baseline JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            r#"{{"version":{},"suite":"{}","quick":{},"repeats":{},"warmup":{},"kernels":{{"#,
            self.version, self.suite, self.quick, self.repeats, self.warmup
        );
        for (i, (name, k)) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let dropped_ns = k
                .dropped_ns
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                out,
                r#""{name}":{{"median_ns":{},"p95_ns":{},"iqr_ns":{},"samples":{},"dropped":{},"cutoff_ns":{},"dropped_ns":[{dropped_ns}]}}"#,
                k.median_ns, k.p95_ns, k.iqr_ns, k.samples, k.dropped, k.cutoff_ns
            );
        }
        out.push_str("}}\n");
        out
    }

    /// Parses a baseline document written by [`SuiteResult::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message if the text is not valid JSON, carries a
    /// different [`FORMAT_VERSION`], or is missing members.
    // Nanosecond counts fit f64's 53-bit mantissa for any realistic
    // benchmark duration, and negatives are clamped before the cast.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = parse(text).map_err(|e| format!("bench baseline: {e}"))?;
        let num = |v: &Value, member: &str| -> Result<u64, String> {
            v.get(member)
                .and_then(Value::as_f64)
                .map(|x| x.max(0.0) as u64)
                .ok_or_else(|| format!("bench baseline missing numeric \"{member}\""))
        };
        let version = num(&value, "version")?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "bench baseline version {version} unsupported (expected {FORMAT_VERSION})"
            ));
        }
        let suite = value
            .get("suite")
            .and_then(Value::as_str)
            .ok_or("bench baseline missing \"suite\"")?
            .to_owned();
        let quick = matches!(value.get("quick"), Some(Value::Bool(true)));
        let repeats = num(&value, "repeats")?;
        let warmup = num(&value, "warmup")?;
        let kernel_values = value
            .get("kernels")
            .and_then(Value::as_object)
            .ok_or("bench baseline missing \"kernels\" object")?;
        let mut kernels = BTreeMap::new();
        for (name, k) in kernel_values {
            // `cutoff_ns` / `dropped_ns` arrived with the drop-reason
            // reporting; older baselines lack them, so they default.
            let cutoff_ns = num(k, "cutoff_ns").unwrap_or(0);
            let dropped_ns = k
                .get("dropped_ns")
                .and_then(Value::as_array)
                .map(|values| {
                    values
                        .iter()
                        .filter_map(Value::as_f64)
                        .map(|x| x.max(0.0) as u64)
                        .collect()
                })
                .unwrap_or_default();
            kernels.insert(
                name.clone(),
                KernelStats {
                    median_ns: num(k, "median_ns")?,
                    p95_ns: num(k, "p95_ns")?,
                    iqr_ns: num(k, "iqr_ns")?,
                    samples: num(k, "samples")?,
                    dropped: num(k, "dropped")?,
                    cutoff_ns,
                    dropped_ns,
                },
            );
        }
        if kernels.is_empty() {
            return Err("bench baseline has no kernels".into());
        }
        Ok(SuiteResult {
            version,
            suite,
            quick,
            repeats,
            warmup,
            kernels,
        })
    }

    /// Renders the human-readable result table (one row per kernel).
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = format!(
            "bench suite `{}`{} — {} repeat(s), {} warmup\n",
            self.suite,
            if self.quick { " (quick)" } else { "" },
            self.repeats,
            self.warmup
        );
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>12} {:>8}",
            "kernel", "median", "p95", "iqr", "dropped"
        );
        for (name, k) in &self.kernels {
            let _ = writeln!(
                out,
                "{name:<22} {:>12} {:>12} {:>12} {:>8}",
                fmt_ns(k.median_ns),
                fmt_ns(k.p95_ns),
                fmt_ns(k.iqr_ns),
                k.dropped
            );
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// One kernel that got slower than the baseline allows.
#[derive(Clone, PartialEq, Debug)]
pub struct Regression {
    /// Kernel name.
    pub kernel: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median, nanoseconds.
    pub current_ns: u64,
    /// `current / baseline` slowdown ratio.
    pub ratio: f64,
}

/// The outcome of comparing a run against a baseline.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Comparison {
    /// Kernels slower than `baseline · (1 + threshold)`.
    pub regressions: Vec<Regression>,
    /// Baseline kernels absent from the current run.
    pub missing: Vec<String>,
    /// Kernels present in both runs.
    pub compared: usize,
}

impl Comparison {
    /// True when no kernel regressed and none disappeared.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Renders the comparison verdict for stderr.
    #[must_use]
    pub fn render(&self, threshold: f64) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION {}: median {} -> {} ({:.2}x, threshold {:.2}x)",
                r.kernel,
                fmt_ns(r.baseline_ns),
                fmt_ns(r.current_ns),
                r.ratio,
                1.0 + threshold
            );
        }
        for name in &self.missing {
            let _ = writeln!(out, "MISSING kernel `{name}` (present in baseline)");
        }
        let _ = writeln!(
            out,
            "baseline comparison: {} kernel(s) compared, {} regression(s), {} missing -> {}",
            self.compared,
            self.regressions.len(),
            self.missing.len(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Compares `current` against `baseline`: a kernel regresses when its
/// current median exceeds the baseline median by more than `threshold`
/// (a fraction — `0.5` allows up to 1.5× the baseline). Kernels only
/// present on one side are never regressions, but baseline kernels
/// missing from `current` fail the comparison.
#[must_use]
pub fn compare(current: &SuiteResult, baseline: &SuiteResult, threshold: f64) -> Comparison {
    let mut comparison = Comparison::default();
    for (name, base) in &baseline.kernels {
        let Some(cur) = current.kernels.get(name) else {
            comparison.missing.push(name.clone());
            continue;
        };
        comparison.compared += 1;
        let limit = base.median_ns as f64 * (1.0 + threshold);
        if cur.median_ns as f64 > limit {
            comparison.regressions.push(Regression {
                kernel: name.clone(),
                baseline_ns: base.median_ns,
                current_ns: cur.median_ns,
                ratio: cur.median_ns as f64 / (base.median_ns as f64).max(1.0),
            });
        }
    }
    comparison
}

/// Times `body` for `warmup` untimed plus `repeats` timed repetitions.
fn time_kernel<T>(warmup: usize, repeats: usize, mut body: impl FnMut() -> T) -> Vec<u64> {
    for _ in 0..warmup {
        black_box(body());
    }
    (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(body());
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect()
}

/// Runs every kernel of the suite. `on_kernel` is called after each
/// kernel finishes (for progress reporting on stderr).
///
/// # Panics
///
/// Panics only if the embedded benchmark circuits fail to prepare,
/// which would mean the workspace itself is broken.
#[allow(clippy::too_many_lines)]
pub fn run_suite(
    config: &SuiteConfig,
    mut on_kernel: impl FnMut(&str, &KernelStats),
) -> SuiteResult {
    let _span = scan_obs::span!("bench_suite");
    let (circuit, patterns, faults) = if config.quick {
        ("s298", 32, 30)
    } else {
        ("s953", 128, 150)
    };
    let (groups, partitions) = if config.quick { (4u16, 4usize) } else { (8, 8) };
    let netlist = generate::benchmark(circuit);
    let mut spec = CampaignSpec::new(patterns, groups, partitions);
    spec.num_faults = faults;
    let campaign =
        PreparedCampaign::from_circuit(&netlist, &spec).expect("embedded benchmark prepares");
    let chain_len = campaign.layout().num_cells();
    let misr_cycles = if config.quick { 50_000u64 } else { 200_000 };

    let mut kernels = BTreeMap::new();
    let record = |name: &str,
                  kernels: &mut BTreeMap<String, KernelStats>,
                  samples: Vec<u64>,
                  on_kernel: &mut dyn FnMut(&str, &KernelStats)| {
        let stats = stats_from_samples(&samples);
        on_kernel(name, &stats);
        kernels.insert(name.to_owned(), stats);
    };

    let samples = time_kernel(config.warmup, config.repeats, || {
        PreparedCampaign::from_circuit(&netlist, &spec).expect("embedded benchmark prepares")
    });
    record("fault_sim", &mut kernels, samples, &mut on_kernel);

    // The raw bit-parallel error-map sweep, isolated from campaign
    // setup: the engine and the detected-fault sample are prepared
    // once, the timed body re-simulates every sampled fault.
    let view = ScanView::natural(&netlist, spec.include_outputs);
    let pattern_set = lfsr_patterns(&netlist, patterns, spec.prpg_seed);
    let mut psim =
        PpsfpSimulator::new(&netlist, &view, &pattern_set).expect("embedded benchmark prepares");
    let sample: Vec<scan_sim::Fault> = psim
        .sample_detected_with_maps(faults, spec.fault_seed)
        .into_iter()
        .map(|(fault, _)| fault)
        .collect();
    let samples = time_kernel(config.warmup, config.repeats, || {
        let mut failing = 0usize;
        for fault in &sample {
            failing += psim.error_map(fault).failing_positions().len();
        }
        failing
    });
    record("fault_sim_bitpar", &mut kernels, samples, &mut on_kernel);

    let samples = time_kernel(config.warmup, config.repeats, || {
        let mut misr = Misr::new(16).expect("degree 16 supported");
        let mut prpg = Prpg::new(0xACE1).expect("PRPG degree supported");
        for _ in 0..misr_cycles {
            misr.clock(u64::from(prpg.next_bit()));
        }
        misr.signature()
    });
    record("misr_compaction", &mut kernels, samples, &mut on_kernel);

    // Fused compaction: the same stream folded 64 clocks per step,
    // ragged tail included (`misr_cycles` is not a multiple of 64).
    let samples = time_kernel(config.warmup, config.repeats, || {
        let mut misr = WordMisr::new(16).expect("degree 16 supported");
        let mut prpg = Prpg::new(0xACE1).expect("PRPG degree supported");
        let mut remaining = misr_cycles;
        while remaining > 0 {
            let n = remaining.min(64) as u32;
            let mut word = 0u64;
            for lane in 0..n {
                word |= u64::from(prpg.next_bit()) << lane;
            }
            misr.clock_word(word, n);
            remaining -= u64::from(n);
        }
        misr.signature()
    });
    record("misr_fused", &mut kernels, samples, &mut on_kernel);

    let partition_config = PartitionConfig::new(chain_len, groups);
    let samples = time_kernel(config.warmup, config.repeats, || {
        generate_partitions(&partition_config, Scheme::IntervalBased, partitions)
    });
    record("partition_interval", &mut kernels, samples, &mut on_kernel);

    let samples = time_kernel(config.warmup, config.repeats, || {
        generate_partitions(&partition_config, Scheme::RandomSelection, partitions)
    });
    record("partition_random", &mut kernels, samples, &mut on_kernel);

    let samples = time_kernel(config.warmup, config.repeats, || {
        campaign
            .run(Scheme::TWO_STEP_DEFAULT)
            .expect("prepared campaign runs")
    });
    record("diagnosis_serial", &mut kernels, samples, &mut on_kernel);

    let samples = time_kernel(config.warmup, config.repeats, || {
        campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
            .expect("prepared campaign runs")
    });
    record("diagnosis_parallel", &mut kernels, samples, &mut on_kernel);

    let core_names: &[&str] = if config.quick {
        &["s298", "s344"]
    } else {
        &["s298", "s344", "s386"]
    };
    let cores: Vec<CoreModule> = core_names
        .iter()
        .map(|name| CoreModule::new(generate::benchmark(name)))
        .collect();
    let soc = Soc::single_chain("bench", cores).expect("bench SOC builds");
    let mut soc_spec = CampaignSpec::new(patterns, groups, partitions.min(4));
    soc_spec.num_faults = if config.quick { 10 } else { 50 };
    let samples = time_kernel(config.warmup, config.repeats, || {
        let mut accuracy = 0.0;
        for core in 0..soc.cores().len() {
            let prepared =
                PreparedCampaign::from_soc(&soc, core, &soc_spec).expect("bench SOC prepares");
            let localization = prepared
                .run_localization(Scheme::TWO_STEP_DEFAULT)
                .expect("bench SOC localizes");
            accuracy += localization.top1_accuracy;
        }
        accuracy
    });
    record("soc_sweep", &mut kernels, samples, &mut on_kernel);

    SuiteResult {
        version: FORMAT_VERSION,
        suite: config.suite.clone(),
        quick: config.quick,
        repeats: config.repeats as u64,
        warmup: config.warmup as u64,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(median: u64) -> KernelStats {
        KernelStats {
            median_ns: median,
            p95_ns: median + 10,
            iqr_ns: 5,
            samples: 5,
            dropped: 0,
            cutoff_ns: median + 20,
            dropped_ns: Vec::new(),
        }
    }

    fn result(kernels: &[(&str, u64)]) -> SuiteResult {
        SuiteResult {
            version: FORMAT_VERSION,
            suite: "diagnosis".into(),
            quick: false,
            repeats: 5,
            warmup: 1,
            kernels: kernels
                .iter()
                .map(|&(name, m)| (name.to_owned(), stats(m)))
                .collect(),
        }
    }

    #[test]
    fn stats_reject_outliers() {
        // Nine tight samples and one scheduler hiccup 100× larger.
        let mut samples = vec![100, 101, 99, 102, 100, 98, 103, 100, 101];
        samples.push(10_000);
        let s = stats_from_samples(&samples);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.samples, 9);
        assert!(s.median_ns <= 103, "median {} polluted", s.median_ns);
        assert!(s.p95_ns <= 103, "p95 {} polluted", s.p95_ns);
        // The gate documents its decision: the cutoff it applied and
        // the samples it rejected.
        assert!(s.cutoff_ns < 10_000, "cutoff {} let the hiccup in", s.cutoff_ns);
        assert_eq!(s.dropped_ns, vec![10_000]);
    }

    #[test]
    fn stats_of_single_sample() {
        let s = stats_from_samples(&[42]);
        assert_eq!(s.median_ns, 42);
        assert_eq!(s.p95_ns, 42);
        assert_eq!(s.iqr_ns, 0);
        assert_eq!((s.samples, s.dropped), (1, 0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(percentile(&sorted, 50), 20);
        assert_eq!(percentile(&sorted, 95), 40);
        assert_eq!(percentile(&sorted, 25), 10);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let original = result(&[("fault_sim", 1_000), ("misr_compaction", 2_000)]);
        let text = original.to_json();
        let parsed = SuiteResult::from_json(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(SuiteResult::from_json("not json").is_err());
        assert!(SuiteResult::from_json(r#"{"version":99,"suite":"x","kernels":{}}"#).is_err());
        assert!(SuiteResult::from_json(
            r#"{"version":1,"suite":"x","repeats":1,"warmup":0,"kernels":{}}"#
        )
        .is_err());
    }

    #[test]
    fn identical_runs_pass_comparison() {
        let run = result(&[("a", 100), ("b", 2_000)]);
        let comparison = compare(&run, &run.clone(), 0.5);
        assert!(comparison.passed());
        assert_eq!(comparison.compared, 2);
    }

    #[test]
    fn doubled_median_fails_comparison() {
        let baseline = result(&[("a", 1_000), ("b", 2_000)]);
        let mut slow = baseline.clone();
        slow.kernels.get_mut("a").unwrap().median_ns = 2_000;
        let comparison = compare(&slow, &baseline, 0.5);
        assert!(!comparison.passed());
        assert_eq!(comparison.regressions.len(), 1);
        assert_eq!(comparison.regressions[0].kernel, "a");
        assert!((comparison.regressions[0].ratio - 2.0).abs() < 1e-9);
        assert!(comparison.render(0.5).contains("REGRESSION a"));
    }

    #[test]
    fn missing_kernel_fails_comparison() {
        let baseline = result(&[("a", 100), ("b", 200)]);
        let current = result(&[("a", 100)]);
        let comparison = compare(&current, &baseline, 0.5);
        assert!(!comparison.passed());
        assert_eq!(comparison.missing, vec!["b".to_owned()]);
        // Extra kernels in the current run are fine.
        let comparison = compare(&baseline, &current, 0.5);
        assert!(comparison.passed());
    }

    #[test]
    fn quick_suite_runs_and_serializes() {
        let config = SuiteConfig {
            suite: "smoke".into(),
            quick: true,
            repeats: 1,
            warmup: 0,
        };
        let mut seen = Vec::new();
        let result = run_suite(&config, |name, _| seen.push(name.to_owned()));
        assert_eq!(result.kernels.len(), 9);
        assert!(seen.contains(&"diagnosis_serial".to_owned()));
        assert!(seen.contains(&"fault_sim_bitpar".to_owned()));
        assert!(seen.contains(&"misr_fused".to_owned()));
        for (name, k) in &result.kernels {
            assert!(k.samples >= 1, "kernel {name} lost all samples");
        }
        let parsed = SuiteResult::from_json(&result.to_json()).unwrap();
        assert_eq!(parsed, result);
        assert!(result.table().contains("fault_sim"));
    }
}
