//! Observability plumbing shared by the experiment binaries.
//!
//! Every table/figure binary accepts the same flags the `scanbist` CLI
//! does — `--trace`, `--trace-out <path>`, `--metrics-out <path>`, and
//! `--progress` — parsed here from the process arguments before the
//! binary's own positionals. [`ObsSession::start`] installs the
//! configuration process-wide; [`ObsSession::finish`] exports the
//! NDJSON stream / metrics snapshot and prints the span-tree summary.
//! With no flags given, observability stays disabled and the binary's
//! output is byte-identical to an uninstrumented build.

use scan_obs::ObsConfig;

/// An active observability session for one experiment binary.
#[must_use = "call finish() so exports are written"]
pub struct ObsSession {
    config: ObsConfig,
}

impl ObsSession {
    /// Parses observability flags out of `std::env::args()`, installs
    /// the resulting configuration, and returns the session plus the
    /// remaining (non-observability) arguments in order. `binary` names
    /// the default trace file, `trace_<binary>.ndjson`.
    pub fn start(binary: &str) -> (ObsSession, Vec<String>) {
        let (config, rest) = parse_env_args(binary, std::env::args().skip(1));
        scan_obs::init(&config);
        (ObsSession { config }, rest)
    }

    /// Stops recording and writes the requested exports. Failures are
    /// reported on stderr but never fail the experiment itself.
    pub fn finish(self) {
        if let Err(e) = scan_obs::finish(&self.config) {
            eprintln!("warning: could not write observability exports: {e}");
        }
    }
}

/// Splits observability flags from the rest of an argument list.
/// Exposed for tests; binaries use [`ObsSession::start`].
pub fn parse_env_args(
    binary: &str,
    args: impl Iterator<Item = String>,
) -> (ObsConfig, Vec<String>) {
    let mut config = ObsConfig::disabled();
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                config.trace = true;
                config.summary = true;
            }
            "--trace-out" => {
                config.trace = true;
                config.summary = true;
                config.trace_path = args.next().map(Into::into);
                if config.trace_path.is_none() {
                    eprintln!("warning: --trace-out needs a path; using the default");
                }
            }
            "--metrics-out" => {
                config.metrics = true;
                config.metrics_path = args.next().map(Into::into);
                if config.metrics_path.is_none() {
                    eprintln!("warning: --metrics-out needs a path; ignoring");
                    config.metrics = false;
                }
            }
            "--progress" => config.progress = true,
            _ => rest.push(arg),
        }
    }
    if config.trace && config.trace_path.is_none() {
        config.trace_path = Some(format!("trace_{binary}.ndjson").into());
    }
    (config, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(binary: &str, args: &[&str]) -> (ObsConfig, Vec<String>) {
        parse_env_args(binary, args.iter().map(ToString::to_string))
    }

    #[test]
    fn no_flags_is_disabled_and_transparent() {
        let (config, rest) = split("table1", &["results", "extra"]);
        assert!(!config.is_enabled());
        assert_eq!(rest, vec!["results".to_owned(), "extra".to_owned()]);
    }

    #[test]
    fn trace_defaults_the_stream_path() {
        let (config, rest) = split("table1", &["--trace"]);
        assert!(config.trace && config.summary);
        assert_eq!(
            config.trace_path.as_deref(),
            Some("trace_table1.ndjson".as_ref())
        );
        assert!(rest.is_empty());
    }

    #[test]
    fn explicit_paths_and_positionals_interleave() {
        let (config, rest) = split(
            "table3",
            &["out", "--metrics-out", "m.json", "--progress", "--trace-out", "t.ndjson"],
        );
        assert!(config.trace && config.metrics && config.progress);
        assert_eq!(config.metrics_path.as_deref(), Some("m.json".as_ref()));
        assert_eq!(config.trace_path.as_deref(), Some("t.ndjson".as_ref()));
        assert_eq!(rest, vec!["out".to_owned()]);
    }
}
