//! Observability plumbing shared by the experiment binaries.
//!
//! Every table/figure binary accepts the same flags the `scanbist` CLI
//! does — `--trace`, `--trace-out <path>`, `--metrics-out <path>`,
//! `--profile`, `--profile-out <path>`, `--progress`,
//! `--serve-metrics <addr>`, `--slo <slo.toml>`, and
//! `--flight-recorder <path>` — parsed here from the process arguments
//! before the binary's own positionals. [`ObsSession::start`] installs
//! the configuration process-wide, adopts the cross-process trace
//! context from `SCANBIST_TRACE_ID` / `SCANBIST_PARENT_SPAN` when one
//! is handed down (see `docs/OBSERVABILITY.md`), and starts the live
//! telemetry runtime (background sampler and `/metrics` endpoint) when
//! asked; [`ObsSession::finish`] stops telemetry, then exports the
//! NDJSON stream / metrics snapshot / collapsed-stack profile and
//! prints the span-tree summary. With no flags given, observability
//! stays disabled and the binary's output is byte-identical to an
//! uninstrumented build.
//!
//! `--help` / `-h` is also handled here, uniformly for all experiment
//! binaries: usage goes to *stderr* (stdout is reserved for the
//! machine-readable table/figure payload) and the process exits 0.

use scan_obs::ObsConfig;

/// The usage text shared by every experiment binary. Printed to stderr
/// by [`ObsSession::start`] on `--help` so stdout stays parseable.
#[must_use]
pub fn usage(binary: &str) -> String {
    format!(
        "usage: {binary} [ARGS] [--trace] [--trace-out <path>] [--metrics-out <path>]\n\
         \x20          [--profile] [--profile-out <path>] [--progress]\n\
         \x20          [--serve-metrics <addr>] [--slo <slo.toml>]\n\
         \x20          [--flight-recorder <path>]\n\
         Experiment binary from the scan-BIST workspace. The table/figure payload\n\
         goes to stdout; diagnostics, progress, and observability summaries go to\n\
         stderr. --serve-metrics serves live /metrics (Prometheus text),\n\
         /metrics.json, /alerts.json, and /healthz on <addr> for the run's\n\
         duration. --slo evaluates alert rules on every sampler tick;\n\
         --flight-recorder dumps a black-box NDJSON ring on panic.\n\
         See EXPERIMENTS.md for the binary's own arguments."
    )
}

/// An active observability session for one experiment binary.
#[must_use = "call finish() so exports are written"]
pub struct ObsSession {
    config: ObsConfig,
    telemetry: scan_obs::Telemetry,
}

impl ObsSession {
    /// Parses observability flags out of `std::env::args()`, installs
    /// the resulting configuration, adopts or creates the cross-process
    /// trace context, starts live telemetry when requested, and returns
    /// the session plus the remaining (non-observability) arguments in
    /// order. `binary` names the default trace file,
    /// `trace_<binary>.ndjson`, and the trace context's process.
    /// `--help` / `-h` anywhere in the arguments prints the shared
    /// usage text to stderr and exits 0 before any work happens.
    ///
    /// # Panics
    ///
    /// Panics deliberately when `SCANBIST_CRASH_EXPERIMENT` names this
    /// binary — the fault-injection hook `scripts/verify.sh` uses to
    /// exercise the flight recorder's crash dump path.
    pub fn start(binary: &str) -> (ObsSession, Vec<String>) {
        let (config, rest) = parse_env_args(binary, std::env::args().skip(1));
        if rest.iter().any(|a| a == "--help" || a == "-h") {
            eprintln!("{}", usage(binary));
            std::process::exit(0);
        }
        scan_obs::init(&config);
        if config.is_enabled() {
            scan_obs::context::init_from_env(binary);
        }
        let telemetry = match scan_obs::start_telemetry(&config) {
            Ok(telemetry) => telemetry,
            Err(e) => {
                eprintln!("error: could not start live telemetry: {e}");
                std::process::exit(2);
            }
        };
        // Fault-injection backdoor for the flight-recorder smoke test:
        // deliberately undocumented in the usage text. Firing *after*
        // telemetry is up means the recorder's panic hook is installed
        // and the ring exists, exactly like a mid-campaign crash.
        // An injected crash reads clearer as an explicit panic than as
        // a negated assert.
        #[allow(clippy::manual_assert)]
        if std::env::var("SCANBIST_CRASH_EXPERIMENT").as_deref() == Ok(binary) {
            panic!("injected crash in `{binary}` (SCANBIST_CRASH_EXPERIMENT)");
        }
        (ObsSession { config, telemetry }, rest)
    }

    /// Stops live telemetry and recording, then writes the requested
    /// exports. Failures are reported on stderr but never fail the
    /// experiment itself.
    pub fn finish(self) {
        self.telemetry.stop();
        if let Err(e) = scan_obs::finish(&self.config) {
            eprintln!("warning: could not write observability exports: {e}");
        }
    }
}

/// Splits observability flags from the rest of an argument list.
/// Exposed for tests; binaries use [`ObsSession::start`].
pub fn parse_env_args(
    binary: &str,
    args: impl Iterator<Item = String>,
) -> (ObsConfig, Vec<String>) {
    let mut config = ObsConfig::disabled();
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => {
                config.trace = true;
                config.summary = true;
            }
            "--trace-out" => {
                config.trace = true;
                config.summary = true;
                config.trace_path = args.next().map(Into::into);
                if config.trace_path.is_none() {
                    eprintln!("warning: --trace-out needs a path; using the default");
                }
            }
            "--metrics-out" => {
                config.metrics = true;
                config.metrics_path = args.next().map(Into::into);
                if config.metrics_path.is_none() {
                    eprintln!("warning: --metrics-out needs a path; ignoring");
                    config.metrics = false;
                }
            }
            "--profile" => config.profile = true,
            "--profile-out" => {
                config.profile = true;
                config.profile_path = args.next().map(Into::into);
                if config.profile_path.is_none() {
                    eprintln!("warning: --profile-out needs a path; printing to stderr only");
                }
            }
            "--progress" => config.progress = true,
            "--serve-metrics" => {
                config.serve_addr = args.next();
                if config.serve_addr.is_none() {
                    eprintln!("warning: --serve-metrics needs an address; ignoring");
                }
            }
            "--slo" => {
                config.slo_path = args.next().map(Into::into);
                if config.slo_path.is_none() {
                    eprintln!("warning: --slo needs a path; ignoring");
                }
            }
            "--flight-recorder" => {
                config.flight_path = args.next().map(Into::into);
                if config.flight_path.is_none() {
                    eprintln!("warning: --flight-recorder needs a path; ignoring");
                }
            }
            _ => rest.push(arg),
        }
    }
    if config.trace && config.trace_path.is_none() {
        config.trace_path = Some(format!("trace_{binary}.ndjson").into());
    }
    (config, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split(binary: &str, args: &[&str]) -> (ObsConfig, Vec<String>) {
        parse_env_args(binary, args.iter().map(ToString::to_string))
    }

    #[test]
    fn no_flags_is_disabled_and_transparent() {
        let (config, rest) = split("table1", &["results", "extra"]);
        assert!(!config.is_enabled());
        assert_eq!(rest, vec!["results".to_owned(), "extra".to_owned()]);
    }

    #[test]
    fn trace_defaults_the_stream_path() {
        let (config, rest) = split("table1", &["--trace"]);
        assert!(config.trace && config.summary);
        assert_eq!(
            config.trace_path.as_deref(),
            Some("trace_table1.ndjson".as_ref())
        );
        assert!(rest.is_empty());
    }

    #[test]
    fn explicit_paths_and_positionals_interleave() {
        let (config, rest) = split(
            "table3",
            &[
                "out",
                "--metrics-out",
                "m.json",
                "--progress",
                "--trace-out",
                "t.ndjson",
            ],
        );
        assert!(config.trace && config.metrics && config.progress);
        assert_eq!(config.metrics_path.as_deref(), Some("m.json".as_ref()));
        assert_eq!(config.trace_path.as_deref(), Some("t.ndjson".as_ref()));
        assert_eq!(rest, vec!["out".to_owned()]);
    }

    #[test]
    fn profile_flags_enable_profiling() {
        let (config, rest) = split("fig4", &["--profile"]);
        assert!(config.profile && config.profile_path.is_none());
        assert!(config.profiling() && rest.is_empty());

        let (config, _) = split("fig4", &["--profile-out", "p.folded"]);
        assert!(config.profile);
        assert_eq!(config.profile_path.as_deref(), Some("p.folded".as_ref()));
    }

    #[test]
    fn serve_metrics_flag_sets_the_address_and_sampling() {
        let (config, rest) = split("table1", &["--serve-metrics", "127.0.0.1:0", "out"]);
        assert_eq!(config.serve_addr.as_deref(), Some("127.0.0.1:0"));
        assert!(config.sampling() && config.is_enabled());
        assert_eq!(rest, vec!["out".to_owned()]);

        let (config, _) = split("table1", &["--serve-metrics"]);
        assert!(config.serve_addr.is_none() && !config.is_enabled());
    }

    #[test]
    fn slo_and_flight_recorder_flags_set_paths_and_sampling() {
        let (config, rest) = split(
            "table1",
            &["--slo", "slo.toml", "--flight-recorder", "flight.ndjson", "out"],
        );
        assert_eq!(config.slo_path.as_deref(), Some("slo.toml".as_ref()));
        assert_eq!(
            config.flight_path.as_deref(),
            Some("flight.ndjson".as_ref())
        );
        assert!(config.sampling() && config.is_enabled());
        assert_eq!(rest, vec!["out".to_owned()]);

        let (config, _) = split("table1", &["--slo"]);
        assert!(config.slo_path.is_none() && !config.is_enabled());
        let (config, _) = split("table1", &["--flight-recorder"]);
        assert!(config.flight_path.is_none() && !config.is_enabled());
    }

    #[test]
    fn help_flag_stays_in_rest_for_start_to_handle() {
        let (config, rest) = split("table1", &["--help"]);
        assert!(!config.is_enabled());
        assert_eq!(rest, vec!["--help".to_owned()]);
    }

    #[test]
    fn usage_names_the_binary_and_shared_flags() {
        let text = usage("table1");
        assert!(text.starts_with("usage: table1"));
        assert!(text.contains("--profile-out") && text.contains("--metrics-out"));
    }
}
