//! Ablation: response compactor choice vs aliasing.
//!
//! Diagnosis needs one pass/fail verdict per BIST session; the paper
//! (like \[5\]) uses a MISR, whose aliasing probability is ~2^−16 and
//! error-pattern independent. Counting compactors are cheaper but alias
//! systematically on the *clustered, polarity-balanced* error patterns
//! real faults produce. This experiment replays the masked session
//! streams of real faults through all three compactors and counts
//! sessions whose failure goes unnoticed.

use scan_bench::{render_table, ObsSession};
use scan_bist::compactor::{OnesCounter, ResponseCompactor, TransitionCounter};
use scan_bist::{Misr, Scheme};
use scan_diagnosis::{lfsr_patterns, BistConfig, ChainLayout, DiagnosisPlan};
use scan_netlist::{generate, ScanView};
use scan_sim::FaultSimulator;

fn main() {
    let (obs, _rest) = ObsSession::start("compactors");
    let circuit = generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 128usize;
    let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
    let faults = fsim.sample_detected_faults(200, 2003);
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        num_patterns,
        &BistConfig::new(4, 2, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");

    println!(
        "Compactor aliasing — s953, {} faults, {} sessions each (2 partitions × 4 groups)",
        faults.len(),
        plan.partitions().len() * 4
    );
    println!();

    let mut failing_sessions = 0usize;
    let mut missed = [0usize; 3]; // misr, ones, transitions
    for fault in &faults {
        let golden = fsim.golden();
        let faulty = fsim.response(fault);
        for partition in plan.partitions() {
            for g in 0..partition.num_groups() {
                // Reference truth: does the masked stream differ at all?
                let mut differs = false;
                let mut misr_g = Misr::new(16).expect("degree supported");
                let mut misr_f = Misr::new(16).expect("degree supported");
                let mut ones_g = OnesCounter::new();
                let mut ones_f = OnesCounter::new();
                let mut tr_g = TransitionCounter::new();
                let mut tr_f = TransitionCounter::new();
                for t in 0..num_patterns {
                    for pos in 0..view.len() {
                        if partition.group_of(pos) != g {
                            continue;
                        }
                        let gb = golden.bit(pos, t);
                        let fb = faulty.bit(pos, t);
                        differs |= gb != fb;
                        misr_g.clock(u64::from(gb));
                        misr_f.clock(u64::from(fb));
                        ones_g.clock(u64::from(gb));
                        ones_f.clock(u64::from(fb));
                        tr_g.clock(u64::from(gb));
                        tr_f.clock(u64::from(fb));
                    }
                }
                if differs {
                    failing_sessions += 1;
                    if ResponseCompactor::signature(&misr_g)
                        == ResponseCompactor::signature(&misr_f)
                    {
                        missed[0] += 1;
                    }
                    if ones_g.signature() == ones_f.signature() {
                        missed[1] += 1;
                    }
                    if tr_g.signature() == tr_f.signature() {
                        missed[2] += 1;
                    }
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = [
        ("MISR (16-bit)", missed[0]),
        ("ones counter", missed[1]),
        ("transition counter", missed[2]),
    ]
    .iter()
    .map(|(name, m)| {
        vec![
            (*name).to_owned(),
            m.to_string(),
            format!("{:.3}%", 100.0 * *m as f64 / failing_sessions.max(1) as f64),
        ]
    })
    .collect();
    println!("{failing_sessions} truly failing sessions observed");
    println!();
    println!(
        "{}",
        render_table(&["compactor", "aliased sessions", "aliasing rate"], &rows)
    );
    obs.finish();
}
