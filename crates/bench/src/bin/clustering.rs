//! Figure 2's premise, measured: errors caused by a fault are confined
//! to the fault's output cone, whose observation points occupy a narrow
//! band of the scan chain. This binary quantifies the clustering both
//! structurally (cone spans) and dynamically (observed failing-cell
//! spans over injected faults).

use scan_bench::ObsSession;
use scan_netlist::stats::ClusteringStats;
use scan_netlist::{generate, ScanView};
use scan_sim::FaultSimulator;

fn main() {
    let (obs, _rest) = ObsSession::start("clustering");
    println!("Fault-cone clustering statistics (Fig. 2 premise)");
    println!();
    println!(
        "{:<10} {:>6} {:>14} {:>12} {:>14} {:>16}",
        "circuit", "cells", "mean cone", "mean span", "span fraction", "observed span"
    );
    for name in ["s953", "s5378", "s9234", "s13207", "s15850", "s38584"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let structural = ClusteringStats::compute(&circuit, &view);

        // Dynamic check: mean span of actually failing cells over a
        // fault sample.
        let patterns = scan_diagnosis::lfsr_patterns(&circuit, 64, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
        let faults = fsim.sample_detected_faults(100, 2003);
        let mut spans = 0usize;
        let mut counted = 0usize;
        for fault in &faults {
            let failing = fsim.error_map(fault).failing_positions();
            if let (Some(min), Some(max)) = (failing.first(), failing.iter().last()) {
                spans += max - min + 1;
                counted += 1;
            }
        }
        let observed = if counted == 0 {
            0.0
        } else {
            spans as f64 / counted as f64 / view.len() as f64
        };
        println!(
            "{:<10} {:>6} {:>14.1} {:>12.1} {:>14.3} {:>16.3}",
            name,
            view.len(),
            structural.mean_cone_size,
            structural.mean_span,
            structural.mean_span_fraction,
            observed
        );
    }
    println!();
    println!("span fraction = mean structural cone span / chain length");
    println!("observed span = mean failing-cell span over 100 faults / chain length");
    obs.finish();
}
