//! Pattern-source comparison: pseudorandom BIST patterns vs
//! deterministic ATPG, and the deterministic top-off a hybrid flow
//! would store.
//!
//! For each circuit: the coverage of 128 pseudorandom patterns, the
//! coverage and pattern count of pure PODEM with fault dropping, and
//! the number of deterministic cubes needed to top off the
//! random-resistant faults.

use scan_atpg::{run_atpg, Podem, PodemLimits, PodemResult};
use scan_bench::{render_table, ObsSession};
use scan_diagnosis::lfsr_patterns;
use scan_netlist::{generate, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse};

fn main() {
    let (obs, _rest) = ObsSession::start("topoff");
    println!("Pseudorandom vs deterministic pattern sources (collapsed stuck-at faults)");
    println!();
    let mut rows = Vec::new();
    for name in ["s27", "s298", "s386", "s953"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let universe = FaultUniverse::collapsed(&circuit);

        // Pseudorandom BIST session.
        let patterns = lfsr_patterns(&circuit, 128, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
        let random_detected: Vec<bool> = universe
            .faults()
            .iter()
            .map(|f| fsim.is_detected(f))
            .collect();
        let random_cov =
            random_detected.iter().filter(|&&d| d).count() as f64 / universe.len().max(1) as f64;

        // Pure deterministic ATPG.
        let atpg = run_atpg(&circuit, &PodemLimits::default(), 1);

        // Top-off: PODEM only for the faults the random session missed.
        let mut podem = Podem::new(&circuit);
        let mut topoff_cubes = 0usize;
        let mut still_undetected = 0usize;
        for (fault, &hit) in universe.faults().iter().zip(&random_detected) {
            if hit || !scan_sim::site_has_fanout(&circuit, fault) {
                continue;
            }
            match podem.generate(fault, &PodemLimits::default()) {
                PodemResult::Test(_) => topoff_cubes += 1,
                PodemResult::Untestable => {}
                PodemResult::Aborted => still_undetected += 1,
            }
        }

        rows.push(vec![
            name.to_owned(),
            universe.len().to_string(),
            format!("{:.1}%", random_cov * 100.0),
            format!("{:.1}%", atpg.coverage() * 100.0),
            atpg.patterns.len().to_string(),
            atpg.redundant.to_string(),
            topoff_cubes.to_string(),
            still_undetected.to_string(),
        ]);
        eprintln!("  {name}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "faults",
                "random cov (128)",
                "ATPG cov",
                "ATPG patterns",
                "redundant",
                "top-off cubes",
                "aborted",
            ],
            &rows
        )
    );
    println!();
    println!("top-off cubes = deterministic tests for faults the 128 pseudorandom patterns miss");
    obs.finish();
}
