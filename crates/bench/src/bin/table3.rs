//! Table 3: SOC diagnostic resolution with a single meta scan chain.
//! SOC 1 stitches the six largest ISCAS-89 cores onto one TestRail meta
//! chain; for each core assumed faulty, 500 stuck-at faults are
//! injected and diagnosed with 32 groups per partition and 8
//! partitions.

use scan_bench::{fmt_dr, render_table, table3_spec, ObsSession, PAPER_SCHEMES};
use scan_diagnosis::soc_diag::diagnose_each_core_parallel;
use scan_soc::d695;

fn main() {
    let (obs, _rest) = ObsSession::start("table3");
    let spec = table3_spec();
    let soc = d695::soc1().expect("SOC 1 builds");
    println!(
        "Table 3 — SOC 1 (single meta chain of {} cells), {} groups, {} partitions, {} faults/core",
        soc.total_positions(),
        spec.groups,
        spec.partitions,
        spec.num_faults
    );
    println!();
    let rows_data =
        diagnose_each_core_parallel(&soc, &spec, &PAPER_SCHEMES, 0).expect("SOC campaign runs");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            let random = &row.reports[0];
            let two_step = &row.reports[1];
            vec![
                row.core.clone(),
                fmt_dr(random.dr),
                fmt_dr(two_step.dr),
                fmt_dr(random.dr_pruned),
                fmt_dr(two_step.dr_pruned),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "failing core",
                "DR random",
                "DR two-step",
                "DR random (pruned)",
                "DR two-step (pruned)",
            ],
            &rows
        )
    );
    obs.finish();
}
