//! Figure 5: the number of partitions needed to reach a diagnostic
//! resolution of 0.5 (without pruning) on SOC 1 with a single meta scan
//! chain, for random-selection vs two-step partitioning, per failing
//! core. Fewer partitions means shorter diagnosis time.

use scan_bench::{render_table, table3_spec, ObsSession, PAPER_SCHEMES};
use scan_diagnosis::soc_diag::diagnose_each_core_parallel;
use scan_soc::d695;

const TARGET_DR: f64 = 0.5;
const MAX_PARTITIONS: usize = 16;

fn main() {
    let (obs, _rest) = ObsSession::start("figure5");
    let mut spec = table3_spec();
    spec.partitions = MAX_PARTITIONS;
    let soc = d695::soc1().expect("SOC 1 builds");
    println!(
        "Figure 5 — partitions to reach DR ≤ {TARGET_DR} (no pruning), SOC 1, {} groups, up to {MAX_PARTITIONS} partitions",
        spec.groups
    );
    println!();
    let rows_data =
        diagnose_each_core_parallel(&soc, &spec, &PAPER_SCHEMES, 0).expect("SOC campaign runs");
    let fmt = |n: Option<usize>| n.map_or_else(|| format!(">{MAX_PARTITIONS}"), |v| v.to_string());
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                row.core.clone(),
                fmt(row.reports[0].partitions_to_reach(TARGET_DR)),
                fmt(row.reports[1].partitions_to_reach(TARGET_DR)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["failing core", "random-selection", "two-step"], &rows)
    );
    obs.finish();
}
