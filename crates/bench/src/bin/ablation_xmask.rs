//! Ablation: unknown (X) value masking vs diagnostic resolution.
//!
//! Real scan-BIST masks X-producing cells (uninitialized memories,
//! multi-cycle paths) before the compactor; their errors are invisible
//! and diagnosis loses both evidence and suspects. This sweep measures
//! how gracefully the schemes degrade as the masked fraction grows.

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{CampaignSpec, PreparedCampaign};
use scan_netlist::generate;

fn main() {
    let (obs, _rest) = ObsSession::start("ablation_xmask");
    let circuit = generate::benchmark("s5378");
    println!("Ablation — X-masked cell fraction on s5378, 8 groups, 8 partitions, 300 faults");
    println!();
    let mut rows = Vec::new();
    for fraction in [0.0f64, 0.02, 0.05, 0.10, 0.20] {
        let mut spec = CampaignSpec::new(128, 8, 8);
        spec.num_faults = 300;
        spec.x_mask_fraction = fraction;
        let campaign = PreparedCampaign::from_circuit(&circuit, &spec).expect("campaign prepares");
        let masked = campaign.masked_cells().len();
        let random = campaign
            .run_parallel(Scheme::RandomSelection, 0)
            .expect("random run");
        let two_step = campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
            .expect("two-step run");
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            masked.to_string(),
            fmt_dr(random.dr),
            fmt_dr(two_step.dr),
            format!("{:.1}", two_step.mean_actual),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "X fraction",
                "masked cells",
                "DR random",
                "DR two-step",
                "mean observable fails",
            ],
            &rows
        )
    );
    obs.finish();
}
