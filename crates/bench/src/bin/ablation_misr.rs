//! Ablation: MISR width vs signature aliasing.
//!
//! Group pass/fail verdicts come from comparing real MISR signatures, so
//! a narrow register can alias: a failing group's error signature
//! cancels to zero and its true failing cells are lost from the
//! candidate set. This sweep quantifies the aliasing rate (lost true
//! cells) and its DR impact as the MISR width grows — motivating the
//! 16-bit register the experiments use.

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{CampaignSpec, PreparedCampaign};
use scan_netlist::generate;

fn main() {
    let (obs, _rest) = ObsSession::start("ablation_misr");
    let circuit = generate::benchmark("s5378");
    println!("Ablation — MISR width on s5378, two-step, 8 groups, 4 partitions, 300 faults");
    println!();
    let mut rows = Vec::new();
    for degree in [4u32, 6, 8, 12, 16, 24, 32] {
        let mut spec = CampaignSpec::new(128, 8, 4);
        spec.num_faults = 300;
        spec.misr_degree = degree;
        let campaign = PreparedCampaign::from_circuit(&circuit, &spec).expect("campaign prepares");
        let report = campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
            .expect("two-step run");
        rows.push(vec![
            degree.to_string(),
            fmt_dr(report.dr),
            report.lost_cells.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["MISR width", "DR two-step", "lost true cells"], &rows)
    );
    println!();
    println!(
        "lost true cells = failing cells dropped from the candidate set by signature aliasing"
    );
    obs.finish();
}
