//! Figure 3: the paper's worked example on s953 — a single stuck-at
//! fault observed under one pattern produces two clustered failing scan
//! cells; a single 4-group interval-based partition isolates them far
//! better than a single random-selection partition.
//!
//! The binary reproduces the figure's artifacts: the true failing-cell
//! bitmap, each scheme's groups, and the resulting suspect counts.

use scan_bench::ObsSession;
use scan_bist::Scheme;
use scan_diagnosis::{diagnose, BistConfig, ChainLayout, DiagnosisPlan};
use scan_netlist::{generate, ScanView};
use scan_sim::{ErrorMap, FaultSimulator};

fn main() {
    let (obs, _rest) = ObsSession::start("figure3");
    let circuit = generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let patterns = scan_diagnosis::lfsr_patterns(&circuit, 200, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");

    // Find a fault and a detecting pattern with a small cluster of
    // failing cells, like the paper's example (2 failing cells). The
    // paper's instance has the cluster inside one interval, so require
    // that of the interval partition we are about to show.
    let interval_plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        200,
        &BistConfig::new(4, 1, Scheme::IntervalBased),
    )
    .expect("plan builds");
    let interval_partition = &interval_plan.partitions()[0];
    let sample = fsim.sample_detected_faults(200, 2003);
    let mut chosen: Option<(scan_sim::Fault, usize, Vec<usize>)> = None;
    'outer: for fault in &sample {
        let errors = fsim.error_map(fault);
        for pattern in 0..patterns_detecting(&errors) {
            let cells: Vec<usize> = (0..view.len())
                .filter(|&pos| errors.bit(pos, pattern))
                .collect();
            // The paper's example has two *adjacent* failing cells — the
            // clustered case Fig. 2 predicts — falling into a single
            // interval.
            if cells.len() == 2
                && cells[1] - cells[0] <= 3
                && interval_partition.group_of(cells[0]) == interval_partition.group_of(cells[1])
            {
                chosen = Some((*fault, pattern, cells));
                break 'outer;
            }
        }
    }
    let (fault, pattern, failing) = chosen.expect("an example fault exists");
    println!(
        "Figure 3 — s953 ({} observation positions), fault {}, pattern {}",
        view.len(),
        fault.describe(&circuit),
        pattern
    );
    println!(
        "True failing scan cells: {}",
        failing
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("{}", bitmap(view.len(), &failing));
    println!();

    let bits: Vec<(usize, usize)> = failing.iter().map(|&pos| (pos, pattern)).collect();
    for scheme in [Scheme::IntervalBased, Scheme::RandomSelection] {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            200,
            &BistConfig::new(4, 1, scheme),
        )
        .expect("plan builds");
        let outcome = plan.analyze(bits.iter().copied());
        let diag = diagnose(&plan, &outcome);
        println!("{} partitioning:", scheme.name());
        let partition = &plan.partitions()[0];
        for g in 0..partition.num_groups() {
            let members: Vec<usize> = partition.members(g).collect();
            let span = if partition.is_interval() {
                format!("{}-{}", members[0], members[members.len() - 1])
            } else {
                members
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let verdict = if outcome.failed(0, g) { "FAIL" } else { "pass" };
            println!("  group {g} [{verdict}]: {span}");
        }
        println!("  suspect failing scan cells: {}", diag.num_candidates());
        println!();
    }
    obs.finish();
}

fn patterns_detecting(errors: &ErrorMap) -> usize {
    errors.num_patterns()
}

fn bitmap(len: usize, failing: &[usize]) -> String {
    (0..len)
        .map(|pos| if failing.contains(&pos) { '1' } else { '0' })
        .collect()
}
