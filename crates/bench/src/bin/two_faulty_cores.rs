//! Extension experiment: two simultaneously faulty cores.
//!
//! The paper assumes a spot defect confined to one core; this
//! experiment stresses that assumption with defects in *two* cores at
//! once on SOC 1 and asks (a) whether candidate cells still confine to
//! the two faulty cores' chain segments, and (b) whether density-based
//! localization still ranks both faulty cores on top (top-2 accuracy).

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{diagnose, BistConfig, ChainLayout, DiagnosisPlan, DrAccumulator};
use scan_sim::FaultSimulator;
use scan_soc::d695;

fn main() {
    let (obs, _rest) = ObsSession::start("two_faulty_cores");
    let soc = d695::soc1().expect("SOC 1 builds");
    let num_patterns = 128usize;
    let groups = 32u16;
    let partitions = 8usize;
    let cases = 100usize;
    println!(
        "Two faulty cores — SOC 1, {groups} groups, {partitions} partitions, {cases} fault pairs per core pair"
    );
    println!();

    let layout = ChainLayout::from_soc(&soc);
    let core_of_cell: Vec<u32> = soc.layout().into_iter().map(|(c, _, _)| c.core).collect();
    let core_sizes: Vec<usize> = soc
        .cores()
        .iter()
        .map(scan_soc::CoreModule::num_positions)
        .collect();

    // Precompute per-core fault evidence (error bits in global ids).
    let mut per_core: Vec<Vec<Vec<(usize, usize)>>> = Vec::new();
    for (index, core) in soc.cores().iter().enumerate() {
        let seed = 0xACE1u64.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let patterns = scan_diagnosis::lfsr_patterns(core.netlist(), num_patterns, seed);
        let fsim =
            FaultSimulator::new(core.netlist(), core.view(), &patterns).expect("shapes match");
        let faults = fsim.sample_detected_faults(cases, 2003);
        let mut local_to_global = vec![usize::MAX; core.view().len()];
        for (global, (cell, _, _)) in soc.layout().into_iter().enumerate() {
            if cell.core as usize == index {
                local_to_global[cell.local as usize] = global;
            }
        }
        per_core.push(
            faults
                .iter()
                .map(|f| {
                    fsim.error_map(f)
                        .iter_bits()
                        .map(|(pos, pat)| (local_to_global[pos], pat))
                        .collect()
                })
                .collect(),
        );
        eprintln!("  prepared {}", core.name());
    }

    let mut rows = Vec::new();
    for scheme in [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT] {
        let plan = DiagnosisPlan::new(
            layout.clone(),
            num_patterns,
            &BistConfig::new(groups, partitions, scheme),
        )
        .expect("plan builds");
        // Pair adjacent cores: (0,3), (1,4), (2,5).
        for (a, b) in [(0usize, 3usize), (1, 4), (2, 5)] {
            let mut acc = DrAccumulator::new();
            let mut top2_hits = 0usize;
            let n_cases = per_core[a].len().min(per_core[b].len());
            for (bits_a, bits_b) in per_core[a].iter().zip(&per_core[b]) {
                let bits: Vec<(usize, usize)> = bits_a.iter().chain(bits_b).copied().collect();
                let actual: std::collections::HashSet<usize> =
                    bits.iter().map(|&(c, _)| c).collect();
                let outcome = plan.analyze(bits.iter().copied());
                let diag = diagnose(&plan, &outcome);
                acc.add(diag.num_candidates(), actual.len());
                // Density ranking, top-2.
                let mut density = vec![0usize; core_sizes.len()];
                for cell in diag.candidates().iter() {
                    density[core_of_cell[cell] as usize] += 1;
                }
                let scores: Vec<f64> = density
                    .iter()
                    .zip(&core_sizes)
                    .map(|(&d, &s)| d as f64 / s.max(1) as f64)
                    .collect();
                let mut order: Vec<usize> = (0..scores.len()).collect();
                order.sort_by(|&x, &y| scores[y].total_cmp(&scores[x]));
                let top2: std::collections::HashSet<usize> =
                    order.iter().take(2).copied().collect();
                if top2.contains(&a) && top2.contains(&b) {
                    top2_hits += 1;
                }
            }
            rows.push(vec![
                scheme.name().to_owned(),
                format!("{} + {}", soc.cores()[a].name(), soc.cores()[b].name()),
                fmt_dr(acc.dr()),
                format!("{:.1}%", 100.0 * top2_hits as f64 / n_cases as f64),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["scheme", "faulty cores", "DR", "top-2 localization"],
            &rows
        )
    );
    obs.finish();
}
