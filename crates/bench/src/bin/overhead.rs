//! Hardware cost of the selection logic: the paper's claim that
//! two-step partitioning needs "only two additional registers" over the
//! classical random-selection hardware, quantified per experiment
//! configuration.

use scan_bench::{render_table, ObsSession};
use scan_bist::overhead::{
    random_selection_cost, two_step_cost, two_step_overhead, SelectionHardwareSpec,
};
use scan_bist::seed::length_bits;

fn main() {
    let (obs, _rest) = ObsSession::start("overhead");
    println!("Selection hardware cost (Fig. 1 block diagram, gate-equivalent estimates)");
    println!();
    let configs = [
        ("s953 (T1)", 52usize, 200usize, 4u16),
        ("s5378", 228, 128, 8),
        ("s38584 (T2)", 1730, 128, 16),
        ("SOC 1 (T3)", 7244, 128, 32),
        ("SOC 2 (T4)", 942, 128, 8),
    ];
    let mut rows = Vec::new();
    for (label, chain_len, patterns, groups) in configs {
        let spec = SelectionHardwareSpec {
            chain_len,
            num_patterns: patterns,
            groups,
            lfsr_degree: 16,
            length_bits: length_bits(chain_len, groups, 16),
        };
        let base = random_selection_cost(&spec);
        let two = two_step_cost(&spec);
        let (delta, frac) = two_step_overhead(&spec);
        rows.push(vec![
            label.to_owned(),
            format!("{} FF + {} gates", base.flip_flops, base.gates),
            format!("{} FF + {} gates", two.flip_flops, two.gates),
            format!("+{} FF, +{} gates", delta.flip_flops, delta.gates),
            format!("{:.1}%", frac * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "configuration",
                "random-selection HW",
                "two-step HW",
                "two-step delta",
                "area overhead",
            ],
            &rows
        )
    );
    println!();
    println!("delta = Shift Counter 2 + Test Counter 2 + zero-detect logic (the paper's \"two additional registers\")");
    obs.finish();
}
