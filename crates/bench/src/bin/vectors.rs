//! Extension experiment: failing test *vector* identification — the
//! time-domain companion scheme of the paper's reference \[4\] (Liu,
//! Chakrabarty & Gössel, DATE 2002), reproduced on the same fault
//! evidence as the failing-cell experiments.
//!
//! Sessions mask whole patterns; partitions group pattern indices;
//! intersecting failing groups identifies the failing vectors. The
//! resolution metric mirrors DR with vectors in place of cells.

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::vector_diag::{actual_failing_vectors, VectorDiagnosisPlan};
use scan_diagnosis::{lfsr_patterns, ChainLayout, DrAccumulator, ResponseModel};
use scan_netlist::{generate, ScanView};
use scan_sim::FaultSimulator;

fn main() {
    let (obs, _rest) = ObsSession::start("vectors");
    println!(
        "Failing-vector identification — 128 patterns, 8 pattern-groups, 4 partitions, 300 faults"
    );
    println!();
    let mut rows = Vec::new();
    for name in ["s953", "s5378", "s9234"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let patterns = lfsr_patterns(&circuit, 128, 0xACE1);
        let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
        let faults = fsim.sample_detected_faults(300, 2003);

        let mut drs = Vec::new();
        for scheme in [
            Scheme::IntervalBased,
            Scheme::RandomSelection,
            Scheme::TWO_STEP_DEFAULT,
        ] {
            let model = ResponseModel::new(ChainLayout::single_chain(view.len()), 128, 16)
                .expect("model builds");
            let plan = VectorDiagnosisPlan::new(model, 8, 4, scheme, 16, 1).expect("plan builds");
            let mut acc = DrAccumulator::new();
            for fault in &faults {
                let errors = fsim.error_map(fault);
                let bits: Vec<(usize, usize)> = errors.iter_bits().collect();
                let outcome = plan.analyze(bits.iter().copied());
                let candidates = plan.diagnose(&outcome);
                let actual = actual_failing_vectors(128, bits.iter().copied());
                acc.add(candidates.len(), actual.len());
            }
            drs.push(acc.dr());
        }
        rows.push(vec![
            name.to_owned(),
            fmt_dr(drs[0]),
            fmt_dr(drs[1]),
            fmt_dr(drs[2]),
        ]);
        eprintln!("  {name}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "vector-DR interval",
                "vector-DR random",
                "vector-DR two-step",
            ],
            &rows
        )
    );
    println!();
    println!(
        "vector-DR = (Σ candidate vectors − Σ actual failing vectors) / Σ actual failing vectors"
    );
    obs.finish();
}
