//! Orchestrator: runs every table, figure, and extension binary and
//! collects their outputs under `results/`.
//!
//! Experiments are independent subprocesses, so they are fanned out
//! across a small worker pool (capped at half the available cores so
//! each experiment's own `run_parallel` sharding still has room).
//! Results are reported in the fixed `EXPERIMENTS` order regardless of
//! completion order.
//!
//! ```sh
//! cargo run --release -p scan-bench --bin all_experiments [out_dir]
//! ```
//!
//! With `--trace` / `--metrics-out <path>` / `--progress` the
//! orchestrator records its own spans and also forwards matching flags
//! to the observability-aware children ([`OBS_AWARE`]), which then drop
//! `trace_<name>.ndjson` / `metrics_<name>.json` next to their `.txt`
//! results in `out_dir`. The orchestrator's trace context is handed to
//! each child via `SCANBIST_TRACE_ID` / `SCANBIST_PARENT_SPAN`, so the
//! per-child NDJSON streams join into one cross-process trace tree
//! (`obs-check --join results/trace_*.ndjson`). With `--flight-recorder
//! <path>` the orchestrator also arms a per-child black box
//! (`flight_<name>.ndjson` in `out_dir`): a worker that panics leaves a
//! dump that joins the same trace tree.
//!
//! `--only <a,b,…>` restricts the run to a comma-separated subset of
//! the experiment names — handy for smoke tests and trace-join checks.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use scan_bench::ObsSession;

/// Every experiment binary, in reporting order.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "figure3",
    "figure5",
    "clustering",
    "ablation_ordering",
    "ablation_misr",
    "ablation_interval_count",
    "ablation_xmask",
    "ablation_chain_mask",
    "multifault",
    "noise_sweep",
    "vectors",
    "windows",
    "adaptive_compare",
    "dictionary",
    "localization",
    "two_faulty_cores",
    "overhead",
    "compactors",
    "coverage",
    "weighted",
    "topoff",
    "diagnosis_time",
    "chain_defects",
];

/// Experiment binaries that understand the observability flags and can
/// emit their own trace/metrics files.
const OBS_AWARE: &[&str] = &["table1", "table2", "table3", "table4"];

enum Outcome {
    Ok(PathBuf),
    Failed(String),
}

fn main() {
    let (obs, rest) = ObsSession::start("all_experiments");
    let forward_trace = scan_obs::registry::trace_enabled();
    let forward_metrics = scan_obs::registry::metrics_enabled();
    let forward_progress = scan_obs::registry::progress_enabled();
    let forward_flight = scan_obs::recorder::is_installed();
    let context = scan_obs::context::current();
    let mut out_dir = PathBuf::from("results");
    let mut only: Option<Vec<String>> = None;
    let mut rest_iter = rest.iter();
    while let Some(arg) = rest_iter.next() {
        match arg.as_str() {
            "--only" => {
                let Some(list) = rest_iter.next() else {
                    eprintln!("error: --only needs a comma-separated experiment list");
                    std::process::exit(2);
                };
                only = Some(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(ToOwned::to_owned)
                        .collect(),
                );
            }
            other => out_dir = PathBuf::from(other),
        }
    }
    let experiments: Vec<&str> = match &only {
        Some(names) => {
            for name in names {
                if !EXPERIMENTS.contains(&name.as_str()) {
                    eprintln!("error: unknown experiment `{name}` in --only");
                    std::process::exit(2);
                }
            }
            EXPERIMENTS
                .iter()
                .copied()
                .filter(|e| names.iter().any(|n| n == e))
                .collect()
        }
        None => EXPERIMENTS.to_vec(),
    };
    if experiments.is_empty() {
        eprintln!("error: --only selected no experiments");
        std::process::exit(2);
    }
    std::fs::create_dir_all(&out_dir).expect("create results directory");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("binary directory")
        .to_path_buf();
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get() / 2)
        .clamp(1, experiments.len());
    eprintln!(
        "running {} experiments on {workers} worker(s)…",
        experiments.len()
    );

    let outcomes: Vec<Mutex<Option<Outcome>>> =
        experiments.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(name) = experiments.get(index) else {
                    break;
                };
                eprintln!("running {name}…");
                let _span = scan_obs::span!("experiment[{}]", name);
                let mut command = Command::new(exe_dir.join(name));
                if OBS_AWARE.contains(name) {
                    if forward_trace {
                        command.arg("--trace-out");
                        command.arg(out_dir.join(format!("trace_{name}.ndjson")));
                    }
                    if forward_metrics {
                        command.arg("--metrics-out");
                        command.arg(out_dir.join(format!("metrics_{name}.json")));
                    }
                    if forward_progress {
                        command.arg("--progress");
                    }
                    if forward_flight {
                        // A crashing worker then leaves a black-box
                        // dump that joins this orchestrator's trace via
                        // the handed-down context (`obs-check --join`).
                        command.arg("--flight-recorder");
                        command.arg(out_dir.join(format!("flight_{name}.ndjson")));
                    }
                    if let Some(ctx) = &context {
                        // The child's parent span is the orchestrator
                        // span wrapping this subprocess, so its stream
                        // joins the cross-process trace tree there.
                        for (key, value) in ctx.child_env(&format!("experiment[{name}]")) {
                            command.env(key, value);
                        }
                    }
                }
                let outcome = match command.output() {
                    Ok(output) if output.status.success() => {
                        scan_obs::metrics::incr("experiments.ok");
                        let path = out_dir.join(format!("{name}.txt"));
                        std::fs::write(&path, &output.stdout).expect("write result file");
                        Outcome::Ok(path)
                    }
                    Ok(output) => {
                        scan_obs::metrics::incr("experiments.failed");
                        Outcome::Failed(format!("status {}", output.status))
                    }
                    Err(e) => {
                        scan_obs::metrics::incr("experiments.failed");
                        Outcome::Failed(format!(
                        "could not run ({e}) — build with `cargo build --release -p scan-bench` first"
                    ))
                    }
                };
                *outcomes[index].lock().expect("outcome slot") = Some(outcome);
                let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                scan_obs::progress::tick("experiments", done, experiments.len());
                }
                // Fold this worker's shard before the scope join: the
                // TLS-drop merge can race the parent's export snapshot.
                scan_obs::flush_thread();
            });
        }
    });

    let mut failures = Vec::new();
    for (name, slot) in experiments.iter().zip(&outcomes) {
        match slot.lock().expect("outcome slot").take() {
            Some(Outcome::Ok(path)) => println!("{name}: ok → {}", path.display()),
            Some(Outcome::Failed(why)) => {
                failures.push(*name);
                println!("{name}: FAILED ({why})");
            }
            None => unreachable!("every experiment gets an outcome"),
        }
    }
    println!();
    let failed = failures.len();
    if failures.is_empty() {
        println!(
            "all {} experiments completed into {}",
            experiments.len(),
            out_dir.display()
        );
    } else {
        println!("{failed} experiment(s) failed: {failures:?}");
    }
    obs.finish();
    if failed > 0 {
        std::process::exit(1);
    }
}
