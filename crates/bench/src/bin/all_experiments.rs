//! Orchestrator: runs every table, figure, and extension binary and
//! collects their outputs under `results/`.
//!
//! ```sh
//! cargo run --release -p scan-bench --bin all_experiments [out_dir]
//! ```

use std::path::PathBuf;
use std::process::Command;

/// Every experiment binary, in reporting order.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "figure3",
    "figure5",
    "clustering",
    "ablation_ordering",
    "ablation_misr",
    "ablation_interval_count",
    "ablation_xmask",
    "ablation_chain_mask",
    "multifault",
    "vectors",
    "windows",
    "adaptive_compare",
    "dictionary",
    "localization",
    "two_faulty_cores",
    "overhead",
    "compactors",
    "coverage",
    "weighted",
    "topoff",
    "diagnosis_time",
    "chain_defects",
];

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    std::fs::create_dir_all(&out_dir).expect("create results directory");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("binary directory")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        let binary = exe_dir.join(name);
        eprintln!("running {name}…");
        let output = Command::new(&binary).output();
        match output {
            Ok(output) if output.status.success() => {
                let path = out_dir.join(format!("{name}.txt"));
                std::fs::write(&path, &output.stdout).expect("write result file");
                println!("{name}: ok → {}", path.display());
            }
            Ok(output) => {
                failures.push(*name);
                println!("{name}: FAILED (status {})", output.status);
            }
            Err(e) => {
                failures.push(*name);
                println!("{name}: could not run ({e}) — build with `cargo build --release -p scan-bench` first");
            }
        }
    }
    println!();
    if failures.is_empty() {
        println!("all {} experiments completed into {}", EXPERIMENTS.len(), out_dir.display());
    } else {
        println!("{} experiment(s) failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
