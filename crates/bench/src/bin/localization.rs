//! First-level SOC diagnosis: identifying *which core* is faulty from
//! candidate-cell densities on the meta scan chains — the paper's
//! motivating failure-analysis scenario, quantified as top-1
//! localization accuracy per scheme.

use scan_bench::{render_table, ObsSession, PAPER_SCHEMES};
use scan_diagnosis::{CampaignSpec, PreparedCampaign};
use scan_soc::d695;

fn main() {
    let (obs, _rest) = ObsSession::start("localization");
    let mut spec = CampaignSpec::new(128, 32, 4);
    spec.num_faults = 200;
    println!(
        "Core localization — SOC 1, {} groups, {} partitions, {} faults per faulty core",
        spec.groups, spec.partitions, spec.num_faults
    );
    println!();
    let soc = d695::soc1().expect("SOC 1 builds");
    let mut rows = Vec::new();
    for (index, core) in soc.cores().iter().enumerate() {
        let campaign = PreparedCampaign::from_soc(&soc, index, &spec).expect("campaign prepares");
        let mut cells = vec![core.name().to_owned()];
        for &scheme in &PAPER_SCHEMES {
            let report = campaign
                .run_localization_parallel(scheme, 0)
                .expect("localization runs");
            cells.push(format!(
                "{:.1}% (margin {:.3})",
                report.top1_accuracy * 100.0,
                report.mean_margin
            ));
        }
        rows.push(cells);
        eprintln!("  {}: done", core.name());
    }
    println!(
        "{}",
        render_table(&["faulty core", "random-selection", "two-step"], &rows)
    );
    println!();
    println!("accuracy = fraction of faults whose highest candidate-density core is the true faulty core");
    obs.finish();
}
