//! Baseline comparison: adaptive binary search (\[6\] in the paper) vs
//! partition-based diagnosis.
//!
//! The adaptive scheme reaches exact resolution in ~2·f·log2(n)
//! sessions but interrupts test application after every round; the
//! partition schemes run a fixed precomputed schedule of
//! `partitions × groups` sessions. This experiment reports, per
//! scheme, the sessions executed and the resolution reached, on the
//! same fault evidence.

use scan_bench::{render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::adaptive::adaptive_binary_search;
use scan_diagnosis::{
    diagnose, lfsr_patterns, BistConfig, ChainLayout, DiagnosisPlan, DrAccumulator, ResponseModel,
};
use scan_netlist::{generate, ScanView};
use scan_sim::FaultSimulator;

fn main() {
    let (obs, _rest) = ObsSession::start("adaptive_compare");
    let circuit = generate::benchmark("s5378");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 128usize;
    let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
    let faults = fsim.sample_detected_faults(300, 2003);
    println!(
        "Adaptive binary search vs partition-based diagnosis — s5378 ({} cells), {} faults",
        view.len(),
        faults.len()
    );
    println!();

    let mut rows = Vec::new();

    // Partition-based schemes: fixed schedule of partitions × groups.
    for (label, scheme, partitions, groups) in [
        ("random 8x8", Scheme::RandomSelection, 8usize, 8u16),
        ("two-step 8x8", Scheme::TWO_STEP_DEFAULT, 8, 8),
        ("two-step 4x8", Scheme::TWO_STEP_DEFAULT, 4, 8),
    ] {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            num_patterns,
            &BistConfig::new(groups, partitions, scheme),
        )
        .expect("plan builds");
        let mut acc = DrAccumulator::new();
        for fault in &faults {
            let errors = fsim.error_map(fault);
            let outcome = plan.analyze(errors.iter_bits());
            let diag = diagnose(&plan, &outcome);
            acc.add(diag.num_candidates(), errors.failing_positions().len());
        }
        rows.push(vec![
            label.to_owned(),
            (partitions * usize::from(groups)).to_string(),
            "fixed".to_owned(),
            format!("{:.3}", acc.dr()),
        ]);
    }

    // Adaptive binary search: session count varies per fault.
    for budget in [64usize, 256, 4096] {
        let model = ResponseModel::new(ChainLayout::single_chain(view.len()), num_patterns, 16)
            .expect("model builds");
        let mut acc = DrAccumulator::new();
        let mut total_sessions = 0usize;
        for fault in &faults {
            let errors = fsim.error_map(fault);
            let outcome = adaptive_binary_search(&model, errors.iter_bits(), budget);
            total_sessions += outcome.sessions_used;
            acc.add(outcome.candidates.len(), errors.failing_positions().len());
        }
        rows.push(vec![
            format!("adaptive (budget {budget})"),
            format!("{:.0}", total_sessions as f64 / faults.len() as f64),
            "adaptive".to_owned(),
            format!("{:.3}", acc.dr()),
        ]);
    }

    println!(
        "{}",
        render_table(&["scheme", "sessions/fault", "schedule", "DR"], &rows)
    );
    println!();
    println!("fixed = precomputed schedule (no interruptions); adaptive = masks recomputed between rounds");
    obs.finish();
}
