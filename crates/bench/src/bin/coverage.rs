//! BIST pattern-set quality: stuck-at fault coverage vs pseudorandom
//! pattern count, per benchmark — the substrate statistic behind the
//! "detected faults" sampled by every diagnosis campaign.

use scan_bench::{render_table, ObsSession};
use scan_diagnosis::lfsr_patterns;
use scan_netlist::{generate, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse};

fn main() {
    let (obs, _rest) = ObsSession::start("coverage");
    let budgets = [16usize, 32, 64, 128, 256];
    println!("Pseudorandom stuck-at coverage (collapsed faults, LFSR PRPG seed 0xACE1)");
    println!();
    let mut rows = Vec::new();
    for name in ["s27", "s298", "s953", "s5378"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let universe = FaultUniverse::collapsed(&circuit);
        let mut cells = vec![name.to_owned(), universe.len().to_string()];
        for &n in &budgets {
            let patterns = lfsr_patterns(&circuit, n, 0xACE1);
            let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
            let detected = universe
                .faults()
                .iter()
                .filter(|f| fsim.is_detected(f))
                .count();
            cells.push(format!(
                "{:.1}%",
                100.0 * detected as f64 / universe.len() as f64
            ));
        }
        rows.push(cells);
        eprintln!("  {name}: done");
    }
    let headers: Vec<String> = ["circuit".to_owned(), "faults".to_owned()]
        .into_iter()
        .chain(budgets.iter().map(|n| format!("{n} pat")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));
    obs.finish();
}
