//! Extension experiment: weighted pseudo-random BIST patterns.
//!
//! Uniform pseudorandom patterns struggle with random-pattern-resistant
//! faults (deep AND/OR structures need improbable input combinations).
//! Biasing each stimulus bit toward the non-controlling value its
//! fanout wants (weights suggested by the SCOAP module) recovers some
//! of that coverage for free. This experiment compares uniform vs
//! weighted stuck-at coverage at equal pattern counts.

use scan_bench::{render_table, ObsSession};
use scan_diagnosis::lfsr_patterns;
use scan_netlist::scoap::suggested_input_weights;
use scan_netlist::{generate, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse, PatternSet};

fn main() {
    let (obs, _rest) = ObsSession::start("weighted");
    println!(
        "Uniform vs weighted pseudo-random coverage (collapsed stuck-at faults, 128 patterns)"
    );
    println!();
    let mut rows = Vec::new();
    for name in ["s298", "s953", "s5378", "s9234"] {
        let circuit = generate::benchmark(name);
        let view = ScanView::natural(&circuit, true);
        let universe = FaultUniverse::collapsed(&circuit);
        let coverage = |patterns: &PatternSet| -> f64 {
            let fsim = FaultSimulator::new(&circuit, &view, patterns).expect("shapes match");
            let detected = universe
                .faults()
                .iter()
                .filter(|f| fsim.is_detected(f))
                .count();
            100.0 * detected as f64 / universe.len().max(1) as f64
        };
        let uniform = coverage(&lfsr_patterns(&circuit, 128, 0xACE1));
        let (pi_w, state_w) = suggested_input_weights(&circuit);
        let weighted = coverage(&PatternSet::weighted(128, 0xACE1, &pi_w, &state_w));
        rows.push(vec![
            name.to_owned(),
            universe.len().to_string(),
            format!("{uniform:.1}%"),
            format!("{weighted:.1}%"),
            format!("{:+.1}", weighted - uniform),
        ]);
        eprintln!("  {name}: done");
    }
    println!(
        "{}",
        render_table(
            &["circuit", "faults", "uniform", "weighted", "delta (pts)"],
            &rows
        )
    );
    obs.finish();
}
