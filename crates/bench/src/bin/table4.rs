//! Table 4: SOC diagnostic resolution with multiple meta scan chains.
//! SOC 2 is the d695 variant: the eight full-scan ISCAS-89 modules
//! daisy-chained over an 8-bit TAM into 8 balanced meta scan chains;
//! 8 groups per partition, 8 partitions, 500 faults per failing core.
//! The paper's table reports the six largest cores; the harness prints
//! every core and marks the reported six.

use scan_bench::{fmt_dr, render_table, table4_spec, ObsSession, PAPER_SCHEMES};
use scan_diagnosis::soc_diag::diagnose_each_core_parallel;
use scan_netlist::generate::SIX_LARGEST;
use scan_soc::d695;

fn main() {
    let (obs, _rest) = ObsSession::start("table4");
    let spec = table4_spec();
    let soc = d695::soc2().expect("SOC 2 builds");
    println!(
        "Table 4 — SOC 2 (d695 variant, {} meta chains, longest {} cells), {} groups, {} partitions, {} faults/core",
        soc.num_chains(),
        soc.max_chain_len(),
        spec.groups,
        spec.partitions,
        spec.num_faults
    );
    println!();
    let rows_data =
        diagnose_each_core_parallel(&soc, &spec, &PAPER_SCHEMES, 0).expect("SOC campaign runs");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            let random = &row.reports[0];
            let two_step = &row.reports[1];
            let marker = if SIX_LARGEST.contains(&row.core.as_str()) {
                "*"
            } else {
                ""
            };
            vec![
                format!("{}{marker}", row.core),
                fmt_dr(random.dr),
                fmt_dr(two_step.dr),
                fmt_dr(random.dr_pruned),
                fmt_dr(two_step.dr_pruned),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "failing core",
                "DR random",
                "DR two-step",
                "DR random (pruned)",
                "DR two-step (pruned)",
            ],
            &rows
        )
    );
    println!("(* = one of the six largest cores reported in the paper's table)");
    obs.finish();
}
