//! Table 2: diagnostic resolution of the six largest ISCAS-89
//! benchmarks under random-selection vs two-step partitioning, with and
//! without post-processing pruning. 128 pseudorandom patterns per BIST
//! session, degree-16 partition LFSR, 500 faults per circuit.

use scan_bench::{fmt_dr, render_table, table2_spec, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::PreparedCampaign;
use scan_netlist::generate::{self, SIX_LARGEST};

fn main() {
    let (obs, _rest) = ObsSession::start("table2");
    let spec = table2_spec();
    println!(
        "Table 2 — six largest ISCAS-89, {} patterns, {} groups, {} partitions, {} faults",
        spec.num_patterns, spec.groups, spec.partitions, spec.num_faults
    );
    println!();
    let mut rows = Vec::new();
    for name in SIX_LARGEST {
        let circuit = generate::benchmark(name);
        let campaign = PreparedCampaign::from_circuit(&circuit, &spec)
            .unwrap_or_else(|e| panic!("campaign for {name}: {e}"));
        let random = campaign
            .run_parallel(Scheme::RandomSelection, 0)
            .expect("random-selection run");
        let two_step = campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
            .expect("two-step run");
        rows.push(vec![
            name.to_owned(),
            campaign.num_faults().to_string(),
            fmt_dr(random.dr),
            fmt_dr(two_step.dr),
            fmt_dr(random.dr_pruned),
            fmt_dr(two_step.dr_pruned),
        ]);
        eprintln!("  {name}: done");
    }
    println!(
        "{}",
        render_table(
            &[
                "circuit",
                "faults",
                "DR random",
                "DR two-step",
                "DR random (pruned)",
                "DR two-step (pruned)",
            ],
            &rows
        )
    );
    obs.finish();
}
