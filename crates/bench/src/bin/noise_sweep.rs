//! Noise sweep: fault-tolerant diagnosis quality vs verdict-noise rate
//! on the Table 1 configuration (s953, 200 patterns, 4 groups per
//! partition, 8 partitions, 500 faults, two-step scheme).
//!
//! Each row injects session-verdict noise at a given flip rate and
//! reports how the robust engine (retry + best-of-3 voting + weighted
//! fallback, see `docs/ROBUSTNESS.md`) degrades: the fraction of faults
//! resolved exactly, resolved with degraded confidence, or left
//! inconclusive, plus the DR over conclusive faults and how many
//! strict-intersection failures the recovery machinery repaired. A
//! final stress row combines flips with session dropout, intermittent
//! faults, and X-corrupted cells.
//!
//! ```sh
//! cargo run --release -p scan-bench --bin noise_sweep
//! ```

use scan_bench::{fmt_dr, render_table, table1_spec, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{NoiseConfig, NoiseModel, PreparedCampaign, RobustPolicy};
use scan_netlist::generate;

/// Verdict flip rates swept in the plain rows.
const FLIP_RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

/// Noise stream seed: fixed so the sweep is reproducible bit-for-bit.
const NOISE_SEED: u64 = 2003;

fn main() {
    let (obs, _rest) = ObsSession::start("noise_sweep");
    let spec = table1_spec();
    let circuit = generate::benchmark("s953");
    println!(
        "Noise sweep — s953, {} patterns, {} groups/partition, {} partitions, {} faults, two-step",
        spec.num_patterns, spec.groups, spec.partitions, spec.num_faults
    );
    println!("(retry budget 2 rounds, best-of-3 voting, weighted fallback; seed {NOISE_SEED})");
    let campaign =
        PreparedCampaign::from_circuit(&circuit, &spec).expect("s953 campaign must prepare");
    eprintln!("(diagnosing {} detected faults)", campaign.num_faults());
    let policy = RobustPolicy::default();

    let mut configs: Vec<(String, NoiseConfig)> = FLIP_RATES
        .iter()
        .map(|&flip| {
            let mut cfg = NoiseConfig::noiseless(NOISE_SEED);
            cfg.flip_rate = flip;
            (format!("flip {flip:.3}"), cfg)
        })
        .collect();
    let mut stress = NoiseConfig::noiseless(NOISE_SEED);
    stress.flip_rate = 0.02;
    stress.dropout_rate = 0.02;
    stress.intermittent_rate = 0.2;
    stress.intermittent_miss = 0.5;
    stress.x_corrupt_fraction = 0.02;
    configs.push(("stress".to_owned(), stress));

    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(label, cfg)| {
            let noise = NoiseModel::new(*cfg).expect("sweep rates are valid");
            let report = campaign
                .run_robust_parallel(Scheme::TWO_STEP_DEFAULT, &noise, &policy, 0)
                .expect("robust run");
            eprintln!(
                "noise_sweep: {label}: {}/{} conclusive, {} strict failure(s), {} recovered",
                report.exact + report.degraded,
                report.faults,
                report.strict_failures,
                report.recovered
            );
            let n = report.faults as f64;
            vec![
                label.clone(),
                format!("{:.1}%", 100.0 * report.exact as f64 / n),
                format!("{:.1}%", 100.0 * report.degraded as f64 / n),
                format!("{:.1}%", 100.0 * report.inconclusive as f64 / n),
                fmt_dr(report.dr),
                report.strict_failures.to_string(),
                report.recovered.to_string(),
                report.retry_rounds.to_string(),
                report.fallbacks.to_string(),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &[
                "noise",
                "exact",
                "degraded",
                "inconclusive",
                "DR (conclusive)",
                "strict failures",
                "recovered",
                "retry rounds",
                "fallbacks",
            ],
            &rows
        )
    );
    println!(
        "Strict intersection alone loses every `strict failures` fault (empty or\n\
         contradictory candidate set); the robust engine keeps all but the\n\
         `inconclusive` column diagnosable."
    );
    obs.finish();
}
