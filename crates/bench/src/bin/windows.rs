//! Extension experiment: intermediate-signature windows (time + space
//! information, the paper's reference \[2\]).
//!
//! Sweeps the snapshot window size and reports the failing-*vector*
//! resolution achieved alongside the signature-unload cost (snapshots
//! per session), on the same fault evidence as the cell-axis
//! experiments.

use scan_bench::{render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::windows::analyze_windows;
use scan_diagnosis::{lfsr_patterns, BistConfig, ChainLayout, DiagnosisPlan, DrAccumulator};
use scan_netlist::{generate, ScanView};
use scan_sim::FaultSimulator;

fn main() {
    let (obs, _rest) = ObsSession::start("windows");
    let circuit = generate::benchmark("s5378");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 128usize;
    let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
    let faults = fsim.sample_detected_faults(300, 2003);
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        num_patterns,
        &BistConfig::new(8, 4, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");
    println!(
        "Windowed signatures — s5378, {} faults, two-step 4×8 sessions, {} patterns",
        faults.len(),
        num_patterns
    );
    println!();
    let mut rows = Vec::new();
    for window in [128usize, 32, 16, 8, 4, 1] {
        let mut acc = DrAccumulator::new();
        for fault in &faults {
            let errors = fsim.error_map(fault);
            let bits: Vec<(usize, usize)> = errors.iter_bits().collect();
            let outcome = analyze_windows(&plan, window, bits.iter().copied());
            let candidates = outcome.candidate_vectors();
            let actual: std::collections::HashSet<usize> = bits.iter().map(|&(_, t)| t).collect();
            acc.add(candidates.len(), actual.len());
        }
        rows.push(vec![
            window.to_string(),
            (num_patterns.div_ceil(window)).to_string(),
            format!("{:.3}", acc.dr()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["window (patterns)", "snapshots/session", "vector-DR"],
            &rows
        )
    );
    println!();
    println!(
        "window 128 = one final signature (no time information); window 1 = per-pattern snapshots"
    );
    obs.finish();
}
