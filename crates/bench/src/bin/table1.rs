//! Table 1: diagnostic resolution for s953 with a varying number of
//! partitions (1..=8) under interval-based, random-selection, and
//! two-step partitioning. 200 pseudorandom patterns, 4 groups per
//! partition, 500 injected single stuck-at faults.

use scan_bench::{fmt_dr, render_table, table1_spec, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::PreparedCampaign;
use scan_netlist::generate;

fn main() {
    let (obs, _rest) = ObsSession::start("table1");
    let spec = table1_spec();
    let circuit = generate::benchmark("s953");
    println!(
        "Table 1 — s953, {} patterns, {} groups/partition, {} faults",
        spec.num_patterns, spec.groups, spec.num_faults
    );
    let campaign =
        PreparedCampaign::from_circuit(&circuit, &spec).expect("s953 campaign must prepare");
    eprintln!("(diagnosing {} detected faults)", campaign.num_faults());

    let interval = campaign
        .run_parallel(Scheme::IntervalBased, 0)
        .expect("interval-based run");
    let random = campaign
        .run_parallel(Scheme::RandomSelection, 0)
        .expect("random-selection run");
    let two_step = campaign
        .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
        .expect("two-step run");

    let rows: Vec<Vec<String>> = (0..spec.partitions)
        .map(|k| {
            vec![
                (k + 1).to_string(),
                fmt_dr(interval.dr_by_prefix[k]),
                fmt_dr(random.dr_by_prefix[k]),
                fmt_dr(two_step.dr_by_prefix[k]),
            ]
        })
        .collect();
    println!();
    println!(
        "{}",
        render_table(
            &[
                "partitions",
                "DR (interval-based)",
                "DR (random-selection)",
                "DR (two-step)",
            ],
            &rows
        )
    );
    obs.finish();
}
