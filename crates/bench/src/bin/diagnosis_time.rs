//! Diagnosis time in tester clock cycles: Fig. 5's partition counts
//! converted through the scan geometry, plus the §5 comparison of the
//! TestRail against a per-core test bus with pattern reloads.

use scan_bench::{render_table, table3_spec, ObsSession, PAPER_SCHEMES};
use scan_diagnosis::cost::{soc_access_cost, DiagnosisCostModel};
use scan_diagnosis::soc_diag::diagnose_each_core;
use scan_soc::d695;

fn main() {
    let (obs, _rest) = ObsSession::start("diagnosis_time");
    let mut spec = table3_spec();
    spec.partitions = 16;
    let soc = d695::soc1().expect("SOC 1 builds");
    let model = DiagnosisCostModel {
        chain_len: soc.max_chain_len(),
        num_patterns: spec.num_patterns,
        groups: spec.groups,
        signature_unload: 16,
    };
    println!(
        "Diagnosis time — SOC 1, {} groups, {} patterns/session, chain {} cells",
        spec.groups,
        spec.num_patterns,
        soc.max_chain_len()
    );
    println!(
        "(one partition = {} sessions = {:.2} Mcycles)",
        spec.groups,
        model.partition_cycles() as f64 / 1e6
    );
    println!();

    let rows_data = diagnose_each_core(&soc, &spec, &PAPER_SCHEMES).expect("SOC campaign runs");
    let fmt_cycles = |parts: Option<usize>| {
        parts.map_or_else(
            || "-".to_owned(),
            |p| format!("{p} ({:.1} Mcy)", model.diagnosis_cycles(p) as f64 / 1e6),
        )
    };
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                row.core.clone(),
                fmt_cycles(row.reports[0].partitions_to_reach(0.5)),
                fmt_cycles(row.reports[1].partitions_to_reach(0.5)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "failing core",
                "random: partitions (time)",
                "two-step: partitions (time)"
            ],
            &rows
        )
    );

    // TestRail vs per-core test bus (§5's dismissed alternative).
    let core_lens: Vec<usize> = soc
        .cores()
        .iter()
        .map(scan_soc::CoreModule::num_positions)
        .collect();
    let access = soc_access_cost(&core_lens, spec.num_patterns, spec.groups, 8, 16, 1_000_000);
    println!();
    println!(
        "8-partition diagnosis, TestRail: {:.1} Mcycles; per-core test bus (1 Mcycle reload/core): {:.1} Mcycles",
        access.testrail_cycles as f64 / 1e6,
        access.test_bus_cycles as f64 / 1e6
    );
    obs.finish();
}
