//! Ablation: per-chain session masking on a multi-chain TAM.
//!
//! The baseline shift-cycle selection logic cannot distinguish the `w`
//! cells sharing a shift position on a `w`-chain TAM, putting a DR
//! floor of about `w − 1` under Table 4. One extra comparator (chain
//! select) splits each session per chain — `w×` the sessions, full
//! cross-chain resolution. This ablation runs SOC 2 both ways.

use scan_bench::{fmt_dr, render_table, table4_spec, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::chain_mask::{analyze_chain_masked, diagnose_chain_masked};
use scan_diagnosis::{diagnose, BistConfig, ChainLayout, DiagnosisPlan, DrAccumulator};
use scan_netlist::generate::SIX_LARGEST;
use scan_sim::FaultSimulator;
use scan_soc::d695;

fn main() {
    let (obs, _rest) = ObsSession::start("ablation_chain_mask");
    let spec = table4_spec();
    let soc = d695::soc2().expect("SOC 2 builds");
    println!(
        "Ablation — per-chain masking on SOC 2 ({} chains), two-step, {} groups, {} partitions, 200 faults/core",
        soc.num_chains(),
        spec.groups,
        spec.partitions
    );
    println!();
    let layout = ChainLayout::from_soc(&soc);
    let plan = DiagnosisPlan::new(
        layout,
        spec.num_patterns,
        &BistConfig::new(spec.groups, spec.partitions, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");
    let baseline_sessions = spec.partitions * usize::from(spec.groups);
    let masked_sessions = baseline_sessions * soc.num_chains();

    let mut rows = Vec::new();
    for name in SIX_LARGEST {
        let core_index = soc.core_index(name).expect("core exists");
        let core = &soc.cores()[core_index];
        let core_seed = spec
            .prpg_seed
            .wrapping_add((core_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let patterns = scan_diagnosis::lfsr_patterns(core.netlist(), spec.num_patterns, core_seed);
        let fsim =
            FaultSimulator::new(core.netlist(), core.view(), &patterns).expect("shapes match");
        let faults = fsim.sample_detected_faults(200, spec.fault_seed);
        // Local→global mapping for this core.
        let mut local_to_global = vec![usize::MAX; core.view().len()];
        for (global, (cell, _, _)) in soc.layout().into_iter().enumerate() {
            if cell.core as usize == core_index {
                local_to_global[cell.local as usize] = global;
            }
        }
        let mut base_acc = DrAccumulator::new();
        let mut mask_acc = DrAccumulator::new();
        for fault in &faults {
            let errors = fsim.error_map(fault);
            let bits: Vec<(usize, usize)> = errors
                .iter_bits()
                .map(|(pos, pat)| (local_to_global[pos], pat))
                .collect();
            let actual = errors.failing_positions().len();
            let baseline = diagnose(&plan, &plan.analyze(bits.iter().copied()));
            base_acc.add(baseline.num_candidates(), actual);
            let masked =
                diagnose_chain_masked(&plan, &analyze_chain_masked(&plan, bits.iter().copied()));
            mask_acc.add(masked.len(), actual);
        }
        rows.push(vec![
            name.to_owned(),
            fmt_dr(base_acc.dr()),
            fmt_dr(mask_acc.dr()),
        ]);
        eprintln!("  {name}: done");
    }
    println!(
        "{}",
        render_table(&["failing core", "baseline DR", "chain-masked DR"], &rows)
    );
    println!();
    println!(
        "sessions: baseline {baseline_sessions}, chain-masked {masked_sessions} (×{} chains)",
        soc.num_chains()
    );
    obs.finish();
}
