//! Ablation: scan chain ordering vs interval-based effectiveness.
//!
//! Section 3 of the paper grounds interval partitioning in the
//! correlation between scan order and circuit structure. This ablation
//! destroys (shuffled) or strengthens (cone-clustered) that correlation
//! and measures the impact per scheme: interval-based resolution should
//! degrade on a shuffled chain while random selection is indifferent to
//! ordering.

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{CampaignSpec, PreparedCampaign};
use scan_netlist::{generate, ScanOrdering};

fn main() {
    let (obs, _rest) = ObsSession::start("ablation_ordering");
    let mut spec = CampaignSpec::new(128, 8, 4);
    spec.num_faults = 300;
    println!(
        "Ablation — scan ordering, {} patterns, {} groups, {} partitions, {} faults",
        spec.num_patterns, spec.groups, spec.partitions, spec.num_faults
    );
    println!();
    for name in ["s953", "s5378"] {
        let circuit = generate::benchmark(name);
        let mut rows = Vec::new();
        for (label, ordering) in [
            ("natural", ScanOrdering::Natural),
            ("shuffled", ScanOrdering::Shuffled(99)),
            ("cone-clustered", ScanOrdering::ConeClustered),
        ] {
            let mut s = spec;
            s.ordering = ordering;
            let campaign = PreparedCampaign::from_circuit(&circuit, &s).expect("campaign prepares");
            let interval = campaign
                .run_parallel(Scheme::IntervalBased, 0)
                .expect("interval run");
            let random = campaign
                .run_parallel(Scheme::RandomSelection, 0)
                .expect("random run");
            let two_step = campaign
                .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
                .expect("two-step run");
            rows.push(vec![
                label.to_owned(),
                fmt_dr(interval.dr_by_prefix[0]),
                fmt_dr(random.dr_by_prefix[0]),
                fmt_dr(interval.dr),
                fmt_dr(random.dr),
                fmt_dr(two_step.dr),
            ]);
        }
        println!("{name}:");
        println!(
            "{}",
            render_table(
                &[
                    "ordering",
                    "interval @1",
                    "random @1",
                    "interval @4",
                    "random @4",
                    "two-step @4",
                ],
                &rows
            )
        );
    }
    obs.finish();
}
