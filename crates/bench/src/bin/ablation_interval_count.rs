//! Ablation: how many interval-based partitions should two-step use?
//!
//! The paper uses one interval partition "for the sake of simplicity"
//! but observes that "in some cases, the use of more interval-based
//! partitions leads to higher diagnostic resolution". This sweep varies
//! the interval prefix length of the two-step scheme from 0 (pure
//! random selection) to all-interval and reports DR per partition
//! count.

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{CampaignSpec, PreparedCampaign};
use scan_netlist::generate;

fn main() {
    let (obs, _rest) = ObsSession::start("ablation_interval_count");
    let circuit = generate::benchmark("s953");
    let mut spec = CampaignSpec::new(200, 4, 8);
    spec.num_faults = 300;
    println!(
        "Ablation — interval partitions in two-step, s953, {} groups, {} partitions, {} faults",
        spec.groups, spec.partitions, spec.num_faults
    );
    println!();
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec).expect("campaign prepares");
    let variants: Vec<usize> = vec![0, 1, 2, 3, 8];
    let mut reports = Vec::new();
    for &k in &variants {
        let scheme = if k == 0 {
            Scheme::RandomSelection
        } else {
            Scheme::TwoStep {
                interval_partitions: k,
            }
        };
        reports.push(campaign.run_parallel(scheme, 0).expect("scheme runs"));
    }
    let headers: Vec<String> = std::iter::once("partitions".to_owned())
        .chain(variants.iter().map(|&k| {
            if k == 0 {
                "0 (random)".to_owned()
            } else if k == 8 {
                "8 (all interval)".to_owned()
            } else {
                k.to_string()
            }
        }))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..spec.partitions)
        .map(|p| {
            std::iter::once((p + 1).to_string())
                .chain(reports.iter().map(|r| fmt_dr(r.dr_by_prefix[p])))
                .collect()
        })
        .collect();
    println!("{}", render_table(&header_refs, &rows));
    println!("(column = number of leading interval-based partitions in the two-step scheme)");
    obs.finish();
}
