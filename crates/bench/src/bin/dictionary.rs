//! Extension experiment: fault-dictionary (cause–effect) resolution
//! under partition-based syndromes.
//!
//! Builds a dictionary of per-fault session syndromes and measures how
//! well the syndromes separate faults: number of equivalence classes
//! and expected suspect-list size, per scheme and partition count, for
//! both exact-signature and pass/fail matching.

use scan_bench::{render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::dictionary::FaultDictionary;
use scan_diagnosis::{lfsr_patterns, BistConfig, ChainLayout, DiagnosisPlan};
use scan_netlist::{generate, ScanView};
use scan_sim::FaultSimulator;

fn main() {
    let (obs, _rest) = ObsSession::start("dictionary");
    let circuit = generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 128usize;
    let patterns = lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
    let faults = fsim.sample_detected_faults(400, 2003);
    println!(
        "Fault dictionary resolution — s953, {} faults, 4 groups/partition",
        faults.len()
    );
    println!();
    let mut rows = Vec::new();
    for partitions in [1usize, 2, 4, 8] {
        for scheme in [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT] {
            let plan = DiagnosisPlan::new(
                ChainLayout::single_chain(view.len()),
                num_patterns,
                &BistConfig::new(4, partitions, scheme),
            )
            .expect("plan builds");
            let dict = FaultDictionary::build(&plan, &fsim, &faults);
            rows.push(vec![
                partitions.to_string(),
                scheme.name().to_owned(),
                dict.num_passfail_classes().to_string(),
                format!("{:.2}", dict.expected_passfail_suspects()),
                dict.num_exact_classes().to_string(),
                format!("{:.2}", dict.expected_exact_suspects()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "partitions",
                "scheme",
                "P/F classes",
                "P/F suspects",
                "exact classes",
                "exact suspects",
            ],
            &rows
        )
    );
    println!();
    println!("suspects = expected suspect-fault list size for a uniformly drawn dictionary fault");
    obs.finish();
}
