//! Extension experiment: scan chain integrity defects.
//!
//! The paper assumes a healthy chain carrying system-fault evidence;
//! the dual failure mode is a stuck shift stage in the chain itself.
//! This experiment (a) verifies flush-test localization finds every
//! injected chain defect exactly, and (b) shows what a chain defect
//! does to the partition-based diagnosis if it is *mis*-diagnosed as a
//! system fault — motivating the standard practice of flushing the
//! chain before logic diagnosis.

use scan_bench::{render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{diagnose, lfsr_patterns, BistConfig, ChainLayout, DiagnosisPlan};
use scan_netlist::{generate, ScanView};
use scan_sim::chain_fault::flush_observation;
use scan_sim::{locate_chain_fault, simulate_chain_fault, ChainFault, FaultSimulator};

fn main() {
    let (obs, _rest) = ObsSession::start("chain_defects");
    let circuit = generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let patterns = lfsr_patterns(&circuit, 128, 0xACE1);
    let chain_cells = view.num_cells();
    println!("Scan chain defects — s953 ({chain_cells} scan cells), 128 patterns");
    println!();

    // (a) Flush-test localization sweep.
    let mut located = 0usize;
    for position in 0..chain_cells {
        for stuck in [false, true] {
            let fault = ChainFault { position, stuck };
            let zeros = flush_observation(chain_cells, Some(&fault), false);
            let ones = flush_observation(chain_cells, Some(&fault), true);
            if position + 1 < chain_cells {
                // Defects at the last position are invisible to flushes
                // (nothing shifts through them).
                if locate_chain_fault(&zeros, &ones) == Some(fault) {
                    located += 1;
                }
            }
        }
    }
    println!(
        "flush localization: {located}/{} interior defects located exactly",
        2 * (chain_cells - 1)
    );
    println!();

    // (b) What logic diagnosis sees if the flush step is skipped.
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).expect("shapes match");
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        128,
        &BistConfig::new(4, 4, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");
    let mut rows = Vec::new();
    for position in [0usize, chain_cells / 2, chain_cells - 2] {
        let fault = ChainFault {
            position,
            stuck: true,
        };
        let observed =
            simulate_chain_fault(&circuit, &view, &patterns, &fault).expect("shapes match");
        let errors = observed.xor(fsim.golden());
        let failing = errors.failing_positions().len();
        let outcome = plan.analyze(errors.iter_bits());
        let diag = diagnose(&plan, &outcome);
        rows.push(vec![
            position.to_string(),
            failing.to_string(),
            diag.num_candidates().to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "defect position",
                "failing positions",
                "logic-diagnosis candidates",
            ],
            &rows
        )
    );
    println!();
    println!(
        "a chain defect floods the response — flush the chain first, then run logic diagnosis"
    );
    obs.finish();
}
