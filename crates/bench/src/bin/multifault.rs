//! Extension experiment: multiple simultaneous faults.
//!
//! Section 3 argues the multiple-fault case behaves like the single-
//! fault one: overlapping cones merge into one expanded failing segment
//! (Fig. 2b), disjoint cones give separate segments (Fig. 2a), both of
//! which interval partitioning covers with few groups. This experiment
//! injects fault multiplets of growing size and compares schemes.

use scan_bench::{fmt_dr, render_table, ObsSession};
use scan_bist::Scheme;
use scan_diagnosis::{CampaignSpec, PreparedCampaign};
use scan_netlist::generate;

fn main() {
    let (obs, _rest) = ObsSession::start("multifault");
    let circuit = generate::benchmark("s5378");
    let mut spec = CampaignSpec::new(128, 8, 8);
    spec.num_faults = 250;
    println!(
        "Multiple simultaneous faults — s5378, {} groups, {} partitions, {} multiplets",
        spec.groups, spec.partitions, spec.num_faults
    );
    println!();
    let mut rows = Vec::new();
    for size in [1usize, 2, 3, 5] {
        let campaign = PreparedCampaign::from_circuit_multiplets(&circuit, &spec, size)
            .expect("campaign prepares");
        let random = campaign
            .run_parallel(Scheme::RandomSelection, 0)
            .expect("random run");
        let two_step = campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, 0)
            .expect("two-step run");
        rows.push(vec![
            size.to_string(),
            format!("{:.1}", two_step.mean_actual),
            fmt_dr(random.dr),
            fmt_dr(two_step.dr),
            fmt_dr(random.dr_pruned),
            fmt_dr(two_step.dr_pruned),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "faults/case",
                "mean failing cells",
                "DR random",
                "DR two-step",
                "random (pruned)",
                "two-step (pruned)",
            ],
            &rows
        )
    );
    obs.finish();
}
