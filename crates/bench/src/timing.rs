//! A minimal `std::time::Instant` microbenchmark harness.
//!
//! The workspace builds offline with no external registry, so the
//! benches under `benches/` use this instead of criterion: each
//! measurement runs a closure for a fixed number of samples (after a
//! warm-up pass) and reports min / median / mean wall time per sample.
//! No statistics beyond that are attempted — for A/B decisions, compare
//! medians across runs on a quiet machine.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark: its label and per-sample wall times.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label as printed.
    pub name: String,
    /// Per-sample durations, in execution order.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Fastest sample.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// Median sample (lower-middle for even counts).
    #[must_use]
    pub fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        sorted
            .get(sorted.len().saturating_sub(1) / 2)
            .copied()
            .unwrap_or_default()
    }

    /// 95th-percentile sample (nearest rank, after the suite's IQR
    /// outlier rejection — see [`crate::suite::stats_from_samples`]).
    #[must_use]
    pub fn p95(&self) -> Duration {
        let ns: Vec<u64> = self
            .samples
            .iter()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .collect();
        if ns.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(crate::suite::stats_from_samples(&ns).p95_ns)
    }

    /// Interquartile range of the samples — the spread the suite's
    /// outlier rejection is calibrated against.
    #[must_use]
    pub fn iqr(&self) -> Duration {
        let ns: Vec<u64> = self
            .samples
            .iter()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .collect();
        if ns.is_empty() {
            return Duration::ZERO;
        }
        Duration::from_nanos(crate::suite::stats_from_samples(&ns).iqr_ns)
    }

    /// Mean sample.
    #[must_use]
    pub fn mean(&self) -> Duration {
        let Ok(count) = u32::try_from(self.samples.len()) else {
            return Duration::ZERO;
        };
        if count == 0 {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / count
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", d.as_secs_f64() * 1e6)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// A named group of measurements, printed as it runs.
pub struct Bench {
    group: String,
    samples: usize,
}

impl Bench {
    /// Creates a benchmark group taking `samples` timed runs per case.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn new(group: &str, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        // lint:allow(L006): the measurement table is the stdout payload of the bench targets this harness backs
        println!("## {group} ({samples} samples)");
        Bench {
            group: group.to_owned(),
            samples,
        }
    }

    /// Overrides the per-case sample count.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is zero.
    #[must_use]
    pub fn samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    /// Times `body` (one warm-up run, then `samples` timed runs) and
    /// prints a one-line summary. The closure's result is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn run<T>(&self, name: &str, mut body: impl FnMut() -> T) -> Measurement {
        black_box(body());
        let samples = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(body());
                start.elapsed()
            })
            .collect();
        let m = Measurement {
            name: format!("{}/{name}", self.group),
            samples,
        };
        // lint:allow(L006): per-case result line of the bench table payload
        println!(
            "{:<44} min {:>10}   median {:>10}   mean {:>10}",
            m.name,
            fmt_duration(m.min()),
            fmt_duration(m.median()),
            fmt_duration(m.mean()),
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics() {
        let m = Measurement {
            name: "t".to_owned(),
            samples: vec![
                Duration::from_nanos(30),
                Duration::from_nanos(10),
                Duration::from_nanos(20),
            ],
        };
        assert_eq!(m.min(), Duration::from_nanos(10));
        assert_eq!(m.median(), Duration::from_nanos(20));
        assert_eq!(m.mean(), Duration::from_nanos(20));
        assert_eq!(m.p95(), Duration::from_nanos(30));
        assert_eq!(m.iqr(), Duration::from_nanos(20));
    }

    #[test]
    fn bench_runs_the_requested_samples() {
        let mut calls = 0usize;
        let m = Bench::new("test_group", 5).run("count", || {
            calls += 1;
            calls
        });
        // One warm-up + five timed samples.
        assert_eq!(calls, 6);
        assert_eq!(m.samples.len(), 5);
        assert_eq!(m.name, "test_group/count");
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert!(fmt_duration(Duration::from_micros(120)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(120)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(12)).ends_with(" s"));
    }

    #[test]
    fn empty_measurement_is_zero() {
        let m = Measurement {
            name: "e".to_owned(),
            samples: Vec::new(),
        };
        assert_eq!(m.min(), Duration::ZERO);
        assert_eq!(m.median(), Duration::ZERO);
        assert_eq!(m.mean(), Duration::ZERO);
    }
}
