//! Minimal dependency-free JSON emission for `scanbist --json`.

use std::fmt::Write as _;

/// An ordered JSON object builder producing a single-line object.
///
/// # Examples
///
/// ```
/// use scan_bist_cli::json::JsonObject;
///
/// let mut o = JsonObject::new();
/// o.string("circuit", "s953");
/// o.number("dr", 0.075);
/// o.bool("pruned", true);
/// assert_eq!(o.finish(), r#"{"circuit":"s953","dr":0.075,"pruned":true}"#);
/// ```
#[derive(Default, Debug)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Adds a string field (escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", escape(key), escape(value));
        self
    }

    /// Adds a numeric field. Non-finite values are emitted as `null`.
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        if value.is_finite() {
            // Trim float formatting: integers print without a fraction.
            if (value.fract() == 0.0) && value.abs() < 1e15 {
                // Guarded by the magnitude check above, so the cast is
                // exact.
                #[allow(clippy::cast_possible_truncation)]
                let int = value as i64;
                let _ = write!(self.body, "{}:{}", escape(key), int);
            } else {
                let _ = write!(self.body, "{}:{}", escape(key), value);
            }
        } else {
            let _ = write!(self.body, "{}:null", escape(key));
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", escape(key), value);
        self
    }

    /// Adds an array of numbers.
    pub fn numbers(&mut self, key: &str, values: &[f64]) -> &mut Self {
        self.sep();
        let items: Vec<String> = values
            .iter()
            .map(|v| {
                if v.is_finite() {
                    v.to_string()
                } else {
                    "null".to_owned()
                }
            })
            .collect();
        let _ = write!(self.body, "{}:[{}]", escape(key), items.join(","));
        self
    }

    /// Closes and returns the object text.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Escapes a string for JSON.
#[must_use]
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b\nc"), "\"a\\\\b\\nc\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_format_cleanly() {
        let mut o = JsonObject::new();
        o.number("int", 42.0)
            .number("float", 0.125)
            .number("nan", f64::NAN);
        assert_eq!(o.finish(), r#"{"int":42,"float":0.125,"nan":null}"#);
    }

    #[test]
    fn arrays_and_bools() {
        let mut o = JsonObject::new();
        o.numbers("xs", &[1.0, 2.5]).bool("ok", false);
        assert_eq!(o.finish(), r#"{"xs":[1,2.5],"ok":false}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
