//! Library backing the `scanbist` command-line tool.
//!
//! Command execution is separated from `main` so it can be tested
//! directly: [`run`] takes parsed arguments and a writer, returns a
//! process exit code, and never panics on user errors.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::cast_precision_loss)]

pub mod args;
mod commands;
pub mod json;

pub use args::{parse_args, parse_invocation, Command, Invocation, ParseArgsError, HELP};
pub use commands::{run, run_invocation};
