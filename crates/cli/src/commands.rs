//! Command execution for the `scanbist` CLI.

use std::io::Write;

use scan_atpg::{run_atpg, PodemLimits};
use scan_diagnosis::{lfsr_patterns, CampaignSpec, PreparedCampaign};
use scan_netlist::stats::{ClusteringStats, GateCensus};
use scan_netlist::{generate, GateKind, Netlist, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse};
use scan_soc::SocDescriptor;

use crate::args::{Command, Invocation, HELP};
use crate::json::JsonObject;

/// Executes a parsed command, writing human-readable output to `out`.
/// Returns the process exit code (0 on success, 1 on user error).
///
/// # Panics
///
/// Panics only if writing to `out` fails (broken pipe), matching
/// standard CLI behaviour.
pub fn run<W: Write>(command: &Command, out: &mut W) -> i32 {
    run_invocation(
        &Invocation {
            json: false,
            obs: scan_obs::ObsConfig::disabled(),
            command: command.clone(),
        },
        out,
    )
}

/// Executes a parsed invocation (honouring `--json`).
///
/// # Panics
///
/// Panics only if writing to `out` fails (broken pipe).
pub fn run_invocation<W: Write>(invocation: &Invocation, out: &mut W) -> i32 {
    match execute(&invocation.command, invocation.json, out) {
        Ok(()) => 0,
        Err(message) => {
            if invocation.json {
                let mut o = JsonObject::new();
                o.string("error", &message);
                writeln!(out, "{}", o.finish()).expect("write error message");
            } else {
                writeln!(out, "error: {message}").expect("write error message");
            }
            1
        }
    }
}

#[allow(clippy::too_many_lines)]
fn execute<W: Write>(command: &Command, json: bool, out: &mut W) -> Result<(), String> {
    match command {
        Command::Help => {
            write!(out, "{HELP}").map_err(io_err)?;
            Ok(())
        }
        Command::Parse { path } => {
            let netlist = load_file(path)?;
            describe(&netlist, out)?;
            writeln!(out, "OK: netlist is structurally valid").map_err(io_err)?;
            Ok(())
        }
        Command::Stats { circuit } => {
            let netlist = load(circuit)?;
            describe(&netlist, out)?;
            let census = GateCensus::compute(&netlist);
            for (kind, count) in GateKind::ALL.iter().zip(census.counts.iter()) {
                if *count > 0 {
                    writeln!(out, "  {kind}: {count}").map_err(io_err)?;
                }
            }
            let view = ScanView::natural(&netlist, true);
            let clustering = ClusteringStats::compute(&netlist, &view);
            writeln!(
                out,
                "cone clustering: mean span {:.1} of {} positions ({:.1}%)",
                clustering.mean_span,
                view.len(),
                clustering.mean_span_fraction * 100.0
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Coverage { circuit, patterns } => {
            let netlist = load(circuit)?;
            let view = ScanView::natural(&netlist, true);
            let pattern_set = lfsr_patterns(&netlist, *patterns, 0xACE1);
            let fsim = FaultSimulator::new(&netlist, &view, &pattern_set)
                .map_err(|e| e.to_string())?;
            let universe = FaultUniverse::collapsed(&netlist);
            let detected = universe
                .faults()
                .iter()
                .filter(|f| fsim.is_detected(f))
                .count();
            let fraction = detected as f64 / universe.len().max(1) as f64;
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .number("patterns", *patterns as f64)
                    .number("faults", universe.len() as f64)
                    .number("detected", detected as f64)
                    .number("coverage", fraction);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {detected}/{} collapsed stuck-at faults detected by {patterns} pseudorandom patterns ({:.1}%)",
                netlist.name(),
                universe.len(),
                100.0 * fraction
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Atpg { circuit } => {
            let netlist = load(circuit)?;
            let result = run_atpg(&netlist, &PodemLimits::default(), 1);
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .number("patterns", result.patterns.len() as f64)
                    .number("coverage", result.coverage())
                    .number("redundant", result.redundant as f64)
                    .number("aborted", result.aborted as f64)
                    .number("efficiency", result.efficiency());
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {} patterns, coverage {:.1}%, {} redundant, {} aborted (efficiency {:.1}%)",
                netlist.name(),
                result.patterns.len(),
                result.coverage() * 100.0,
                result.redundant,
                result.aborted,
                result.efficiency() * 100.0
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Diagnose {
            circuit,
            groups,
            partitions,
            patterns,
            faults,
            scheme,
            fault,
        } => {
            let netlist = load(circuit)?;
            if let Some(spec_text) = fault {
                return diagnose_single_fault(
                    &netlist, spec_text, *groups, *partitions, *patterns, *scheme, out,
                );
            }
            let mut spec = CampaignSpec::new(*patterns, *groups, *partitions);
            spec.num_faults = *faults;
            let campaign =
                PreparedCampaign::from_circuit(&netlist, &spec).map_err(|e| e.to_string())?;
            let report = campaign.run(*scheme).map_err(|e| e.to_string())?;
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .string("scheme", scheme.name())
                    .number("faults", report.faults as f64)
                    .number("dr", report.dr)
                    .number("dr_pruned", report.dr_pruned)
                    .number("mean_candidates", report.mean_candidates)
                    .number("mean_actual", report.mean_actual)
                    .numbers("dr_by_prefix", &report.dr_by_prefix);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {} faults, scheme {}, DR {:.3} (pruned {:.3}), mean candidates {:.1}, mean failing cells {:.1}",
                netlist.name(),
                report.faults,
                scheme.name(),
                report.dr,
                report.dr_pruned,
                report.mean_candidates,
                report.mean_actual
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Soc {
            path,
            faulty,
            groups,
            partitions,
            scheme,
        } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let descriptor = SocDescriptor::parse(&text).map_err(|e| e.to_string())?;
            let soc = descriptor.build().map_err(|e| e.to_string())?;
            let core = soc
                .core_index(faulty)
                .ok_or_else(|| format!("no core named `{faulty}` in {}", soc.name()))?;
            let mut spec = CampaignSpec::new(128, *groups, *partitions);
            spec.num_faults = 100;
            let campaign =
                PreparedCampaign::from_soc(&soc, core, &spec).map_err(|e| e.to_string())?;
            let report = campaign.run(*scheme).map_err(|e| e.to_string())?;
            let localization = campaign
                .run_localization(*scheme)
                .map_err(|e| e.to_string())?;
            if json {
                let mut o = JsonObject::new();
                o.string("soc", soc.name())
                    .string("faulty_core", faulty)
                    .string("scheme", scheme.name())
                    .number("faults", report.faults as f64)
                    .number("dr", report.dr)
                    .number("dr_pruned", report.dr_pruned)
                    .number("localization_top1", localization.top1_accuracy);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{} (faulty {faulty}): {} faults, scheme {}, DR {:.3} (pruned {:.3}), core localization {:.1}%",
                soc.name(),
                report.faults,
                scheme.name(),
                report.dr,
                report.dr_pruned,
                localization.top1_accuracy * 100.0
            )
            .map_err(io_err)?;
            Ok(())
        }
    }
}

// Takes the error by value so it slots into `map_err(io_err)` calls.
#[allow(clippy::needless_pass_by_value)]
fn io_err(e: std::io::Error) -> String {
    format!("write failed: {e}")
}

fn diagnose_single_fault<W: Write>(
    netlist: &Netlist,
    spec_text: &str,
    groups: u16,
    partitions: usize,
    patterns: usize,
    scheme: scan_bist::Scheme,
    out: &mut W,
) -> Result<(), String> {
    let (net_name, sa) = spec_text
        .rsplit_once('/')
        .ok_or_else(|| format!("fault `{spec_text}` must look like NET/SA0 or NET/SA1"))?;
    let stuck = match sa.to_ascii_uppercase().as_str() {
        "SA0" => false,
        "SA1" => true,
        other => return Err(format!("unknown stuck value `{other}` (SA0 or SA1)")),
    };
    let net = netlist
        .find_net(net_name)
        .ok_or_else(|| format!("no net named `{net_name}` in {}", netlist.name()))?;
    let fault = scan_sim::Fault::stem(net, stuck);

    let view = ScanView::natural(netlist, true);
    let pattern_set = lfsr_patterns(netlist, patterns, 0xACE1);
    let fsim = FaultSimulator::new(netlist, &view, &pattern_set).map_err(|e| e.to_string())?;
    let errors = fsim.error_map(&fault);
    if !errors.is_detected() {
        writeln!(
            out,
            "fault {} is not detected by {patterns} pseudorandom patterns",
            fault.describe(netlist)
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let plan = scan_diagnosis::DiagnosisPlan::new(
        scan_diagnosis::ChainLayout::single_chain(view.len()),
        patterns,
        &scan_diagnosis::BistConfig::new(groups, partitions, scheme),
    )
    .map_err(|e| e.to_string())?;
    let actual: Vec<usize> = errors.failing_positions().iter().collect();
    let report = scan_diagnosis::report::FaultReport::build(
        fault.describe(netlist),
        &plan,
        errors.iter_bits(),
        &actual,
    );
    write!(out, "{report}").map_err(io_err)?;
    Ok(())
}

fn describe<W: Write>(netlist: &Netlist, out: &mut W) -> Result<(), String> {
    writeln!(
        out,
        "{}: {} inputs, {} outputs, {} flip-flops, {} gates, depth {}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_outputs(),
        netlist.num_dffs(),
        netlist.num_gates(),
        netlist.depth()
    )
    .map_err(io_err)
}

/// Resolves a circuit argument: a known benchmark name or a `.bench`
/// file path.
fn load(circuit: &str) -> Result<Netlist, String> {
    if circuit == "s27" || generate::profile(circuit).is_some() {
        Ok(generate::benchmark(circuit))
    } else {
        load_file(circuit)
    }
}

fn load_file(path: &str) -> Result<Netlist, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Netlist::from_bench(name, &text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    fn run_to_string(args: &[&str]) -> (i32, String) {
        let invocation =
            crate::args::parse_invocation(args.iter().copied()).expect("args parse");
        let mut buffer = Vec::new();
        let code = run_invocation(&invocation, &mut buffer);
        (code, String::from_utf8(buffer).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_to_string(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn stats_on_benchmark() {
        let (code, text) = run_to_string(&["stats", "s27"]);
        assert_eq!(code, 0);
        assert!(text.contains("3 flip-flops"));
        assert!(text.contains("cone clustering"));
    }

    #[test]
    fn coverage_on_benchmark() {
        let (code, text) = run_to_string(&["coverage", "s27", "--patterns", "64"]);
        assert_eq!(code, 0);
        assert!(text.contains("detected"));
    }

    #[test]
    fn atpg_on_benchmark() {
        let (code, text) = run_to_string(&["atpg", "s27"]);
        assert_eq!(code, 0);
        assert!(text.contains("coverage 100.0%"));
    }

    #[test]
    fn diagnose_on_benchmark() {
        let (code, text) = run_to_string(&[
            "diagnose", "s27", "--groups", "2", "--partitions", "2", "--patterns", "32",
            "--faults", "5",
        ]);
        assert_eq!(code, 0);
        assert!(text.contains("DR"));
    }

    #[test]
    fn single_fault_report_mode() {
        let (code, text) = run_to_string(&[
            "diagnose", "s27", "--fault", "G10/SA1", "--groups", "2", "--partitions", "2",
            "--patterns", "32",
        ]);
        assert_eq!(code, 0, "output: {text}");
        assert!(text.contains("fault G10/SA1"));
        assert!(text.contains("final candidates"));
    }

    #[test]
    fn single_fault_bad_spec_is_user_error() {
        let (code, text) = run_to_string(&["diagnose", "s27", "--fault", "G10"]);
        assert_eq!(code, 1);
        assert!(text.contains("NET/SA0"));
        let (code, _) = run_to_string(&["diagnose", "s27", "--fault", "nope/SA1"]);
        assert_eq!(code, 1);
    }

    #[test]
    fn json_coverage_output() {
        let (code, text) = run_to_string(&["--json", "coverage", "s27", "--patterns", "64"]);
        assert_eq!(code, 0);
        let line = text.trim();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"coverage\":1"));
        assert!(line.contains("\"circuit\":\"s27\""));
    }

    #[test]
    fn json_diagnose_output() {
        let (code, text) = run_to_string(&[
            "--json", "diagnose", "s27", "--groups", "2", "--partitions", "2", "--patterns",
            "32", "--faults", "5",
        ]);
        assert_eq!(code, 0);
        assert!(text.contains("\"dr\":"));
        assert!(text.contains("\"dr_by_prefix\":["));
    }

    #[test]
    fn json_errors_are_json() {
        let (code, text) = run_to_string(&["--json", "coverage", "/nope.bench"]);
        assert_eq!(code, 1);
        assert!(text.trim().starts_with("{\"error\":"));
    }

    #[test]
    fn missing_file_is_user_error() {
        let (code, text) = run_to_string(&["parse", "/nonexistent/file.bench"]);
        assert_eq!(code, 1);
        assert!(text.starts_with("error:"));
    }

    #[test]
    fn parse_validates_bench_files() {
        let dir = std::env::temp_dir().join("scanbist-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let (code, text) = run_to_string(&["parse", path.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(text.contains("structurally valid"));

        let bad = dir.join("bad.bench");
        std::fs::write(&bad, "INPUT(a)\ny = NOT(ghost)\n").unwrap();
        let (code, text) = run_to_string(&["parse", bad.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(text.contains("error:"));
    }
}
