//! Command execution for the `scanbist` CLI.

use std::io::Write;

use scan_atpg::{run_atpg, PodemLimits};
use scan_diagnosis::{
    lfsr_patterns, CampaignSpec, NoiseConfig, NoiseModel, PreparedCampaign, RobustPolicy,
};
use scan_netlist::stats::{ClusteringStats, GateCensus};
use scan_netlist::{generate, GateKind, Netlist, ScanView};
use scan_sim::{FaultSimulator, FaultUniverse, PpsfpSimulator};
use scan_soc::SocDescriptor;

use crate::args::{Command, Invocation, HELP};
use crate::json::JsonObject;

/// Executes a parsed command, writing human-readable output to `out`.
/// Returns the process exit code (0 on success, 1 on user error).
///
/// # Panics
///
/// Panics only if writing to `out` fails (broken pipe), matching
/// standard CLI behaviour.
pub fn run<W: Write>(command: &Command, out: &mut W) -> i32 {
    run_invocation(
        &Invocation {
            json: false,
            obs: scan_obs::ObsConfig::disabled(),
            audit_path: None,
            command: command.clone(),
        },
        out,
    )
}

/// Executes a parsed invocation (honouring `--json`).
///
/// # Panics
///
/// Panics only if writing to `out` fails (broken pipe).
pub fn run_invocation<W: Write>(invocation: &Invocation, out: &mut W) -> i32 {
    match execute(
        &invocation.command,
        invocation.json,
        invocation.audit_path.as_deref(),
        out,
    ) {
        Ok(()) => 0,
        Err(message) => {
            if invocation.json {
                let mut o = JsonObject::new();
                o.string("error", &message);
                writeln!(out, "{}", o.finish()).expect("write error message");
            } else {
                writeln!(out, "error: {message}").expect("write error message");
            }
            1
        }
    }
}

#[allow(clippy::too_many_lines)]
fn execute<W: Write>(
    command: &Command,
    json: bool,
    audit: Option<&std::path::Path>,
    out: &mut W,
) -> Result<(), String> {
    match command {
        Command::Help => {
            write!(out, "{HELP}").map_err(io_err)?;
            Ok(())
        }
        Command::Parse { path } => {
            let netlist = load_file(path)?;
            describe(&netlist, out)?;
            writeln!(out, "OK: netlist is structurally valid").map_err(io_err)?;
            Ok(())
        }
        Command::Stats { circuit } => {
            let netlist = load(circuit)?;
            describe(&netlist, out)?;
            let census = GateCensus::compute(&netlist);
            for (kind, count) in GateKind::ALL.iter().zip(census.counts.iter()) {
                if *count > 0 {
                    writeln!(out, "  {kind}: {count}").map_err(io_err)?;
                }
            }
            let view = ScanView::natural(&netlist, true);
            let clustering = ClusteringStats::compute(&netlist, &view);
            writeln!(
                out,
                "cone clustering: mean span {:.1} of {} positions ({:.1}%)",
                clustering.mean_span,
                view.len(),
                clustering.mean_span_fraction * 100.0
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Coverage { circuit, patterns } => {
            let netlist = load(circuit)?;
            let view = ScanView::natural(&netlist, true);
            let pattern_set = lfsr_patterns(&netlist, *patterns, 0xACE1);
            // Fault dropping pays off here: every fault only needs a
            // yes/no, so the bit-parallel engine stops at the first
            // failing pattern word.
            let mut psim =
                PpsfpSimulator::new(&netlist, &view, &pattern_set).map_err(|e| e.to_string())?;
            let universe = FaultUniverse::collapsed(&netlist);
            let detected = universe
                .faults()
                .iter()
                .filter(|f| psim.detects(f))
                .count();
            let fraction = detected as f64 / universe.len().max(1) as f64;
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .number("patterns", *patterns as f64)
                    .number("faults", universe.len() as f64)
                    .number("detected", detected as f64)
                    .number("coverage", fraction);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {detected}/{} collapsed stuck-at faults detected by {patterns} pseudorandom patterns ({:.1}%)",
                netlist.name(),
                universe.len(),
                100.0 * fraction
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Atpg { circuit } => {
            let netlist = load(circuit)?;
            let result = run_atpg(&netlist, &PodemLimits::default(), 1);
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .number("patterns", result.patterns.len() as f64)
                    .number("coverage", result.coverage())
                    .number("redundant", result.redundant as f64)
                    .number("aborted", result.aborted as f64)
                    .number("efficiency", result.efficiency());
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {} patterns, coverage {:.1}%, {} redundant, {} aborted (efficiency {:.1}%)",
                netlist.name(),
                result.patterns.len(),
                result.coverage() * 100.0,
                result.redundant,
                result.aborted,
                result.efficiency() * 100.0
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Diagnose {
            circuit,
            groups,
            partitions,
            patterns,
            faults,
            scheme,
            fault,
            engine,
        } => {
            let netlist = load(circuit)?;
            if let Some(spec_text) = fault {
                if audit.is_some() {
                    return Err(
                        "--audit-out records campaign runs; drop --fault (its evidence \
                         trail is already the full report)"
                            .into(),
                    );
                }
                return diagnose_single_fault(
                    &netlist,
                    spec_text,
                    *groups,
                    *partitions,
                    *patterns,
                    *scheme,
                    out,
                );
            }
            let mut spec = CampaignSpec::new(*patterns, *groups, *partitions);
            spec.num_faults = *faults;
            spec.engine = *engine;
            let campaign =
                PreparedCampaign::from_circuit(&netlist, &spec).map_err(|e| e.to_string())?;
            let report = campaign.run(*scheme).map_err(|e| e.to_string())?;
            if let Some(path) = audit {
                write_audit(&campaign, *scheme, path)?;
            }
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .string("scheme", scheme.name())
                    .number("faults", report.faults as f64)
                    .number("dr", report.dr)
                    .number("dr_pruned", report.dr_pruned)
                    .number("mean_candidates", report.mean_candidates)
                    .number("mean_actual", report.mean_actual)
                    .numbers("dr_by_prefix", &report.dr_by_prefix);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {} faults, scheme {}, DR {:.3} (pruned {:.3}), mean candidates {:.1}, mean failing cells {:.1}",
                netlist.name(),
                report.faults,
                scheme.name(),
                report.dr,
                report.dr_pruned,
                report.mean_candidates,
                report.mean_actual
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Soc {
            path,
            faulty,
            groups,
            partitions,
            scheme,
            engine,
        } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let descriptor = SocDescriptor::parse(&text).map_err(|e| e.to_string())?;
            let soc = descriptor.build().map_err(|e| e.to_string())?;
            let core = soc
                .core_index(faulty)
                .ok_or_else(|| format!("no core named `{faulty}` in {}", soc.name()))?;
            let mut spec = CampaignSpec::new(128, *groups, *partitions);
            spec.num_faults = 100;
            spec.engine = *engine;
            let campaign =
                PreparedCampaign::from_soc(&soc, core, &spec).map_err(|e| e.to_string())?;
            let report = campaign.run(*scheme).map_err(|e| e.to_string())?;
            if let Some(audit_path) = audit {
                write_audit(&campaign, *scheme, audit_path)?;
            }
            let localization = campaign
                .run_localization(*scheme)
                .map_err(|e| e.to_string())?;
            if json {
                let mut o = JsonObject::new();
                o.string("soc", soc.name())
                    .string("faulty_core", faulty)
                    .string("scheme", scheme.name())
                    .number("faults", report.faults as f64)
                    .number("dr", report.dr)
                    .number("dr_pruned", report.dr_pruned)
                    .number("localization_top1", localization.top1_accuracy);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{} (faulty {faulty}): {} faults, scheme {}, DR {:.3} (pruned {:.3}), core localization {:.1}%",
                soc.name(),
                report.faults,
                scheme.name(),
                report.dr,
                report.dr_pruned,
                localization.top1_accuracy * 100.0
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Noise {
            circuit,
            groups,
            partitions,
            patterns,
            faults,
            scheme,
            flip,
            dropout,
            intermittent,
            miss,
            xcorrupt,
            seed,
            votes,
            retries,
            threads,
            engine,
        } => {
            let netlist = load(circuit)?;
            let mut spec = CampaignSpec::new(*patterns, *groups, *partitions);
            spec.num_faults = *faults;
            spec.engine = *engine;
            let campaign =
                PreparedCampaign::from_circuit(&netlist, &spec).map_err(|e| e.to_string())?;
            let mut config = NoiseConfig::noiseless(*seed);
            config.flip_rate = *flip;
            config.dropout_rate = *dropout;
            config.intermittent_rate = *intermittent;
            config.intermittent_miss = *miss;
            config.x_corrupt_fraction = *xcorrupt;
            let noise = NoiseModel::new(config).map_err(|e| e.to_string())?;
            let policy = RobustPolicy {
                max_retry_rounds: *retries,
                votes: *votes,
            };
            let report = campaign
                .run_robust_parallel(*scheme, &noise, &policy, *threads)
                .map_err(|e| e.to_string())?;
            if let Some(path) = audit {
                let trail = campaign
                    .audit_robust(*scheme, &noise, &policy)
                    .map_err(|e| e.to_string())?;
                scan_obs::export::write_ndjson(path, &trail.to_ndjson())
                    .map_err(|e| e.to_string())?;
                eprintln!(
                    "audit: wrote {} robust fault record(s) to {}",
                    trail.faults.len(),
                    path.display()
                );
            }
            if json {
                let mut o = JsonObject::new();
                o.string("circuit", netlist.name())
                    .string("scheme", scheme.name())
                    .number("faults", report.faults as f64)
                    .number("flip_rate", *flip)
                    .number("dropout_rate", *dropout)
                    .number("exact", report.exact as f64)
                    .number("degraded", report.degraded as f64)
                    .number("inconclusive", report.inconclusive as f64)
                    .number("conclusive_fraction", report.conclusive_fraction())
                    .number("dr", report.dr)
                    .number("mean_candidates", report.mean_candidates)
                    .number("mean_actual", report.mean_actual)
                    .number("retry_rounds", report.retry_rounds as f64)
                    .number("retried_sessions", report.retried_sessions as f64)
                    .number("fallbacks", report.fallbacks as f64)
                    .number("strict_failures", report.strict_failures as f64)
                    .number("recovered", report.recovered as f64)
                    .number("hits", report.hits as f64);
                writeln!(out, "{}", o.finish()).map_err(io_err)?;
                return Ok(());
            }
            writeln!(
                out,
                "{}: {} faults under noise (flip {:.3}, dropout {:.3}), scheme {}",
                netlist.name(),
                report.faults,
                flip,
                dropout,
                scheme.name()
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "  confidence: {} exact, {} degraded, {} inconclusive ({:.1}% conclusive)",
                report.exact,
                report.degraded,
                report.inconclusive,
                report.conclusive_fraction() * 100.0
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "  recovery: {} retry round(s), {} session vote(s), {} fallback(s); \
                 {} of {} strict failure(s) recovered",
                report.retry_rounds,
                report.retried_sessions,
                report.fallbacks,
                report.recovered,
                report.strict_failures
            )
            .map_err(io_err)?;
            writeln!(
                out,
                "  DR {:.3} over conclusive faults, mean candidates {:.1}, mean failing cells {:.1}",
                report.dr, report.mean_candidates, report.mean_actual
            )
            .map_err(io_err)?;
            Ok(())
        }
        Command::Bench {
            suite,
            quick,
            repeats,
            warmup,
            out: out_file,
            baseline,
            compare,
            threshold,
        } => {
            // File-vs-file compare mode: no kernels run, so the verdict
            // is deterministic (the regression-gate tests rely on it).
            if let Some(current_path) = compare {
                let baseline_path = baseline.as_deref().expect("parser enforces --baseline");
                let current = load_suite(current_path)?;
                let base = load_suite(baseline_path)?;
                let comparison = scan_bench::suite::compare(&current, &base, *threshold);
                write!(out, "{}", comparison.render(*threshold)).map_err(io_err)?;
                if !comparison.passed() {
                    return Err(format!("bench regression against `{baseline_path}`"));
                }
                return Ok(());
            }
            let mut config = scan_bench::suite::SuiteConfig::new(suite, *quick);
            if let Some(r) = repeats {
                config.repeats = (*r).max(1);
            }
            if let Some(w) = warmup {
                config.warmup = *w;
            }
            let result = scan_bench::suite::run_suite(&config, |name, stats| {
                if stats.dropped > 0 {
                    eprintln!(
                        "bench: {name}: median {} ns ({} sample(s), {} dropped: \
                         {:?} ns above the Q3+1.5·IQR cutoff {} ns)",
                        stats.median_ns,
                        stats.samples,
                        stats.dropped,
                        stats.dropped_ns,
                        stats.cutoff_ns
                    );
                } else {
                    eprintln!(
                        "bench: {name}: median {} ns ({} sample(s), 0 dropped)",
                        stats.median_ns, stats.samples
                    );
                }
            });
            let document = result.to_json();
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| format!("BENCH_{suite}.json"));
            scan_obs::export::write_file(std::path::Path::new(&out_path), &document)
                .map_err(|e| e.to_string())?;
            eprintln!("bench: wrote {out_path}");
            if json {
                write!(out, "{document}").map_err(io_err)?;
            } else {
                write!(out, "{}", result.table()).map_err(io_err)?;
            }
            if let Some(baseline_path) = baseline {
                let base = load_suite(baseline_path)?;
                let comparison = scan_bench::suite::compare(&result, &base, *threshold);
                write!(out, "{}", comparison.render(*threshold)).map_err(io_err)?;
                if !comparison.passed() {
                    return Err(format!("bench regression against `{baseline_path}`"));
                }
            }
            Ok(())
        }
        Command::Explain { path } => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let summary = scan_diagnosis::audit::summarize_ndjson(&text)
                .map_err(|e| format!("{path}: {e}"))?;
            write!(out, "{summary}").map_err(io_err)?;
            Ok(())
        }
        Command::Report {
            files,
            out: out_path,
            title,
        } => run_report(files, out_path, title.as_deref()),
        Command::Lint {
            root,
            config,
            out: report_out,
            graph,
            deny,
        } => run_lint(
            root,
            config.as_deref(),
            report_out.as_deref(),
            graph.as_deref(),
            *deny,
        ),
        Command::ObsQuery { files, spec } => run_obs_query(files, spec, out),
        Command::Serve {
            addr,
            workers,
            queue,
            max_connections,
            deadline_ms,
            drain_ms,
            cache,
        } => {
            let chaos =
                scan_daemon::ChaosConfig::from_env().map_err(|e| format!("SCANBIST_CHAOS: {e}"))?;
            if let Some(chaos) = &chaos {
                eprintln!("scanbistd: chaos injection enabled ({chaos:?})");
            }
            let daemon = scan_daemon::Daemon::start(scan_daemon::DaemonConfig {
                addr: addr.clone(),
                workers: *workers,
                queue_capacity: *queue,
                max_connections: *max_connections,
                default_deadline_ms: *deadline_ms,
                drain_ms: *drain_ms,
                cache_capacity: *cache,
                chaos,
            })
            .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
            writeln!(out, "scanbistd: listening on http://{}", daemon.addr()).map_err(io_err)?;
            // Scripts watch this line for the bound (possibly
            // ephemeral) port, so it must not sit in a block buffer
            // while the daemon blocks below.
            out.flush().map_err(io_err)?;
            daemon.wait();
            writeln!(out, "scanbistd: drained, shutting down").map_err(io_err)?;
            Ok(())
        }
    }
}

/// Evaluates one `obs query` pipeline over the given NDJSON streams
/// and prints the single JSON result document to stdout (the machine
/// payload channel — nothing else goes there).
fn run_obs_query<W: Write>(
    files: &[String],
    spec: &scan_obs::query::QuerySpec,
    out: &mut W,
) -> Result<(), String> {
    let mut streams = Vec::with_capacity(files.len());
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let label = std::path::Path::new(path)
            .file_name()
            .and_then(|s| s.to_str())
            .unwrap_or(path.as_str())
            .to_owned();
        streams.push((label, text));
    }
    let document = scan_obs::query::run(&streams, spec).map_err(|e| e.to_string())?;
    writeln!(out, "{document}").map_err(io_err)?;
    Ok(())
}

/// Renders NDJSON trace/metrics/audit streams into one self-contained
/// HTML dashboard. The dashboard goes to a file and the one-line
/// summary to stderr — stdout stays reserved for machine payloads.
fn run_report(files: &[String], out_path: &str, title: Option<&str>) -> Result<(), String> {
    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let label = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path.as_str())
            .to_owned();
        inputs.push(scan_obs::report::ReportInput { label, text });
    }
    let default_title = format!("scanbist — {}", inputs[0].label);
    let html = scan_obs::report::render(&inputs, title.unwrap_or(&default_title))?;
    scan_obs::export::write_file(std::path::Path::new(out_path), &html)
        .map_err(|e| e.to_string())?;
    eprintln!("report: rendered {} stream(s) to {out_path}", inputs.len());
    Ok(())
}

/// Runs the vendored static-analysis pass (same engine as the
/// standalone `scan-lint` binary). The findings table goes to stderr —
/// stdout stays reserved for machine payloads — and `--deny` turns
/// unsuppressed findings into an error exit.
fn run_lint(
    root: &str,
    config_path: Option<&str>,
    report_out: Option<&str>,
    graph_out: Option<&str>,
    deny: bool,
) -> Result<(), String> {
    let root = std::path::Path::new(root);
    let config = match config_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read `{path}`: {e}"))?;
            scan_lint::Config::parse(&text).map_err(|e| e.to_string())?
        }
        None => scan_lint::load_config(root)?,
    };
    let (report, graph) = scan_lint::lint_workspace_with_graph(root, &config)
        .map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    if let Some(path) = report_out {
        scan_obs::export::write_file(std::path::Path::new(path), &report.render_ndjson())
            .map_err(|e| e.to_string())?;
    }
    if let Some(path) = graph_out {
        scan_obs::export::write_file(std::path::Path::new(path), &graph.render_ndjson())
            .map_err(|e| e.to_string())?;
    }
    eprint!("{}", report.render_table());
    let denied = report.deny_count();
    if deny && denied > 0 {
        return Err(format!("lint: {denied} unsuppressed finding(s)"));
    }
    Ok(())
}

/// Replays the campaign's per-fault audit trail and writes it as
/// NDJSON, creating parent directories as needed.
fn write_audit(
    campaign: &PreparedCampaign,
    scheme: scan_bist::Scheme,
    path: &std::path::Path,
) -> Result<(), String> {
    let trail = campaign.audit(scheme).map_err(|e| e.to_string())?;
    scan_obs::export::write_ndjson(path, &trail.to_ndjson()).map_err(|e| e.to_string())?;
    eprintln!(
        "audit: wrote {} fault record(s) to {}",
        trail.faults.len(),
        path.display()
    );
    Ok(())
}

/// Reads and parses a `BENCH_<suite>.json` baseline document.
fn load_suite(path: &str) -> Result<scan_bench::suite::SuiteResult, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    scan_bench::suite::SuiteResult::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

// Takes the error by value so it slots into `map_err(io_err)` calls.
#[allow(clippy::needless_pass_by_value)]
fn io_err(e: std::io::Error) -> String {
    format!("write failed: {e}")
}

fn diagnose_single_fault<W: Write>(
    netlist: &Netlist,
    spec_text: &str,
    groups: u16,
    partitions: usize,
    patterns: usize,
    scheme: scan_bist::Scheme,
    out: &mut W,
) -> Result<(), String> {
    let (net_name, sa) = spec_text
        .rsplit_once('/')
        .ok_or_else(|| format!("fault `{spec_text}` must look like NET/SA0 or NET/SA1"))?;
    let stuck = match sa.to_ascii_uppercase().as_str() {
        "SA0" => false,
        "SA1" => true,
        other => return Err(format!("unknown stuck value `{other}` (SA0 or SA1)")),
    };
    let net = netlist
        .find_net(net_name)
        .ok_or_else(|| format!("no net named `{net_name}` in {}", netlist.name()))?;
    let fault = scan_sim::Fault::stem(net, stuck);

    let view = ScanView::natural(netlist, true);
    let pattern_set = lfsr_patterns(netlist, patterns, 0xACE1);
    let fsim = FaultSimulator::new(netlist, &view, &pattern_set).map_err(|e| e.to_string())?;
    let errors = fsim.error_map(&fault);
    if !errors.is_detected() {
        writeln!(
            out,
            "fault {} is not detected by {patterns} pseudorandom patterns",
            fault.describe(netlist)
        )
        .map_err(io_err)?;
        return Ok(());
    }
    let plan = scan_diagnosis::DiagnosisPlan::new(
        scan_diagnosis::ChainLayout::single_chain(view.len()),
        patterns,
        &scan_diagnosis::BistConfig::new(groups, partitions, scheme),
    )
    .map_err(|e| e.to_string())?;
    let actual: Vec<usize> = errors.failing_positions().iter().collect();
    let report = scan_diagnosis::report::FaultReport::build(
        fault.describe(netlist),
        &plan,
        errors.iter_bits(),
        &actual,
    );
    write!(out, "{report}").map_err(io_err)?;
    Ok(())
}

fn describe<W: Write>(netlist: &Netlist, out: &mut W) -> Result<(), String> {
    writeln!(
        out,
        "{}: {} inputs, {} outputs, {} flip-flops, {} gates, depth {}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_outputs(),
        netlist.num_dffs(),
        netlist.num_gates(),
        netlist.depth()
    )
    .map_err(io_err)
}

/// Resolves a circuit argument: a known benchmark name or a `.bench`
/// file path.
fn load(circuit: &str) -> Result<Netlist, String> {
    if circuit == "s27" || generate::profile(circuit).is_some() {
        Ok(generate::benchmark(circuit))
    } else {
        load_file(circuit)
    }
}

fn load_file(path: &str) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Netlist::from_bench(name, &text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    fn run_to_string(args: &[&str]) -> (i32, String) {
        let invocation = crate::args::parse_invocation(args.iter().copied()).expect("args parse");
        let mut buffer = Vec::new();
        let code = run_invocation(&invocation, &mut buffer);
        (code, String::from_utf8(buffer).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_to_string(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn stats_on_benchmark() {
        let (code, text) = run_to_string(&["stats", "s27"]);
        assert_eq!(code, 0);
        assert!(text.contains("3 flip-flops"));
        assert!(text.contains("cone clustering"));
    }

    #[test]
    fn coverage_on_benchmark() {
        let (code, text) = run_to_string(&["coverage", "s27", "--patterns", "64"]);
        assert_eq!(code, 0);
        assert!(text.contains("detected"));
    }

    #[test]
    fn atpg_on_benchmark() {
        let (code, text) = run_to_string(&["atpg", "s27"]);
        assert_eq!(code, 0);
        assert!(text.contains("coverage 100.0%"));
    }

    #[test]
    fn diagnose_on_benchmark() {
        let (code, text) = run_to_string(&[
            "diagnose",
            "s27",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
            "--faults",
            "5",
        ]);
        assert_eq!(code, 0);
        assert!(text.contains("DR"));
    }

    #[test]
    fn single_fault_report_mode() {
        let (code, text) = run_to_string(&[
            "diagnose",
            "s27",
            "--fault",
            "G10/SA1",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
        ]);
        assert_eq!(code, 0, "output: {text}");
        assert!(text.contains("fault G10/SA1"));
        assert!(text.contains("final candidates"));
    }

    #[test]
    fn single_fault_bad_spec_is_user_error() {
        let (code, text) = run_to_string(&["diagnose", "s27", "--fault", "G10"]);
        assert_eq!(code, 1);
        assert!(text.contains("NET/SA0"));
        let (code, _) = run_to_string(&["diagnose", "s27", "--fault", "nope/SA1"]);
        assert_eq!(code, 1);
    }

    #[test]
    fn json_coverage_output() {
        let (code, text) = run_to_string(&["--json", "coverage", "s27", "--patterns", "64"]);
        assert_eq!(code, 0);
        let line = text.trim();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"coverage\":1"));
        assert!(line.contains("\"circuit\":\"s27\""));
    }

    #[test]
    fn json_diagnose_output() {
        let (code, text) = run_to_string(&[
            "--json",
            "diagnose",
            "s27",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
            "--faults",
            "5",
        ]);
        assert_eq!(code, 0);
        assert!(text.contains("\"dr\":"));
        assert!(text.contains("\"dr_by_prefix\":["));
    }

    #[test]
    fn noise_on_benchmark() {
        let (code, text) = run_to_string(&[
            "noise",
            "s27",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
            "--faults",
            "5",
            "--flip",
            "0.02",
            "--seed",
            "7",
            "--threads",
            "1",
        ]);
        assert_eq!(code, 0, "output: {text}");
        assert!(text.contains("confidence:"), "{text}");
        assert!(text.contains("recovery:"), "{text}");
    }

    #[test]
    fn noise_rejects_invalid_rate() {
        let (code, text) = run_to_string(&["noise", "s27", "--flip", "1.5"]);
        assert_eq!(code, 1);
        assert!(text.contains("flip_rate"), "{text}");
    }

    #[test]
    fn json_noise_output() {
        let (code, text) = run_to_string(&[
            "--json",
            "noise",
            "s27",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
            "--faults",
            "5",
            "--flip",
            "0",
            "--threads",
            "1",
        ]);
        assert_eq!(code, 0, "output: {text}");
        assert!(text.contains("\"exact\":5"), "{text}");
        assert!(text.contains("\"inconclusive\":0"), "{text}");
        assert!(text.contains("\"retry_rounds\":0"), "{text}");
    }

    #[test]
    fn noise_audit_out_writes_robust_trace() {
        let dir = std::env::temp_dir().join("scanbist-noise-audit-test");
        let path = dir.join("robust.ndjson");
        let path_str = path.to_str().unwrap().to_owned();
        let (code, text) = run_to_string(&[
            "--audit-out",
            &path_str,
            "noise",
            "s27",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
            "--faults",
            "6",
            "--flip",
            "0.1",
            "--seed",
            "3",
            "--threads",
            "1",
        ]);
        assert_eq!(code, 0, "output: {text}");
        let trace = std::fs::read_to_string(&path).expect("robust audit written");
        assert!(trace.starts_with("{\"type\":\"meta\""), "{trace}");
        assert!(trace.contains("\"kind\":\"robust-audit\""), "{trace}");
        assert!(trace.contains("\"confidence\""), "{trace}");

        let (code, summary) = run_to_string(&["explain", &path_str]);
        assert_eq!(code, 0, "output: {summary}");
        assert!(summary.contains("confidence:"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_errors_are_json() {
        let (code, text) = run_to_string(&["--json", "coverage", "/nope.bench"]);
        assert_eq!(code, 1);
        assert!(text.trim().starts_with("{\"error\":"));
    }

    #[test]
    fn missing_file_is_user_error() {
        let (code, text) = run_to_string(&["parse", "/nonexistent/file.bench"]);
        assert_eq!(code, 1);
        assert!(text.starts_with("error:"));
    }

    #[test]
    fn audit_out_writes_explainable_trace() {
        let dir = std::env::temp_dir().join("scanbist-audit-test");
        let path = dir.join("nested").join("audit.ndjson");
        let path_str = path.to_str().unwrap().to_owned();
        let (code, text) = run_to_string(&[
            "--audit-out",
            &path_str,
            "diagnose",
            "s27",
            "--groups",
            "2",
            "--partitions",
            "2",
            "--patterns",
            "32",
            "--faults",
            "5",
        ]);
        assert_eq!(code, 0, "output: {text}");
        let trace = std::fs::read_to_string(&path).expect("audit file written");
        assert!(trace.starts_with("{\"type\":\"meta\""), "{trace}");
        assert!(trace.contains("\"type\":\"fault\""), "{trace}");
        assert!(trace.contains("\"failing_groups\""), "{trace}");

        let (code, summary) = run_to_string(&["explain", &path_str]);
        assert_eq!(code, 0, "output: {summary}");
        assert!(summary.contains("diagnosis audit: 5 fault(s)"), "{summary}");
        assert!(summary.contains("convergence"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_out_rejects_single_fault_mode() {
        let (code, text) = run_to_string(&[
            "--audit-out",
            "/tmp/x.ndjson",
            "diagnose",
            "s27",
            "--fault",
            "G10/SA1",
        ]);
        assert_eq!(code, 1);
        assert!(text.contains("--audit-out"), "{text}");
    }

    #[test]
    fn explain_rejects_non_audit_input() {
        let dir = std::env::temp_dir().join("scanbist-explain-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.ndjson");
        std::fs::write(&path, "definitely not json\n").unwrap();
        let (code, text) = run_to_string(&["explain", path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(text.starts_with("error:"), "{text}");
        let (code, _) = run_to_string(&["explain", "/nonexistent/audit.ndjson"]);
        assert_eq!(code, 1);
    }

    fn suite_fixture(median_a: u64) -> String {
        format!(
            concat!(
                r#"{{"version":1,"suite":"diagnosis","quick":false,"repeats":5,"warmup":1,"#,
                r#""kernels":{{"fault_sim":{{"median_ns":{},"p95_ns":1100,"iqr_ns":50,"samples":5,"dropped":0}},"#,
                r#""misr_compaction":{{"median_ns":2000,"p95_ns":2100,"iqr_ns":40,"samples":5,"dropped":0}}}}}}"#,
            ),
            median_a
        )
    }

    #[test]
    fn bench_compare_gates_a_synthetic_slowdown() {
        let dir = std::env::temp_dir().join("scanbist-bench-compare-test");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let same = dir.join("same.json");
        let slow = dir.join("slow.json");
        std::fs::write(&baseline, suite_fixture(1_000)).unwrap();
        std::fs::write(&same, suite_fixture(1_000)).unwrap();
        // Synthetic 2x slowdown on one kernel.
        std::fs::write(&slow, suite_fixture(2_000)).unwrap();

        let (code, text) = run_to_string(&[
            "bench",
            "--compare",
            same.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "identical files must pass: {text}");
        assert!(text.contains("PASS"), "{text}");

        let (code, text) = run_to_string(&[
            "bench",
            "--compare",
            slow.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
        ]);
        assert_eq!(code, 1, "2x slowdown must fail: {text}");
        assert!(text.contains("REGRESSION fault_sim"), "{text}");

        // A generous threshold lets the same slowdown through.
        let (code, _) = run_to_string(&[
            "bench",
            "--compare",
            slow.to_str().unwrap(),
            "--baseline",
            baseline.to_str().unwrap(),
            "--threshold",
            "1.5",
        ]);
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_compare_rejects_malformed_baselines() {
        let dir = std::env::temp_dir().join("scanbist-bench-badfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(
            &bad,
            "{\"version\":1,\"suite\":\"x\",\"repeats\":1,\"warmup\":0,\"kernels\":{}}",
        )
        .unwrap();
        let (code, text) = run_to_string(&[
            "bench",
            "--compare",
            bad.to_str().unwrap(),
            "--baseline",
            bad.to_str().unwrap(),
        ]);
        assert_eq!(code, 1);
        assert!(text.contains("kernels"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_quick_run_writes_baseline_and_passes_self_compare() {
        let dir = std::env::temp_dir().join("scanbist-bench-run-test");
        let out_path = dir.join("BENCH_smoke.json");
        let out_str = out_path.to_str().unwrap().to_owned();
        let (code, text) = run_to_string(&[
            "bench",
            "--quick",
            "--suite",
            "smoke",
            "--repeats",
            "1",
            "--warmup",
            "0",
            "--out",
            &out_str,
        ]);
        assert_eq!(code, 0, "output: {text}");
        assert!(text.contains("fault_sim"), "{text}");
        let document = std::fs::read_to_string(&out_path).expect("bench output written");
        let parsed = scan_bench::suite::SuiteResult::from_json(&document).unwrap();
        assert_eq!(parsed.suite, "smoke");
        assert_eq!(parsed.kernels.len(), 9);

        // The file it just wrote is its own fixed point under compare.
        let (code, text) = run_to_string(&["bench", "--compare", &out_str, "--baseline", &out_str]);
        assert_eq!(code, 0, "output: {text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_renders_html_dashboard() {
        let dir = std::env::temp_dir().join("scanbist-report-cmd-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.ndjson");
        std::fs::write(
            &trace,
            concat!(
                "{\"type\":\"meta\",\"version\":1,\"spans\":1,\"counters\":1,\"histograms\":0}\n",
                "{\"type\":\"span\",\"path\":\"campaign\",\"thread\":0,\"start_ns\":0,\"end_ns\":10,\"dur_ns\":10}\n",
                "{\"type\":\"counter\",\"name\":\"faults\",\"value\":5}\n",
            ),
        )
        .unwrap();
        let out = dir.join("dash.html");
        let out_str = out.to_str().unwrap().to_owned();
        let (code, text) = run_to_string(&["report", trace.to_str().unwrap(), "--out", &out_str]);
        assert_eq!(code, 0, "output: {text}");
        assert!(text.is_empty(), "stdout must stay clean: {text}");
        let html = std::fs::read_to_string(&out).unwrap();
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("campaign"), "span path in dashboard");

        let (code, _) = run_to_string(&["report", "/nonexistent/t.ndjson"]);
        assert_eq!(code, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_validates_bench_files() {
        let dir = std::env::temp_dir().join("scanbist-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inv.bench");
        std::fs::write(&path, "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let (code, text) = run_to_string(&["parse", path.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert!(text.contains("structurally valid"));

        let bad = dir.join("bad.bench");
        std::fs::write(&bad, "INPUT(a)\ny = NOT(ghost)\n").unwrap();
        let (code, text) = run_to_string(&["parse", bad.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(text.contains("error:"));
    }
}
