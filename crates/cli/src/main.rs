//! `scanbist` — command-line front end for the scan-BIST diagnosis
//! workspace. See `scanbist help`.

use scan_bist_cli::{parse_invocation, run_invocation, HELP};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let invocation = match parse_invocation(arg_refs.iter().copied()) {
        Ok(invocation) => invocation,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    };
    scan_obs::init(&invocation.obs);
    if invocation.obs.is_enabled() {
        scan_obs::context::init_from_env("scanbist");
    }
    let telemetry = match scan_obs::start_telemetry(&invocation.obs) {
        Ok(telemetry) => telemetry,
        Err(e) => {
            eprintln!("error: could not start live telemetry: {e}");
            std::process::exit(2);
        }
    };
    let code = run_invocation(&invocation, &mut std::io::stdout().lock());
    telemetry.stop();
    if code != 0 {
        // Black-box the failure: a nonzero exit dumps the flight ring
        // (no-op unless --flight-recorder installed one; panics dump
        // via the recorder's hook before we ever get here).
        match scan_obs::recorder::dump_on_error() {
            Ok(Some(path)) => eprintln!("flight recorder: dumped to {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: could not write flight-recorder dump: {e}"),
        }
    }
    if let Err(e) = scan_obs::finish(&invocation.obs) {
        eprintln!("warning: could not write observability exports: {e}");
    }
    std::process::exit(code);
}
