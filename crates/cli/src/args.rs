//! Minimal dependency-free argument parsing for the `scanbist` CLI.

use std::error::Error;
use std::fmt;

use scan_bist::Scheme;
use scan_sim::SimEngine;

/// A parsed `scanbist` invocation.
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// `scanbist parse <file.bench>` — parse and validate a netlist.
    Parse {
        /// Path to the `.bench` file.
        path: String,
    },
    /// `scanbist stats <circuit>` — structural statistics.
    Stats {
        /// Benchmark name or `.bench` path.
        circuit: String,
    },
    /// `scanbist coverage <circuit> [--patterns N]` — pseudorandom
    /// stuck-at coverage.
    Coverage {
        /// Benchmark name or `.bench` path.
        circuit: String,
        /// Pattern budget.
        patterns: usize,
    },
    /// `scanbist atpg <circuit>` — deterministic test generation.
    Atpg {
        /// Benchmark name or `.bench` path.
        circuit: String,
    },
    /// `scanbist diagnose <circuit> [options]` — fault-injection
    /// diagnosis campaign.
    Diagnose {
        /// Benchmark name or `.bench` path.
        circuit: String,
        /// Groups per partition.
        groups: u16,
        /// Number of partitions.
        partitions: usize,
        /// Patterns per session.
        patterns: usize,
        /// Faults to inject.
        faults: usize,
        /// Partitioning scheme.
        scheme: Scheme,
        /// Diagnose one named fault (`NET/SA0` or `NET/SA1`) and print
        /// its full evidence trail instead of running a campaign.
        fault: Option<String>,
        /// Fault-simulation engine preparing the campaign.
        engine: SimEngine,
    },
    /// `scanbist soc <descriptor.soc> --faulty <core> [options]` — SOC
    /// diagnosis with one faulty core.
    Soc {
        /// Path to the `.soc` descriptor.
        path: String,
        /// Name of the assumed-faulty core.
        faulty: String,
        /// Groups per partition.
        groups: u16,
        /// Number of partitions.
        partitions: usize,
        /// Partitioning scheme.
        scheme: Scheme,
        /// Fault-simulation engine preparing the campaign.
        engine: SimEngine,
    },
    /// `scanbist noise <circuit> [options]` — fault-tolerant diagnosis
    /// campaign under injected verdict noise (see
    /// `docs/ROBUSTNESS.md`).
    Noise {
        /// Benchmark name or `.bench` path.
        circuit: String,
        /// Groups per partition.
        groups: u16,
        /// Number of partitions.
        partitions: usize,
        /// Patterns per session.
        patterns: usize,
        /// Faults to inject.
        faults: usize,
        /// Partitioning scheme.
        scheme: Scheme,
        /// Verdict flip probability per session.
        flip: f64,
        /// Session dropout (lost-verdict) probability.
        dropout: f64,
        /// Fraction of faults that behave intermittently.
        intermittent: f64,
        /// Per-session miss probability for intermittent faults.
        miss: f64,
        /// Fraction of scan cells corrupted to X by noise.
        xcorrupt: f64,
        /// Noise stream seed.
        seed: u64,
        /// Ballots per retried session (normalized odd).
        votes: usize,
        /// Maximum retry rounds before weighted-voting fallback.
        retries: usize,
        /// Worker threads (`0` = one per available core).
        threads: usize,
        /// Fault-simulation engine preparing the campaign.
        engine: SimEngine,
    },
    /// `scanbist bench [options]` — calibrated performance kernels
    /// with baseline comparison (see `docs/BENCHMARKS.md`).
    Bench {
        /// Suite name recorded in the output (`diagnosis` by default).
        suite: String,
        /// Small circuit / low repeat counts for smoke runs.
        quick: bool,
        /// Timed repetitions per kernel (`None` = suite default).
        repeats: Option<usize>,
        /// Warmup repetitions per kernel (`None` = suite default).
        warmup: Option<usize>,
        /// Where to write the `BENCH_<suite>.json` document
        /// (`None` = `BENCH_<suite>.json` in the working directory).
        out: Option<String>,
        /// Baseline file to compare the fresh run against.
        baseline: Option<String>,
        /// Compare this previously written result file against
        /// `--baseline` instead of running the kernels.
        compare: Option<String>,
        /// Regression threshold as a fraction (0.5 = flag kernels more
        /// than 50% slower than baseline).
        threshold: f64,
    },
    /// `scanbist explain <audit.ndjson>` — summarize a diagnosis audit
    /// trace written by `--audit-out`.
    Explain {
        /// Path to the NDJSON audit trace.
        path: String,
    },
    /// `scanbist report <trace.ndjson>... [options]` — render NDJSON
    /// trace/metrics/audit streams into one self-contained static HTML
    /// dashboard (see `docs/OBSERVABILITY.md`).
    Report {
        /// NDJSON trace / metrics-snapshot files to render, in order.
        files: Vec<String>,
        /// Output HTML path (`report.html` by default).
        out: String,
        /// Dashboard title (defaults to the first input's name).
        title: Option<String>,
    },
    /// `scanbist lint [options]` — run the vendored static-analysis
    /// pass over the workspace sources (see `docs/LINTS.md`).
    Lint {
        /// Workspace root to lint (`.` by default).
        root: String,
        /// Explicit `lint.toml` path (`<root>/lint.toml` by default).
        config: Option<String>,
        /// Where to write the findings as NDJSON.
        out: Option<String>,
        /// Where to write the workspace call graph as NDJSON.
        graph: Option<String>,
        /// Exit nonzero if any unsuppressed finding remains.
        deny: bool,
    },
    /// `scanbist obs query <stream.ndjson>... [options]` — filter,
    /// group, and aggregate NDJSON observability streams with the
    /// [`scan_obs::query`] engine (see `docs/OBSERVABILITY.md`).
    ObsQuery {
        /// NDJSON streams to query, in order.
        files: Vec<String>,
        /// The assembled filter/group/aggregate pipeline.
        spec: scan_obs::query::QuerySpec,
    },
    /// `scanbist serve [options]` — run `scanbistd`, the
    /// diagnosis-as-a-service daemon (see `docs/DAEMON.md`). Blocks
    /// until drained via `POST /admin/drain`.
    Serve {
        /// Listen address (`host:port`; port `0` picks an ephemeral
        /// port and prints it).
        addr: String,
        /// Diagnosis worker threads (`0` = one per available core).
        workers: usize,
        /// Bounded admission-queue capacity; a full queue sheds whole
        /// batches with `429`.
        queue: usize,
        /// Maximum concurrent client connections.
        max_connections: usize,
        /// Default per-request deadline in milliseconds (requests may
        /// lower it with `deadline_ms`).
        deadline_ms: u64,
        /// Grace period for in-flight batches during drain.
        drain_ms: u64,
        /// Plan-cache capacity (distinct circuit configurations).
        cache: usize,
    },
    /// `scanbist help` / `--help`.
    Help,
}

/// Error produced when the command line cannot be parsed.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

fn scheme_from(name: &str) -> Result<Scheme, ParseArgsError> {
    match name {
        "two-step" => Ok(Scheme::TWO_STEP_DEFAULT),
        "random" => Ok(Scheme::RandomSelection),
        "interval" => Ok(Scheme::IntervalBased),
        "fixed" => Ok(Scheme::FixedInterval),
        other => Err(ParseArgsError(format!(
            "unknown scheme `{other}` (expected two-step|random|interval|fixed)"
        ))),
    }
}

fn engine_from(name: &str) -> Result<SimEngine, ParseArgsError> {
    match name {
        "bitpar" => Ok(SimEngine::BitParallel),
        "event" => Ok(SimEngine::EventDriven),
        other => Err(ParseArgsError(format!(
            "unknown engine `{other}` (expected bitpar|event)"
        ))),
    }
}

fn take_value<'a, I>(flag: &str, words: &mut I) -> Result<&'a str, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    words
        .next()
        .ok_or_else(|| ParseArgsError(format!("flag `{flag}` needs a value")))
}

/// A parsed invocation: the command plus global output options.
#[derive(Clone, PartialEq, Debug)]
pub struct Invocation {
    /// Emit one JSON object instead of human-readable text (supported
    /// by `coverage`, `atpg`, `diagnose`, `noise`, and `soc`).
    pub json: bool,
    /// Observability settings from the global `--trace` /
    /// `--trace-out` / `--metrics-out` / `--profile` /
    /// `--profile-out` / `--progress` flags.
    pub obs: scan_obs::ObsConfig,
    /// Where diagnosis audit traces (NDJSON, one event per fault) are
    /// written; from the global `--audit-out <path>` flag. Honoured by
    /// `diagnose` and `noise` campaigns.
    pub audit_path: Option<std::path::PathBuf>,
    /// The command to execute.
    pub command: Command,
}

/// Parses the full argument list including global flags (`--json`,
/// `--trace`, `--trace-out <path>`, `--metrics-out <path>`,
/// `--profile`, `--profile-out <path>`, `--audit-out <path>`,
/// `--progress`, and `--serve-metrics <addr>`, all of which appear
/// before the subcommand).
///
/// # Errors
///
/// Returns [`ParseArgsError`] for any malformed invocation.
pub fn parse_invocation<'a, I>(args: I) -> Result<Invocation, ParseArgsError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut rest: Vec<&str> = args.into_iter().collect();
    let mut json = false;
    let mut obs = scan_obs::ObsConfig::disabled();
    let mut audit_path = None;
    loop {
        match rest.first().copied() {
            Some("--json") => {
                json = true;
                rest.remove(0);
            }
            Some("--trace") => {
                obs.trace = true;
                obs.summary = true;
                rest.remove(0);
            }
            Some("--trace-out") => {
                rest.remove(0);
                let path = take_front("--trace-out", &mut rest)?;
                obs.trace = true;
                obs.summary = true;
                obs.trace_path = Some(path.into());
            }
            Some("--metrics-out") => {
                rest.remove(0);
                let path = take_front("--metrics-out", &mut rest)?;
                obs.metrics = true;
                obs.metrics_path = Some(path.into());
            }
            Some("--profile") => {
                obs.profile = true;
                rest.remove(0);
            }
            Some("--profile-out") => {
                rest.remove(0);
                let path = take_front("--profile-out", &mut rest)?;
                obs.profile = true;
                obs.profile_path = Some(path.into());
            }
            Some("--audit-out") => {
                rest.remove(0);
                let path = take_front("--audit-out", &mut rest)?;
                audit_path = Some(path.into());
            }
            Some("--progress") => {
                obs.progress = true;
                rest.remove(0);
            }
            Some("--serve-metrics") => {
                rest.remove(0);
                let addr = take_front("--serve-metrics", &mut rest)?;
                obs.serve_addr = Some(addr);
            }
            Some("--slo") => {
                rest.remove(0);
                let path = take_front("--slo", &mut rest)?;
                obs.slo_path = Some(path.into());
            }
            Some("--flight-recorder") => {
                rest.remove(0);
                let path = take_front("--flight-recorder", &mut rest)?;
                obs.flight_path = Some(path.into());
            }
            _ => break,
        }
    }
    if obs.trace && obs.trace_path.is_none() {
        obs.trace_path = Some("trace_scanbist.ndjson".into());
    }
    let command = parse_args(rest)?;
    if matches!(command, Command::Serve { .. }) {
        // The daemon serves /metrics and dashboard sparklines from its
        // own listener, which is only useful if counters and the
        // time-series sampler are actually running.
        obs.metrics = true;
        obs.timeseries = true;
    }
    Ok(Invocation {
        json,
        obs,
        audit_path,
        command,
    })
}

fn take_front(flag: &str, rest: &mut Vec<&str>) -> Result<String, ParseArgsError> {
    if rest.is_empty() {
        return Err(ParseArgsError(format!("flag `{flag}` needs a value")));
    }
    Ok(rest.remove(0).to_owned())
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns [`ParseArgsError`] with a human-readable message for any
/// malformed invocation.
pub fn parse_args<'a, I>(args: I) -> Result<Command, ParseArgsError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut words = args.into_iter();
    let Some(command) = words.next() else {
        return Ok(Command::Help);
    };
    match command {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "parse" => {
            let path = take_value("parse", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Parse { path })
        }
        "stats" => {
            let circuit = take_value("stats", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Stats { circuit })
        }
        "coverage" => {
            let circuit = take_value("coverage", &mut words)?.to_owned();
            let mut patterns = 128usize;
            while let Some(flag) = words.next() {
                match flag {
                    "--patterns" => patterns = parse_num(take_value(flag, &mut words)?)?,
                    other => return Err(unknown_flag(other)),
                }
            }
            Ok(Command::Coverage { circuit, patterns })
        }
        "atpg" => {
            let circuit = take_value("atpg", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Atpg { circuit })
        }
        "diagnose" => parse_diagnose(words),
        "soc" => parse_soc(words),
        "noise" => parse_noise(words),
        "bench" => parse_bench(words),
        "report" => parse_report(words),
        "lint" => parse_lint(words),
        "serve" => parse_serve(words),
        "explain" => {
            let path = take_value("explain", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Explain { path })
        }
        "obs" => match words.next() {
            Some("query") => parse_obs_query(words),
            Some(other) => Err(ParseArgsError(format!(
                "unknown obs subcommand `{other}` (expected `query`)"
            ))),
            None => Err(ParseArgsError(
                "`obs` requires a subcommand (try `scanbist obs query`)".into(),
            )),
        },
        other => Err(ParseArgsError(format!(
            "unknown command `{other}` (try `scanbist help`)"
        ))),
    }
}

fn parse_diagnose<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let circuit = take_value("diagnose", &mut words)?.to_owned();
    let mut groups = 8u16;
    let mut partitions = 8usize;
    let mut patterns = 128usize;
    let mut faults = 100usize;
    let mut scheme = Scheme::TWO_STEP_DEFAULT;
    let mut fault = None;
    let mut engine = SimEngine::default();
    while let Some(flag) = words.next() {
        match flag {
            "--groups" => groups = parse_num(take_value(flag, &mut words)?)?,
            "--partitions" => partitions = parse_num(take_value(flag, &mut words)?)?,
            "--patterns" => patterns = parse_num(take_value(flag, &mut words)?)?,
            "--faults" => faults = parse_num(take_value(flag, &mut words)?)?,
            "--scheme" => scheme = scheme_from(take_value(flag, &mut words)?)?,
            "--fault" => fault = Some(take_value(flag, &mut words)?.to_owned()),
            "--engine" => engine = engine_from(take_value(flag, &mut words)?)?,
            other => return Err(unknown_flag(other)),
        }
    }
    Ok(Command::Diagnose {
        circuit,
        groups,
        partitions,
        patterns,
        faults,
        scheme,
        fault,
        engine,
    })
}

fn parse_soc<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let path = take_value("soc", &mut words)?.to_owned();
    let mut faulty: Option<String> = None;
    let mut groups = 16u16;
    let mut partitions = 8usize;
    let mut scheme = Scheme::TWO_STEP_DEFAULT;
    let mut engine = SimEngine::default();
    while let Some(flag) = words.next() {
        match flag {
            "--faulty" => faulty = Some(take_value(flag, &mut words)?.to_owned()),
            "--groups" => groups = parse_num(take_value(flag, &mut words)?)?,
            "--partitions" => partitions = parse_num(take_value(flag, &mut words)?)?,
            "--scheme" => scheme = scheme_from(take_value(flag, &mut words)?)?,
            "--engine" => engine = engine_from(take_value(flag, &mut words)?)?,
            other => return Err(unknown_flag(other)),
        }
    }
    let faulty = faulty.ok_or_else(|| ParseArgsError("`soc` requires --faulty <core>".into()))?;
    Ok(Command::Soc {
        path,
        faulty,
        groups,
        partitions,
        scheme,
        engine,
    })
}

fn parse_noise<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let circuit = take_value("noise", &mut words)?.to_owned();
    let mut groups = 4u16;
    let mut partitions = 8usize;
    let mut patterns = 128usize;
    let mut faults = 100usize;
    let mut scheme = Scheme::TWO_STEP_DEFAULT;
    let mut flip = 0.02f64;
    let mut dropout = 0.0f64;
    let mut intermittent = 0.0f64;
    let mut miss = 0.0f64;
    let mut xcorrupt = 0.0f64;
    let mut seed = 2003u64;
    let mut votes = 3usize;
    let mut retries = 2usize;
    let mut threads = 0usize;
    let mut engine = SimEngine::default();
    while let Some(flag) = words.next() {
        match flag {
            "--groups" => groups = parse_num(take_value(flag, &mut words)?)?,
            "--partitions" => partitions = parse_num(take_value(flag, &mut words)?)?,
            "--patterns" => patterns = parse_num(take_value(flag, &mut words)?)?,
            "--faults" => faults = parse_num(take_value(flag, &mut words)?)?,
            "--scheme" => scheme = scheme_from(take_value(flag, &mut words)?)?,
            "--flip" => flip = parse_num(take_value(flag, &mut words)?)?,
            "--dropout" => dropout = parse_num(take_value(flag, &mut words)?)?,
            "--intermittent" => intermittent = parse_num(take_value(flag, &mut words)?)?,
            "--miss" => miss = parse_num(take_value(flag, &mut words)?)?,
            "--xcorrupt" => xcorrupt = parse_num(take_value(flag, &mut words)?)?,
            "--seed" => seed = parse_num(take_value(flag, &mut words)?)?,
            "--votes" => votes = parse_num(take_value(flag, &mut words)?)?,
            "--retries" => retries = parse_num(take_value(flag, &mut words)?)?,
            "--threads" => threads = parse_num(take_value(flag, &mut words)?)?,
            "--engine" => engine = engine_from(take_value(flag, &mut words)?)?,
            other => return Err(unknown_flag(other)),
        }
    }
    Ok(Command::Noise {
        circuit,
        groups,
        partitions,
        patterns,
        faults,
        scheme,
        flip,
        dropout,
        intermittent,
        miss,
        xcorrupt,
        seed,
        votes,
        retries,
        threads,
        engine,
    })
}

fn parse_bench<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let mut suite = "diagnosis".to_owned();
    let mut quick = false;
    let mut repeats = None;
    let mut warmup = None;
    let mut out = None;
    let mut baseline = None;
    let mut compare = None;
    let mut threshold = 0.5f64;
    while let Some(flag) = words.next() {
        match flag {
            "--suite" => take_value(flag, &mut words)?.clone_into(&mut suite),
            "--quick" => quick = true,
            "--repeats" => repeats = Some(parse_num(take_value(flag, &mut words)?)?),
            "--warmup" => warmup = Some(parse_num(take_value(flag, &mut words)?)?),
            "--out" => out = Some(take_value(flag, &mut words)?.to_owned()),
            "--baseline" => baseline = Some(take_value(flag, &mut words)?.to_owned()),
            "--compare" => compare = Some(take_value(flag, &mut words)?.to_owned()),
            "--threshold" => {
                threshold = parse_num(take_value(flag, &mut words)?)?;
                if !(threshold.is_finite() && threshold >= 0.0) {
                    return Err(ParseArgsError(
                        "`--threshold` must be a non-negative fraction".into(),
                    ));
                }
            }
            other => return Err(unknown_flag(other)),
        }
    }
    if compare.is_some() && baseline.is_none() {
        return Err(ParseArgsError(
            "`--compare` requires `--baseline <file>`".into(),
        ));
    }
    Ok(Command::Bench {
        suite,
        quick,
        repeats,
        warmup,
        out,
        baseline,
        compare,
        threshold,
    })
}

fn parse_report<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let mut files = Vec::new();
    let mut out = "report.html".to_owned();
    let mut title = None;
    while let Some(word) = words.next() {
        match word {
            "--out" => take_value(word, &mut words)?.clone_into(&mut out),
            "--title" => title = Some(take_value(word, &mut words)?.to_owned()),
            flag if flag.starts_with("--") => return Err(unknown_flag(flag)),
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        return Err(ParseArgsError(
            "`report` requires at least one NDJSON input file".into(),
        ));
    }
    Ok(Command::Report { files, out, title })
}

fn parse_lint<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let mut root = ".".to_owned();
    let mut config = None;
    let mut out = None;
    let mut graph = None;
    let mut deny = false;
    while let Some(flag) = words.next() {
        match flag {
            "--root" => take_value(flag, &mut words)?.clone_into(&mut root),
            "--config" => config = Some(take_value(flag, &mut words)?.to_owned()),
            "--out" => out = Some(take_value(flag, &mut words)?.to_owned()),
            "--graph" => graph = Some(take_value(flag, &mut words)?.to_owned()),
            "--deny" => deny = true,
            other => return Err(unknown_flag(other)),
        }
    }
    Ok(Command::Lint {
        root,
        config,
        out,
        graph,
        deny,
    })
}

fn parse_serve<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let mut addr = "127.0.0.1:0".to_owned();
    let mut workers = 0usize;
    let mut queue = 64usize;
    let mut max_connections = 64usize;
    let mut deadline_ms = 2_000u64;
    let mut drain_ms = 5_000u64;
    let mut cache = 8usize;
    while let Some(flag) = words.next() {
        match flag {
            "--addr" => take_value(flag, &mut words)?.clone_into(&mut addr),
            "--workers" => workers = parse_num(take_value(flag, &mut words)?)?,
            "--queue" => queue = parse_num(take_value(flag, &mut words)?)?,
            "--max-connections" => {
                max_connections = parse_num(take_value(flag, &mut words)?)?;
            }
            "--deadline-ms" => deadline_ms = parse_num(take_value(flag, &mut words)?)?,
            "--drain-ms" => drain_ms = parse_num(take_value(flag, &mut words)?)?,
            "--cache" => cache = parse_num(take_value(flag, &mut words)?)?,
            other => return Err(unknown_flag(other)),
        }
    }
    if queue == 0 {
        return Err(ParseArgsError(
            "`--queue` must be at least 1 (the queue is bounded, not absent)".into(),
        ));
    }
    Ok(Command::Serve {
        addr,
        workers,
        queue,
        max_connections,
        deadline_ms,
        drain_ms,
        cache,
    })
}

fn parse_obs_query<'a, I>(mut words: I) -> Result<Command, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    let mut files = Vec::new();
    let mut spec = scan_obs::query::QuerySpec::default();
    while let Some(word) = words.next() {
        match word {
            "--type" => {
                // Repeatable, and each value may be comma-separated.
                let value = take_value(word, &mut words)?;
                spec.types
                    .extend(value.split(',').filter(|t| !t.is_empty()).map(str::to_owned));
            }
            "--trace-id" => spec.trace = Some(take_value(word, &mut words)?.to_owned()),
            "--span" => spec.span_glob = Some(take_value(word, &mut words)?.to_owned()),
            "--since" => spec.since_ns = Some(parse_num(take_value(word, &mut words)?)?),
            "--until" => spec.until_ns = Some(parse_num(take_value(word, &mut words)?)?),
            "--group-by" => spec.group_by = Some(take_value(word, &mut words)?.to_owned()),
            "--agg" => {
                spec.agg = scan_obs::query::Agg::parse(take_value(word, &mut words)?)
                    .map_err(ParseArgsError)?;
            }
            "--field" => spec.field = Some(take_value(word, &mut words)?.to_owned()),
            "--top-slowest" => {
                spec.top_slowest = Some(parse_num(take_value(word, &mut words)?)?);
            }
            flag if flag.starts_with("--") => return Err(unknown_flag(flag)),
            file => files.push(file.to_owned()),
        }
    }
    if files.is_empty() {
        return Err(ParseArgsError(
            "`obs query` requires at least one NDJSON input file".into(),
        ));
    }
    Ok(Command::ObsQuery { files, spec })
}

fn ensure_done<'a, I: Iterator<Item = &'a str>>(mut words: I) -> Result<(), ParseArgsError> {
    match words.next() {
        None => Ok(()),
        Some(extra) => Err(ParseArgsError(format!("unexpected argument `{extra}`"))),
    }
}

fn unknown_flag(flag: &str) -> ParseArgsError {
    ParseArgsError(format!("unknown flag `{flag}`"))
}

fn parse_num<T: std::str::FromStr>(text: &str) -> Result<T, ParseArgsError> {
    text.parse()
        .map_err(|_| ParseArgsError(format!("`{text}` is not a valid number")))
}

/// The help text printed by `scanbist help`.
pub const HELP: &str = "\
scanbist — partition-based scan-BIST failing-cell diagnosis

USAGE:
  scanbist [GLOBAL FLAGS] <command> ...

GLOBAL FLAGS (before the command):
  --json                emit one JSON object instead of text
  --trace               record spans/metrics; write trace_scanbist.ndjson
                        and print a span-tree summary to stderr
  --trace-out <path>    like --trace, NDJSON stream to <path>
  --metrics-out <path>  write a JSON metrics snapshot to <path>
  --profile             print a span self-time hot-spot table to stderr
  --profile-out <path>  like --profile, plus a collapsed-stack
                        (flamegraph folded format) export to <path>
  --audit-out <path>    write a per-fault diagnosis audit trace
                        (NDJSON) during `diagnose`/`noise` campaigns
  --progress            periodic per-shard progress lines on stderr
  --serve-metrics <addr>  serve live /metrics (Prometheus text),
                        /metrics.json, /alerts.json, and /healthz
                        over HTTP on <addr> (e.g. 127.0.0.1:0) for
                        the run's duration; implies background
                        sampling
  --slo <slo.toml>      load declarative alert rules and evaluate
                        them on every sampler tick; firing/resolving
                        alerts land in the NDJSON stream, /metrics,
                        /alerts.json, and `scanbist report`
  --flight-recorder <path>  keep a bounded in-memory ring of recent
                        spans/counter deltas/alerts and dump it as a
                        versioned NDJSON black box (plus a .txt
                        summary) on panic or nonzero exit

COMMANDS:
  scanbist parse <file.bench>
  scanbist stats <circuit>
  scanbist coverage <circuit> [--patterns N]
  scanbist atpg <circuit>
  scanbist diagnose <circuit> [--groups G] [--partitions P]
                    [--patterns N] [--faults F]
                    [--scheme two-step|random|interval|fixed]
                    [--engine bitpar|event]   (fault-sim engine;
                    bitpar = 64-wide bit-parallel PPSFP, the default;
                    event = event-driven reference — bit-identical)
                    [--fault NET/SA0]   (single-fault evidence report)
  scanbist soc <file.soc> --faulty <core> [--groups G]
                    [--partitions P] [--scheme ...] [--engine ...]
  scanbist noise <circuit> [--groups G] [--partitions P]
                    [--patterns N] [--faults F] [--scheme ...]
                    [--flip R] [--dropout R] [--intermittent R]
                    [--miss R] [--xcorrupt R] [--seed S]
                    [--votes V] [--retries R] [--threads T]
                    [--engine bitpar|event]
                    (fault-tolerant campaign under verdict noise;
                    --audit-out writes retry/vote/fallback events)
  scanbist bench [--suite NAME] [--quick] [--repeats N] [--warmup N]
                    [--out FILE] [--baseline FILE] [--threshold FRAC]
                    [--compare FILE]   (file-vs-file baseline check)
  scanbist report <trace.ndjson>... [--out FILE] [--title TEXT]
                    (render NDJSON traces/metrics/audits into one
                    self-contained HTML dashboard — span waterfall,
                    time-series sparklines, counters)
  scanbist obs query <stream.ndjson>... [--type T[,T...]]
                    [--trace-id ID] [--span GLOB] [--since NS]
                    [--until NS] [--group-by KEY]
                    [--agg count|sum|min|max|pN] [--field NAME]
                    [--top-slowest N]
                    (filter/group/aggregate NDJSON observability
                    streams; prints one JSON document to stdout)
  scanbist explain <audit.ndjson>     (summarize an audit trace)
  scanbist lint [--root DIR] [--config FILE] [--out FILE]
                    [--graph FILE] [--deny]
                    (vendored static-analysis pass; --deny exits
                    nonzero on unsuppressed findings, --out writes
                    them as NDJSON, --graph writes the workspace call
                    graph as NDJSON — see docs/LINTS.md)
  scanbist serve [--addr HOST:PORT] [--workers N] [--queue N]
                    [--max-connections N] [--deadline-ms MS]
                    [--drain-ms MS] [--cache N]
                    (scanbistd: NDJSON-over-HTTP diagnosis daemon
                    with bounded admission, per-request deadlines,
                    and graceful shedding; SCANBIST_CHAOS injects
                    deterministic faults — see docs/DAEMON.md)

<circuit> is an ISCAS-89 benchmark name (synthetic stand-in; `s27`
is the embedded real netlist) or a path to a `.bench` file.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse_args([]).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_diagnose_with_flags() {
        let cmd = parse_args([
            "diagnose",
            "s953",
            "--groups",
            "4",
            "--partitions",
            "6",
            "--scheme",
            "random",
            "--faults",
            "250",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Diagnose {
                circuit: "s953".into(),
                groups: 4,
                partitions: 6,
                patterns: 128,
                faults: 250,
                scheme: Scheme::RandomSelection,
                fault: None,
                engine: SimEngine::BitParallel,
            }
        );
    }

    #[test]
    fn parses_engine_flag() {
        let cmd = parse_args(["diagnose", "s27", "--engine", "event"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Diagnose {
                engine: SimEngine::EventDriven,
                ..
            }
        ));
        let cmd = parse_args(["noise", "s27", "--engine", "bitpar"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Noise {
                engine: SimEngine::BitParallel,
                ..
            }
        ));
        let cmd = parse_args(["soc", "chip.soc", "--faulty", "c", "--engine", "event"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Soc {
                engine: SimEngine::EventDriven,
                ..
            }
        ));
        assert!(parse_args(["diagnose", "s27", "--engine", "psychic"]).is_err());
    }

    #[test]
    fn parses_serve_defaults_and_flags() {
        assert_eq!(
            parse_args(["serve"]).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 0,
                queue: 64,
                max_connections: 64,
                deadline_ms: 2_000,
                drain_ms: 5_000,
                cache: 8,
            }
        );
        let cmd = parse_args([
            "serve",
            "--addr",
            "0.0.0.0:7311",
            "--workers",
            "4",
            "--queue",
            "16",
            "--max-connections",
            "32",
            "--deadline-ms",
            "500",
            "--drain-ms",
            "1000",
            "--cache",
            "2",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "0.0.0.0:7311".into(),
                workers: 4,
                queue: 16,
                max_connections: 32,
                deadline_ms: 500,
                drain_ms: 1_000,
                cache: 2,
            }
        );
        assert!(parse_args(["serve", "--queue", "0"]).is_err(), "queue stays bounded");
        assert!(parse_args(["serve", "--unbounded"]).is_err());
    }

    #[test]
    fn serve_forces_metrics_and_timeseries() {
        let invocation = parse_invocation(["serve", "--queue", "4"]).unwrap();
        assert!(invocation.obs.metrics);
        assert!(invocation.obs.timeseries);
        // Other commands are untouched.
        let invocation = parse_invocation(["stats", "s27"]).unwrap();
        assert!(!invocation.obs.metrics);
        assert!(!invocation.obs.timeseries);
    }

    #[test]
    fn parses_single_fault_mode() {
        let cmd = parse_args(["diagnose", "s27", "--fault", "G10/SA1"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Diagnose { fault: Some(f), .. } if f == "G10/SA1"
        ));
    }

    #[test]
    fn parses_soc_command() {
        let cmd = parse_args(["soc", "chip.soc", "--faulty", "s9234"]).unwrap();
        assert!(matches!(cmd, Command::Soc { faulty, .. } if faulty == "s9234"));
    }

    #[test]
    fn soc_requires_faulty() {
        assert!(parse_args(["soc", "chip.soc"]).is_err());
    }

    #[test]
    fn parses_observability_global_flags() {
        let inv = parse_invocation([
            "--json",
            "--trace",
            "--metrics-out",
            "m.json",
            "--progress",
            "stats",
            "s27",
        ])
        .unwrap();
        assert!(inv.json);
        assert!(inv.obs.trace && inv.obs.metrics && inv.obs.progress && inv.obs.summary);
        assert_eq!(
            inv.obs.trace_path.as_deref(),
            Some("trace_scanbist.ndjson".as_ref())
        );
        assert_eq!(inv.obs.metrics_path.as_deref(), Some("m.json".as_ref()));
        assert_eq!(
            inv.command,
            Command::Stats {
                circuit: "s27".into()
            }
        );

        let inv = parse_invocation(["--trace-out", "t.ndjson", "help"]).unwrap();
        assert_eq!(inv.obs.trace_path.as_deref(), Some("t.ndjson".as_ref()));
        assert!(!inv.obs.progress && !inv.json);

        let plain = parse_invocation(["stats", "s27"]).unwrap();
        assert!(!plain.obs.is_enabled());

        assert!(parse_invocation(["--metrics-out"]).is_err());
    }

    #[test]
    fn parses_profile_and_audit_flags() {
        let inv = parse_invocation(["--profile", "stats", "s27"]).unwrap();
        assert!(inv.obs.profile && inv.obs.profile_path.is_none());
        assert!(inv.obs.profiling() && inv.audit_path.is_none());

        let inv = parse_invocation([
            "--profile-out",
            "out/p.folded",
            "--audit-out",
            "out/a.ndjson",
            "diagnose",
            "s27",
        ])
        .unwrap();
        assert!(inv.obs.profile);
        assert_eq!(
            inv.obs.profile_path.as_deref(),
            Some("out/p.folded".as_ref())
        );
        assert_eq!(inv.audit_path.as_deref(), Some("out/a.ndjson".as_ref()));

        assert!(parse_invocation(["--profile-out"]).is_err());
        assert!(parse_invocation(["--audit-out"]).is_err());
    }

    #[test]
    fn parses_noise_command() {
        let cmd = parse_args(["noise", "s953"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Noise {
                groups: 4,
                partitions: 8,
                votes: 3,
                retries: 2,
                seed: 2003,
                ..
            }
        ));

        let cmd = parse_args([
            "noise",
            "s953",
            "--flip",
            "0.05",
            "--dropout",
            "0.01",
            "--intermittent",
            "0.1",
            "--miss",
            "0.5",
            "--xcorrupt",
            "0.02",
            "--seed",
            "7",
            "--votes",
            "4",
            "--retries",
            "1",
            "--threads",
            "2",
            "--faults",
            "50",
        ])
        .unwrap();
        match cmd {
            Command::Noise {
                flip,
                dropout,
                intermittent,
                miss,
                xcorrupt,
                seed,
                votes,
                retries,
                threads,
                faults,
                ..
            } => {
                assert!((flip - 0.05).abs() < 1e-12);
                assert!((dropout - 0.01).abs() < 1e-12);
                assert!((intermittent - 0.1).abs() < 1e-12);
                assert!((miss - 0.5).abs() < 1e-12);
                assert!((xcorrupt - 0.02).abs() < 1e-12);
                assert_eq!((seed, votes, retries, threads, faults), (7, 4, 1, 2, 50));
            }
            other => panic!("parsed {other:?}"),
        }

        assert!(parse_args(["noise"]).is_err());
        assert!(parse_args(["noise", "s953", "--flip", "lots"]).is_err());
        assert!(parse_args(["noise", "s953", "--bogus"]).is_err());
    }

    #[test]
    fn parses_bench_command() {
        let cmd = parse_args(["bench"]).unwrap();
        assert_eq!(
            cmd,
            Command::Bench {
                suite: "diagnosis".into(),
                quick: false,
                repeats: None,
                warmup: None,
                out: None,
                baseline: None,
                compare: None,
                threshold: 0.5,
            }
        );

        let cmd = parse_args([
            "bench",
            "--quick",
            "--suite",
            "smoke",
            "--repeats",
            "3",
            "--warmup",
            "1",
            "--out",
            "b.json",
            "--baseline",
            "base.json",
            "--threshold",
            "0.25",
        ])
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Bench {
                quick: true,
                repeats: Some(3),
                warmup: Some(1),
                ..
            }
        ));

        assert!(parse_args(["bench", "--compare", "b.json"]).is_err());
        assert!(parse_args(["bench", "--threshold", "-1"]).is_err());
        assert!(parse_args(["bench", "--bogus"]).is_err());
    }

    #[test]
    fn parses_explain_command() {
        let cmd = parse_args(["explain", "audit.ndjson"]).unwrap();
        assert_eq!(
            cmd,
            Command::Explain {
                path: "audit.ndjson".into()
            }
        );
        assert!(parse_args(["explain"]).is_err());
        assert!(parse_args(["explain", "a", "b"]).is_err());
    }

    #[test]
    fn parses_serve_metrics_flag() {
        let inv = parse_invocation(["--serve-metrics", "127.0.0.1:0", "stats", "s27"]).unwrap();
        assert_eq!(inv.obs.serve_addr.as_deref(), Some("127.0.0.1:0"));
        assert!(inv.obs.sampling() && inv.obs.is_enabled());

        let plain = parse_invocation(["stats", "s27"]).unwrap();
        assert!(plain.obs.serve_addr.is_none() && !plain.obs.sampling());

        assert!(parse_invocation(["--serve-metrics"]).is_err());
    }

    #[test]
    fn parses_slo_and_flight_recorder_flags() {
        let inv = parse_invocation([
            "--slo",
            "slo.toml",
            "--flight-recorder",
            "flight.ndjson",
            "stats",
            "s27",
        ])
        .unwrap();
        assert_eq!(inv.obs.slo_path.as_deref(), Some("slo.toml".as_ref()));
        assert_eq!(
            inv.obs.flight_path.as_deref(),
            Some("flight.ndjson".as_ref())
        );
        // Both imply sampling so the evaluator/ring get ticks.
        assert!(inv.obs.sampling() && inv.obs.is_enabled());

        assert!(parse_invocation(["--slo"]).is_err());
        assert!(parse_invocation(["--flight-recorder"]).is_err());
    }

    #[test]
    fn parses_obs_query_command() {
        use scan_obs::query::{Agg, QuerySpec};
        let cmd = parse_args(["obs", "query", "a.ndjson"]).unwrap();
        assert_eq!(
            cmd,
            Command::ObsQuery {
                files: vec!["a.ndjson".into()],
                spec: QuerySpec::default(),
            }
        );

        let cmd = parse_args([
            "obs",
            "query",
            "a.ndjson",
            "b.ndjson",
            "--type",
            "counter,span",
            "--type",
            "alert",
            "--trace-id",
            "00aabbccddeeff11",
            "--span",
            "campaign/*",
            "--since",
            "100",
            "--until",
            "900",
            "--group-by",
            "name",
            "--agg",
            "p95",
            "--field",
            "dur_ns",
            "--top-slowest",
            "5",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::ObsQuery {
                files: vec!["a.ndjson".into(), "b.ndjson".into()],
                spec: QuerySpec {
                    types: vec!["counter".into(), "span".into(), "alert".into()],
                    trace: Some("00aabbccddeeff11".into()),
                    span_glob: Some("campaign/*".into()),
                    since_ns: Some(100),
                    until_ns: Some(900),
                    group_by: Some("name".into()),
                    agg: Agg::Quantile(95),
                    field: Some("dur_ns".into()),
                    top_slowest: Some(5),
                },
            }
        );

        assert!(parse_args(["obs"]).is_err());
        assert!(parse_args(["obs", "watch"]).is_err());
        assert!(parse_args(["obs", "query"]).is_err());
        assert!(parse_args(["obs", "query", "a.ndjson", "--agg", "median"]).is_err());
        assert!(parse_args(["obs", "query", "a.ndjson", "--bogus"]).is_err());
    }

    #[test]
    fn parses_report_command() {
        let cmd = parse_args(["report", "a.ndjson"]).unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                files: vec!["a.ndjson".into()],
                out: "report.html".into(),
                title: None,
            }
        );

        let cmd = parse_args([
            "report", "a.ndjson", "b.ndjson", "--out", "dash.html", "--title", "Campaign",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Report {
                files: vec!["a.ndjson".into(), "b.ndjson".into()],
                out: "dash.html".into(),
                title: Some("Campaign".into()),
            }
        );

        assert!(parse_args(["report"]).is_err());
        assert!(parse_args(["report", "a.ndjson", "--bogus"]).is_err());
        assert!(parse_args(["report", "--out", "x.html"]).is_err());
    }

    #[test]
    fn parses_lint_command() {
        let cmd = parse_args(["lint"]).unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                root: ".".into(),
                config: None,
                out: None,
                graph: None,
                deny: false,
            }
        );

        let cmd = parse_args([
            "lint", "--root", "..", "--config", "lint.toml", "--out", "l.ndjson", "--graph",
            "g.ndjson", "--deny",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Lint {
                root: "..".into(),
                config: Some("lint.toml".into()),
                out: Some("l.ndjson".into()),
                graph: Some("g.ndjson".into()),
                deny: true,
            }
        );

        assert!(parse_args(["lint", "--root"]).is_err());
        assert!(parse_args(["lint", "--bogus"]).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse_args(["frobnicate"]).is_err());
        assert!(parse_args(["diagnose", "s953", "--bogus", "1"]).is_err());
        assert!(parse_args(["parse"]).is_err());
        assert!(parse_args(["parse", "a.bench", "extra"]).is_err());
        assert!(parse_args(["coverage", "s953", "--patterns", "many"]).is_err());
        assert!(parse_args(["diagnose", "s953", "--scheme", "psychic"]).is_err());
    }
}
