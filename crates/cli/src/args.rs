//! Minimal dependency-free argument parsing for the `scanbist` CLI.

use std::error::Error;
use std::fmt;

use scan_bist::Scheme;

/// A parsed `scanbist` invocation.
#[derive(Clone, Eq, PartialEq, Debug)]
pub enum Command {
    /// `scanbist parse <file.bench>` — parse and validate a netlist.
    Parse {
        /// Path to the `.bench` file.
        path: String,
    },
    /// `scanbist stats <circuit>` — structural statistics.
    Stats {
        /// Benchmark name or `.bench` path.
        circuit: String,
    },
    /// `scanbist coverage <circuit> [--patterns N]` — pseudorandom
    /// stuck-at coverage.
    Coverage {
        /// Benchmark name or `.bench` path.
        circuit: String,
        /// Pattern budget.
        patterns: usize,
    },
    /// `scanbist atpg <circuit>` — deterministic test generation.
    Atpg {
        /// Benchmark name or `.bench` path.
        circuit: String,
    },
    /// `scanbist diagnose <circuit> [options]` — fault-injection
    /// diagnosis campaign.
    Diagnose {
        /// Benchmark name or `.bench` path.
        circuit: String,
        /// Groups per partition.
        groups: u16,
        /// Number of partitions.
        partitions: usize,
        /// Patterns per session.
        patterns: usize,
        /// Faults to inject.
        faults: usize,
        /// Partitioning scheme.
        scheme: Scheme,
        /// Diagnose one named fault (`NET/SA0` or `NET/SA1`) and print
        /// its full evidence trail instead of running a campaign.
        fault: Option<String>,
    },
    /// `scanbist soc <descriptor.soc> --faulty <core> [options]` — SOC
    /// diagnosis with one faulty core.
    Soc {
        /// Path to the `.soc` descriptor.
        path: String,
        /// Name of the assumed-faulty core.
        faulty: String,
        /// Groups per partition.
        groups: u16,
        /// Number of partitions.
        partitions: usize,
        /// Partitioning scheme.
        scheme: Scheme,
    },
    /// `scanbist help` / `--help`.
    Help,
}

/// Error produced when the command line cannot be parsed.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

fn scheme_from(name: &str) -> Result<Scheme, ParseArgsError> {
    match name {
        "two-step" => Ok(Scheme::TWO_STEP_DEFAULT),
        "random" => Ok(Scheme::RandomSelection),
        "interval" => Ok(Scheme::IntervalBased),
        "fixed" => Ok(Scheme::FixedInterval),
        other => Err(ParseArgsError(format!(
            "unknown scheme `{other}` (expected two-step|random|interval|fixed)"
        ))),
    }
}

fn take_value<'a, I>(flag: &str, words: &mut I) -> Result<&'a str, ParseArgsError>
where
    I: Iterator<Item = &'a str>,
{
    words
        .next()
        .ok_or_else(|| ParseArgsError(format!("flag `{flag}` needs a value")))
}

/// A parsed invocation: the command plus global output options.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Invocation {
    /// Emit one JSON object instead of human-readable text (supported
    /// by `coverage`, `atpg`, `diagnose`, and `soc`).
    pub json: bool,
    /// Observability settings from the global `--trace` /
    /// `--trace-out` / `--metrics-out` / `--progress` flags.
    pub obs: scan_obs::ObsConfig,
    /// The command to execute.
    pub command: Command,
}

/// Parses the full argument list including global flags (`--json`,
/// `--trace`, `--trace-out <path>`, `--metrics-out <path>`, and
/// `--progress`, all of which appear before the subcommand).
///
/// # Errors
///
/// Returns [`ParseArgsError`] for any malformed invocation.
pub fn parse_invocation<'a, I>(args: I) -> Result<Invocation, ParseArgsError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut rest: Vec<&str> = args.into_iter().collect();
    let mut json = false;
    let mut obs = scan_obs::ObsConfig::disabled();
    loop {
        match rest.first().copied() {
            Some("--json") => {
                json = true;
                rest.remove(0);
            }
            Some("--trace") => {
                obs.trace = true;
                obs.summary = true;
                rest.remove(0);
            }
            Some("--trace-out") => {
                rest.remove(0);
                let path = take_front("--trace-out", &mut rest)?;
                obs.trace = true;
                obs.summary = true;
                obs.trace_path = Some(path.into());
            }
            Some("--metrics-out") => {
                rest.remove(0);
                let path = take_front("--metrics-out", &mut rest)?;
                obs.metrics = true;
                obs.metrics_path = Some(path.into());
            }
            Some("--progress") => {
                obs.progress = true;
                rest.remove(0);
            }
            _ => break,
        }
    }
    if obs.trace && obs.trace_path.is_none() {
        obs.trace_path = Some("trace_scanbist.ndjson".into());
    }
    Ok(Invocation {
        json,
        obs,
        command: parse_args(rest)?,
    })
}

fn take_front(flag: &str, rest: &mut Vec<&str>) -> Result<String, ParseArgsError> {
    if rest.is_empty() {
        return Err(ParseArgsError(format!("flag `{flag}` needs a value")));
    }
    Ok(rest.remove(0).to_owned())
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns [`ParseArgsError`] with a human-readable message for any
/// malformed invocation.
pub fn parse_args<'a, I>(args: I) -> Result<Command, ParseArgsError>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut words = args.into_iter();
    let Some(command) = words.next() else {
        return Ok(Command::Help);
    };
    match command {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "parse" => {
            let path = take_value("parse", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Parse { path })
        }
        "stats" => {
            let circuit = take_value("stats", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Stats { circuit })
        }
        "coverage" => {
            let circuit = take_value("coverage", &mut words)?.to_owned();
            let mut patterns = 128usize;
            while let Some(flag) = words.next() {
                match flag {
                    "--patterns" => patterns = parse_num(take_value(flag, &mut words)?)?,
                    other => return Err(unknown_flag(other)),
                }
            }
            Ok(Command::Coverage { circuit, patterns })
        }
        "atpg" => {
            let circuit = take_value("atpg", &mut words)?.to_owned();
            ensure_done(words)?;
            Ok(Command::Atpg { circuit })
        }
        "diagnose" => {
            let circuit = take_value("diagnose", &mut words)?.to_owned();
            let mut groups = 8u16;
            let mut partitions = 8usize;
            let mut patterns = 128usize;
            let mut faults = 100usize;
            let mut scheme = Scheme::TWO_STEP_DEFAULT;
            let mut fault = None;
            while let Some(flag) = words.next() {
                match flag {
                    "--groups" => groups = parse_num(take_value(flag, &mut words)?)?,
                    "--partitions" => partitions = parse_num(take_value(flag, &mut words)?)?,
                    "--patterns" => patterns = parse_num(take_value(flag, &mut words)?)?,
                    "--faults" => faults = parse_num(take_value(flag, &mut words)?)?,
                    "--scheme" => scheme = scheme_from(take_value(flag, &mut words)?)?,
                    "--fault" => fault = Some(take_value(flag, &mut words)?.to_owned()),
                    other => return Err(unknown_flag(other)),
                }
            }
            Ok(Command::Diagnose {
                circuit,
                groups,
                partitions,
                patterns,
                faults,
                scheme,
                fault,
            })
        }
        "soc" => {
            let path = take_value("soc", &mut words)?.to_owned();
            let mut faulty: Option<String> = None;
            let mut groups = 16u16;
            let mut partitions = 8usize;
            let mut scheme = Scheme::TWO_STEP_DEFAULT;
            while let Some(flag) = words.next() {
                match flag {
                    "--faulty" => faulty = Some(take_value(flag, &mut words)?.to_owned()),
                    "--groups" => groups = parse_num(take_value(flag, &mut words)?)?,
                    "--partitions" => partitions = parse_num(take_value(flag, &mut words)?)?,
                    "--scheme" => scheme = scheme_from(take_value(flag, &mut words)?)?,
                    other => return Err(unknown_flag(other)),
                }
            }
            let faulty =
                faulty.ok_or_else(|| ParseArgsError("`soc` requires --faulty <core>".into()))?;
            Ok(Command::Soc {
                path,
                faulty,
                groups,
                partitions,
                scheme,
            })
        }
        other => Err(ParseArgsError(format!(
            "unknown command `{other}` (try `scanbist help`)"
        ))),
    }
}

fn ensure_done<'a, I: Iterator<Item = &'a str>>(mut words: I) -> Result<(), ParseArgsError> {
    match words.next() {
        None => Ok(()),
        Some(extra) => Err(ParseArgsError(format!("unexpected argument `{extra}`"))),
    }
}

fn unknown_flag(flag: &str) -> ParseArgsError {
    ParseArgsError(format!("unknown flag `{flag}`"))
}

fn parse_num<T: std::str::FromStr>(text: &str) -> Result<T, ParseArgsError> {
    text.parse()
        .map_err(|_| ParseArgsError(format!("`{text}` is not a valid number")))
}

/// The help text printed by `scanbist help`.
pub const HELP: &str = "\
scanbist — partition-based scan-BIST failing-cell diagnosis

USAGE:
  scanbist [GLOBAL FLAGS] <command> ...

GLOBAL FLAGS (before the command):
  --json                emit one JSON object instead of text
  --trace               record spans/metrics; write trace_scanbist.ndjson
                        and print a span-tree summary to stderr
  --trace-out <path>    like --trace, NDJSON stream to <path>
  --metrics-out <path>  write a JSON metrics snapshot to <path>
  --progress            periodic per-shard progress lines on stderr

COMMANDS:
  scanbist parse <file.bench>
  scanbist stats <circuit>
  scanbist coverage <circuit> [--patterns N]
  scanbist atpg <circuit>
  scanbist diagnose <circuit> [--groups G] [--partitions P]
                    [--patterns N] [--faults F]
                    [--scheme two-step|random|interval|fixed]
                    [--fault NET/SA0]   (single-fault evidence report)
  scanbist soc <file.soc> --faulty <core> [--groups G]
                    [--partitions P] [--scheme ...]

<circuit> is an ISCAS-89 benchmark name (synthetic stand-in; `s27`
is the embedded real netlist) or a path to a `.bench` file.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse_args([]).unwrap(), Command::Help);
        assert_eq!(parse_args(["help"]).unwrap(), Command::Help);
        assert_eq!(parse_args(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_diagnose_with_flags() {
        let cmd = parse_args([
            "diagnose", "s953", "--groups", "4", "--partitions", "6", "--scheme", "random",
            "--faults", "250",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Diagnose {
                circuit: "s953".into(),
                groups: 4,
                partitions: 6,
                patterns: 128,
                faults: 250,
                scheme: Scheme::RandomSelection,
                fault: None,
            }
        );
    }

    #[test]
    fn parses_single_fault_mode() {
        let cmd = parse_args(["diagnose", "s27", "--fault", "G10/SA1"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Diagnose { fault: Some(f), .. } if f == "G10/SA1"
        ));
    }

    #[test]
    fn parses_soc_command() {
        let cmd = parse_args(["soc", "chip.soc", "--faulty", "s9234"]).unwrap();
        assert!(matches!(cmd, Command::Soc { faulty, .. } if faulty == "s9234"));
    }

    #[test]
    fn soc_requires_faulty() {
        assert!(parse_args(["soc", "chip.soc"]).is_err());
    }

    #[test]
    fn parses_observability_global_flags() {
        let inv = parse_invocation([
            "--json",
            "--trace",
            "--metrics-out",
            "m.json",
            "--progress",
            "stats",
            "s27",
        ])
        .unwrap();
        assert!(inv.json);
        assert!(inv.obs.trace && inv.obs.metrics && inv.obs.progress && inv.obs.summary);
        assert_eq!(inv.obs.trace_path.as_deref(), Some("trace_scanbist.ndjson".as_ref()));
        assert_eq!(inv.obs.metrics_path.as_deref(), Some("m.json".as_ref()));
        assert_eq!(inv.command, Command::Stats { circuit: "s27".into() });

        let inv = parse_invocation(["--trace-out", "t.ndjson", "help"]).unwrap();
        assert_eq!(inv.obs.trace_path.as_deref(), Some("t.ndjson".as_ref()));
        assert!(!inv.obs.progress && !inv.json);

        let plain = parse_invocation(["stats", "s27"]).unwrap();
        assert!(!plain.obs.is_enabled());

        assert!(parse_invocation(["--metrics-out"]).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse_args(["frobnicate"]).is_err());
        assert!(parse_args(["diagnose", "s953", "--bogus", "1"]).is_err());
        assert!(parse_args(["parse"]).is_err());
        assert!(parse_args(["parse", "a.bench", "extra"]).is_err());
        assert!(parse_args(["coverage", "s953", "--patterns", "many"]).is_err());
        assert!(parse_args(["diagnose", "s953", "--scheme", "psychic"]).is_err());
    }
}
