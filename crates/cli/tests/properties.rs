//! Property-based tests for the CLI front end, on the in-workspace
//! shrink-free harness: the argument parser never panics, accepts what
//! it should, and the JSON emitter always produces structurally valid
//! output.

use scan_rng::testkit::Runner;

use scan_bist_cli::json::{escape, JsonObject};
use scan_bist_cli::{parse_args, parse_invocation, Command};

/// Arbitrary argument vectors never panic the parser — they parse or
/// produce a readable error.
#[test]
fn parser_is_total() {
    Runner::new(256).run("parser_is_total", |g| {
        let args = g.vec("args", 0, 5, |r| {
            let len = r.gen_range_inclusive(0, 12);
            (0..len)
                .map(|_| char::from(r.gen_range_inclusive(0x20, 0x7E) as u8))
                .collect::<String>()
        });
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let _ = parse_args(refs.iter().copied());
        let _ = parse_invocation(refs.iter().copied());
    });
}

/// Valid diagnose invocations round-trip their numeric flags.
#[test]
fn diagnose_flags_roundtrip() {
    Runner::new(256).run("diagnose_flags_roundtrip", |g| {
        let groups = g.u16("groups", 1, 63);
        let partitions = g.usize("partitions", 1, 31);
        let patterns = g.usize("patterns", 1, 4095);
        let faults = g.usize("faults", 1, 1999);
        let groups_s = groups.to_string();
        let partitions_s = partitions.to_string();
        let patterns_s = patterns.to_string();
        let faults_s = faults.to_string();
        let args = vec![
            "diagnose",
            "s953",
            "--groups",
            &groups_s,
            "--partitions",
            &partitions_s,
            "--patterns",
            &patterns_s,
            "--faults",
            &faults_s,
        ];
        let cmd = parse_args(args.iter().copied()).expect("valid args parse");
        match cmd {
            Command::Diagnose {
                groups: gr,
                partitions: p,
                patterns: n,
                faults: f,
                ..
            } => {
                assert_eq!(gr, groups);
                assert_eq!(p, partitions);
                assert_eq!(n, patterns);
                assert_eq!(f, faults);
            }
            other => panic!("unexpected command {other:?}"),
        }
    });
}

/// JSON escaping always yields a quoted string whose interior contains
/// no raw quotes, backslashes, or control characters.
#[test]
fn escape_output_is_clean() {
    Runner::new(256).run("escape_output_is_clean", |g| {
        let text = g.unicode_string("text", 0, 64);
        let escaped = escape(&text);
        assert!(escaped.starts_with('"') && escaped.ends_with('"'));
        let interior = &escaped[1..escaped.len() - 1];
        let mut chars = interior.chars();
        while let Some(c) = chars.next() {
            assert!((c as u32) >= 0x20, "raw control char {c:?}");
            if c == '\\' {
                let next = chars.next().expect("escape sequence is complete");
                assert!(matches!(next, '"' | '\\' | 'n' | 'r' | 't' | 'u'));
                if next == 'u' {
                    for _ in 0..4 {
                        let h = chars.next().expect("4 hex digits");
                        assert!(h.is_ascii_hexdigit());
                    }
                }
            } else {
                assert_ne!(c, '"');
            }
        }
    });
}

/// Objects built from arbitrary fields are balanced and key-quoted.
#[test]
fn json_objects_are_balanced() {
    Runner::new(256).run("json_objects_are_balanced", |g| {
        const KEY_CHARS: [char; 27] = [
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '_',
        ];
        let keys = g.vec("keys", 1, 5, |r| {
            let len = r.gen_range_inclusive(1, 10);
            (0..len)
                .map(|_| KEY_CHARS[r.gen_index(KEY_CHARS.len())])
                .collect::<String>()
        });
        let value = g.f64("value", -1e6, 1e6);
        let mut o = JsonObject::new();
        for key in &keys {
            o.number(key, value);
        }
        let text = o.finish();
        let balanced = text.starts_with('{') && text.ends_with('}');
        assert!(balanced, "unbalanced object: {text}");
        assert_eq!(text.matches(':').count(), keys.len());
        assert_eq!(text.matches(',').count(), keys.len() - 1);
    });
}

/// A leading --json never changes which command parses.
#[test]
fn json_flag_is_transparent() {
    Runner::new(256).run("json_flag_is_transparent", |g| {
        const NAME_CHARS: [char; 36] = [
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7',
            '8', '9',
        ];
        let circuit = g.string_of("circuit", &NAME_CHARS, 1, 8);
        let plain = parse_args(["stats", circuit.as_str()]).expect("parses");
        let with_json = parse_invocation(["--json", "stats", circuit.as_str()]).expect("parses");
        assert!(with_json.json);
        assert_eq!(with_json.command, plain);
    });
}
