//! Property-based tests for the CLI front end: the argument parser
//! never panics, accepts what it should, and the JSON emitter always
//! produces structurally valid output.

use proptest::prelude::*;

use scan_bist_cli::json::{escape, JsonObject};
use scan_bist_cli::{parse_args, parse_invocation, Command};

proptest! {
    /// Arbitrary argument vectors never panic the parser — they parse
    /// or produce a readable error.
    #[test]
    fn parser_is_total(args in prop::collection::vec("[ -~]{0,12}", 0..6)) {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let _ = parse_args(refs.iter().copied());
        let _ = parse_invocation(refs.iter().copied());
    }

    /// Valid diagnose invocations round-trip their numeric flags.
    #[test]
    fn diagnose_flags_roundtrip(
        groups in 1u16..64,
        partitions in 1usize..32,
        patterns in 1usize..4096,
        faults in 1usize..2000,
    ) {
        let groups_s = groups.to_string();
        let partitions_s = partitions.to_string();
        let patterns_s = patterns.to_string();
        let faults_s = faults.to_string();
        let args = vec![
            "diagnose", "s953",
            "--groups", &groups_s,
            "--partitions", &partitions_s,
            "--patterns", &patterns_s,
            "--faults", &faults_s,
        ];
        let cmd = parse_args(args.iter().copied()).expect("valid args parse");
        match cmd {
            Command::Diagnose {
                groups: g,
                partitions: p,
                patterns: n,
                faults: f,
                ..
            } => {
                prop_assert_eq!(g, groups);
                prop_assert_eq!(p, partitions);
                prop_assert_eq!(n, patterns);
                prop_assert_eq!(f, faults);
            }
            other => prop_assert!(false, "unexpected command {other:?}"),
        }
    }

    /// JSON escaping always yields a quoted string whose interior
    /// contains no raw quotes, backslashes, or control characters.
    #[test]
    fn escape_output_is_clean(text in "\\PC{0,64}") {
        let escaped = escape(&text);
        prop_assert!(escaped.starts_with('"') && escaped.ends_with('"'));
        let interior = &escaped[1..escaped.len() - 1];
        let mut chars = interior.chars();
        while let Some(c) = chars.next() {
            prop_assert!((c as u32) >= 0x20, "raw control char {c:?}");
            if c == '\\' {
                let next = chars.next().expect("escape sequence is complete");
                prop_assert!(matches!(next, '"' | '\\' | 'n' | 'r' | 't' | 'u'));
                if next == 'u' {
                    for _ in 0..4 {
                        let h = chars.next().expect("4 hex digits");
                        prop_assert!(h.is_ascii_hexdigit());
                    }
                }
            } else {
                prop_assert_ne!(c, '"');
            }
        }
    }

    /// Objects built from arbitrary fields are balanced and key-quoted.
    #[test]
    fn json_objects_are_balanced(
        keys in prop::collection::vec("[a-z_]{1,10}", 1..6),
        value in -1e6f64..1e6,
    ) {
        let mut o = JsonObject::new();
        for key in &keys {
            o.number(key, value);
        }
        let text = o.finish();
        let balanced = text.starts_with('{') && text.ends_with('}');
        prop_assert!(balanced, "unbalanced object: {}", text);
        prop_assert_eq!(text.matches(':').count(), keys.len());
        prop_assert_eq!(text.matches(',').count(), keys.len() - 1);
    }

    /// A leading --json never changes which command parses.
    #[test]
    fn json_flag_is_transparent(circuit in "[a-z0-9]{1,8}") {
        let plain = parse_args(["stats", circuit.as_str()]).expect("parses");
        let with_json =
            parse_invocation(["--json", "stats", circuit.as_str()]).expect("parses");
        prop_assert!(with_json.json);
        prop_assert_eq!(with_json.command, plain);
    }
}
