//! Property-based tests for the CLI front end, on the in-workspace
//! shrink-free harness: the argument parser never panics, accepts what
//! it should, and the JSON emitter always produces structurally valid
//! output.

use scan_rng::testkit::Runner;

use scan_bist_cli::json::{escape, JsonObject};
use scan_bist_cli::{parse_args, parse_invocation, Command};

/// Arbitrary argument vectors never panic the parser — they parse or
/// produce a readable error.
#[test]
fn parser_is_total() {
    Runner::new(256).run("parser_is_total", |g| {
        let args = g.vec("args", 0, 5, |r| {
            let len = r.gen_range_inclusive(0, 12);
            (0..len)
                .map(|_| char::from(r.gen_range_inclusive(0x20, 0x7E) as u8))
                .collect::<String>()
        });
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let _ = parse_args(refs.iter().copied());
        let _ = parse_invocation(refs.iter().copied());
    });
}

/// Valid diagnose invocations round-trip their numeric flags.
#[test]
fn diagnose_flags_roundtrip() {
    Runner::new(256).run("diagnose_flags_roundtrip", |g| {
        let groups = g.u16("groups", 1, 63);
        let partitions = g.usize("partitions", 1, 31);
        let patterns = g.usize("patterns", 1, 4095);
        let faults = g.usize("faults", 1, 1999);
        let groups_s = groups.to_string();
        let partitions_s = partitions.to_string();
        let patterns_s = patterns.to_string();
        let faults_s = faults.to_string();
        let args = vec![
            "diagnose",
            "s953",
            "--groups",
            &groups_s,
            "--partitions",
            &partitions_s,
            "--patterns",
            &patterns_s,
            "--faults",
            &faults_s,
        ];
        let cmd = parse_args(args.iter().copied()).expect("valid args parse");
        match cmd {
            Command::Diagnose {
                groups: gr,
                partitions: p,
                patterns: n,
                faults: f,
                ..
            } => {
                assert_eq!(gr, groups);
                assert_eq!(p, partitions);
                assert_eq!(n, patterns);
                assert_eq!(f, faults);
            }
            other => panic!("unexpected command {other:?}"),
        }
    });
}

/// JSON escaping always yields a quoted string whose interior contains
/// no raw quotes, backslashes, or control characters.
#[test]
fn escape_output_is_clean() {
    Runner::new(256).run("escape_output_is_clean", |g| {
        let text = g.unicode_string("text", 0, 64);
        let escaped = escape(&text);
        assert!(escaped.starts_with('"') && escaped.ends_with('"'));
        let interior = &escaped[1..escaped.len() - 1];
        let mut chars = interior.chars();
        while let Some(c) = chars.next() {
            assert!((c as u32) >= 0x20, "raw control char {c:?}");
            if c == '\\' {
                let next = chars.next().expect("escape sequence is complete");
                assert!(matches!(next, '"' | '\\' | 'n' | 'r' | 't' | 'u'));
                if next == 'u' {
                    for _ in 0..4 {
                        let h = chars.next().expect("4 hex digits");
                        assert!(h.is_ascii_hexdigit());
                    }
                }
            } else {
                assert_ne!(c, '"');
            }
        }
    });
}

/// Objects built from arbitrary fields are balanced and key-quoted.
#[test]
fn json_objects_are_balanced() {
    Runner::new(256).run("json_objects_are_balanced", |g| {
        const KEY_CHARS: [char; 27] = [
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '_',
        ];
        let keys = g.vec("keys", 1, 5, |r| {
            let len = r.gen_range_inclusive(1, 10);
            (0..len)
                .map(|_| KEY_CHARS[r.gen_index(KEY_CHARS.len())])
                .collect::<String>()
        });
        let value = g.f64("value", -1e6, 1e6);
        let mut o = JsonObject::new();
        for key in &keys {
            o.number(key, value);
        }
        let text = o.finish();
        let balanced = text.starts_with('{') && text.ends_with('}');
        assert!(balanced, "unbalanced object: {text}");
        assert_eq!(text.matches(':').count(), keys.len());
        assert_eq!(text.matches(',').count(), keys.len() - 1);
    });
}

/// A leading --json never changes which command parses.
#[test]
fn json_flag_is_transparent() {
    Runner::new(256).run("json_flag_is_transparent", |g| {
        const NAME_CHARS: [char; 36] = [
            'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
            'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '4', '5', '6', '7',
            '8', '9',
        ];
        let circuit = g.string_of("circuit", &NAME_CHARS, 1, 8);
        let plain = parse_args(["stats", circuit.as_str()]).expect("parses");
        let with_json = parse_invocation(["--json", "stats", circuit.as_str()]).expect("parses");
        assert!(with_json.json);
        assert_eq!(with_json.command, plain);
    });
}

/// `obs query` counter sums are bit-identical to the totals the
/// metrics registry snapshot holds when fed the same values — the
/// same numbers `obs-check` validates in the snapshot export. The
/// query engine must not round, reorder into different f64 sums, or
/// reformat: each group's `value` is the exact integer total.
#[test]
fn obs_query_counter_sums_match_snapshot_totals() {
    use std::collections::BTreeMap;
    use std::io::Write as _;

    use scan_bist_cli::run;
    use scan_obs::query::{Agg, QuerySpec};

    const NAME_CHARS: [char; 28] = [
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q',
        'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', '.', '_',
    ];
    let case = std::sync::atomic::AtomicU32::new(0);
    Runner::new(48).run("obs_query_counter_sums_match_snapshot_totals", |g| {
        let case = case.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Distinct counter names from an escape-free alphabet.
        let name_count = g.usize("names", 1, 6);
        let names: Vec<String> = (0..name_count)
            .map(|i| format!("ctr.{i}.{}", g.string_of("stem", &NAME_CHARS, 1, 8)))
            .collect();
        // Each value stays below 2^32, so every possible sum is well
        // under 2^53 and exactly representable in the f64 the JSON
        // layer carries.
        let events: Vec<(usize, u64)> = g.vec("events", 1, 40, |r| {
            let idx = r.gen_range_inclusive(0, name_count - 1);
            (idx, r.next_u64() >> 32)
        });

        // Independent ground truth, and the registry's own view of the
        // same stream of increments.
        let mut expected: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for &(idx, value) in &events {
            let entry = expected.entry(names[idx].clone()).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += value;
        }
        scan_obs::registry::reset();
        scan_obs::init(&scan_obs::ObsConfig {
            metrics: true,
            ..scan_obs::ObsConfig::disabled()
        });
        for &(idx, value) in &events {
            scan_obs::metrics::add(&names[idx], value);
        }
        let snapshot = scan_obs::registry::snapshot();
        scan_obs::reset();
        for (name, &(_, sum)) in &expected {
            assert_eq!(
                snapshot.counters.get(name).copied(),
                Some(sum),
                "registry snapshot disagrees with ground truth for {name}"
            );
        }

        // Spread the same events over 1..=3 NDJSON stream files, with
        // non-counter noise the type filter must drop.
        let stream_count = g.usize("streams", 1, 3);
        let mut streams: Vec<String> = vec![String::new(); stream_count];
        for (i, &(idx, value)) in events.iter().enumerate() {
            let line = format!(
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
                names[idx]
            );
            streams[i % stream_count].push_str(&line);
        }
        streams[0].push_str("{\"type\":\"span\",\"path\":\"noise/work\",\"start_ns\":1,\"dur_ns\":5}\n");
        let dir = std::env::temp_dir();
        let files: Vec<std::path::PathBuf> = streams
            .iter()
            .enumerate()
            .map(|(i, text)| {
                let path = dir.join(format!(
                    "scanbist_query_prop_{}_{case}_{i}.ndjson",
                    std::process::id()
                ));
                let mut f = std::fs::File::create(&path).expect("temp stream writes");
                f.write_all(text.as_bytes()).expect("temp stream writes");
                path
            })
            .collect();

        let command = Command::ObsQuery {
            files: files.iter().map(|p| p.display().to_string()).collect(),
            spec: QuerySpec {
                types: vec!["counter".to_string()],
                group_by: Some("name".to_string()),
                agg: Agg::Sum,
                field: Some("value".to_string()),
                ..QuerySpec::default()
            },
        };
        let mut out = Vec::new();
        let code = run(&command, &mut out);
        for path in &files {
            std::fs::remove_file(path).ok();
        }
        assert_eq!(code, 0, "query over generated streams succeeds");
        let text = String::from_utf8(out).expect("query output is UTF-8");

        // Bit-identical: the rendered group value is the exact integer
        // total the snapshot holds, not a rounded or re-associated sum.
        assert!(
            text.contains(&format!("\"matched\":{}", events.len())),
            "all counter records (and nothing else) match: {text}"
        );
        for (name, &(n, sum)) in &expected {
            let group = format!("{{\"key\":\"{name}\",\"n\":{n},\"value\":{sum}}}");
            assert!(text.contains(&group), "missing group {group} in: {text}");
        }
        let parsed = scan_obs::json::parse(text.trim()).expect("query output parses as JSON");
        let doc = parsed.as_object().expect("query output is an object");
        let groups = doc["groups"].as_array().expect("groups array present");
        assert_eq!(groups.len(), expected.len(), "one group per counter name");
    });
}
