//! SOC descriptor files — an ITC'02-inspired text format.
//!
//! The paper builds its second SOC from the ITC'02 SOC Test Benchmarks
//! \[11\]. The original `.soc` files describe each module's terminals
//! and scan chains; this module parses a documented subset sufficient
//! for diagnosis experiments and instantiates the modules from the
//! synthetic benchmark generator:
//!
//! ```text
//! # comment
//! soc d695
//! tam 8
//! core s838
//! core s9234
//! ...
//! ```
//!
//! Directives:
//!
//! * `soc <name>` — the SOC name (required, once, first).
//! * `tam <width>` — TAM width; `1` (or omitting the directive) builds
//!   a single meta scan chain, larger widths build balanced chains.
//! * `core <benchmark>` — appends an embedded core by ISCAS-89
//!   benchmark name, in daisy-chain order.

use std::error::Error;
use std::fmt;

use scan_netlist::generate;

use crate::core_module::CoreModule;
use crate::error::BuildSocError;
use crate::meta_chain::Soc;

/// Error returned when parsing an SOC descriptor fails.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ParseSocError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseSocErrorKind,
}

/// The specific descriptor parsing failure.
#[derive(Clone, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum ParseSocErrorKind {
    /// An unknown directive keyword.
    UnknownDirective(String),
    /// A directive had the wrong number or shape of arguments.
    BadArguments(String),
    /// A `core` directive names an unknown benchmark.
    UnknownBenchmark(String),
    /// The `soc` directive is missing or repeated.
    MissingName,
    /// The resulting SOC failed structural validation.
    Build(BuildSocError),
}

impl fmt::Display for ParseSocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseSocErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseSocErrorKind::BadArguments(l) => write!(f, "bad arguments in `{l}`"),
            ParseSocErrorKind::UnknownBenchmark(n) => write!(f, "unknown benchmark `{n}`"),
            ParseSocErrorKind::MissingName => write!(f, "missing or repeated `soc <name>`"),
            ParseSocErrorKind::Build(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ParseSocError {}

/// A parsed descriptor, not yet instantiated.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SocDescriptor {
    /// SOC name.
    pub name: String,
    /// TAM width (number of meta scan chains).
    pub tam_width: usize,
    /// Benchmark names, in daisy-chain order.
    pub cores: Vec<String>,
}

impl SocDescriptor {
    /// Parses descriptor text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSocError`] on malformed directives or unknown
    /// benchmarks.
    ///
    /// # Panics
    ///
    /// Panics only on internal invariant violations.
    pub fn parse(text: &str) -> Result<Self, ParseSocError> {
        let mut name: Option<String> = None;
        let mut tam_width = 1usize;
        let mut cores = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().expect("non-empty line has a word");
            let args: Vec<&str> = words.collect();
            match directive {
                "soc" => {
                    if name.is_some() || args.len() != 1 {
                        return Err(ParseSocError {
                            line: lineno,
                            kind: ParseSocErrorKind::MissingName,
                        });
                    }
                    name = Some(args[0].to_owned());
                }
                "tam" => {
                    let width = args
                        .first()
                        .and_then(|w| w.parse::<usize>().ok())
                        .filter(|&w| w >= 1 && args.len() == 1);
                    match width {
                        Some(w) => tam_width = w,
                        None => {
                            return Err(ParseSocError {
                                line: lineno,
                                kind: ParseSocErrorKind::BadArguments(line.to_owned()),
                            })
                        }
                    }
                }
                "core" => {
                    if args.len() != 1 {
                        return Err(ParseSocError {
                            line: lineno,
                            kind: ParseSocErrorKind::BadArguments(line.to_owned()),
                        });
                    }
                    let core = args[0];
                    if core != "s27" && generate::profile(core).is_none() {
                        return Err(ParseSocError {
                            line: lineno,
                            kind: ParseSocErrorKind::UnknownBenchmark(core.to_owned()),
                        });
                    }
                    cores.push(core.to_owned());
                }
                other => {
                    return Err(ParseSocError {
                        line: lineno,
                        kind: ParseSocErrorKind::UnknownDirective(other.to_owned()),
                    })
                }
            }
        }
        let name = name.ok_or(ParseSocError {
            line: 0,
            kind: ParseSocErrorKind::MissingName,
        })?;
        Ok(SocDescriptor {
            name,
            tam_width,
            cores,
        })
    }

    /// Instantiates the SOC: every core from the benchmark generator,
    /// threaded as one meta chain (`tam 1`) or `tam` balanced chains.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSocError`] (kind [`ParseSocErrorKind::Build`]) if
    /// the SOC structure is invalid (e.g. duplicate core names).
    pub fn build(&self) -> Result<Soc, ParseSocError> {
        let cores: Vec<CoreModule> = self
            .cores
            .iter()
            .map(|name| CoreModule::new(generate::benchmark(name)))
            .collect();
        let result = if self.tam_width == 1 {
            Soc::single_chain(self.name.clone(), cores)
        } else {
            Soc::balanced(self.name.clone(), cores, self.tam_width)
        };
        result.map_err(|e| ParseSocError {
            line: 0,
            kind: ParseSocErrorKind::Build(e),
        })
    }
}

/// The embedded descriptor of the paper's second SOC (the d695
/// variant).
pub const D695_DESCRIPTOR: &str = include_str!("data/d695.soc");

/// The embedded descriptor of the paper's first SOC (six largest
/// ISCAS-89 cores on one meta chain).
pub const SOC1_DESCRIPTOR: &str = include_str!("data/soc1.soc");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_descriptor() {
        let d = SocDescriptor::parse("soc tiny\ncore s27\n").unwrap();
        assert_eq!(d.name, "tiny");
        assert_eq!(d.tam_width, 1);
        assert_eq!(d.cores, vec!["s27".to_owned()]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = SocDescriptor::parse("# header\nsoc x # inline\n\ntam 4\ncore s298\n").unwrap();
        assert_eq!(d.tam_width, 4);
    }

    #[test]
    fn embedded_d695_matches_hardcoded_builder() {
        let d = SocDescriptor::parse(D695_DESCRIPTOR).unwrap();
        let from_text = d.build().unwrap();
        let hardcoded = crate::d695::soc2().unwrap();
        assert_eq!(from_text.num_chains(), hardcoded.num_chains());
        assert_eq!(from_text.total_positions(), hardcoded.total_positions());
        let names: Vec<&str> = from_text.cores().iter().map(super::super::core_module::CoreModule::name).collect();
        let expected: Vec<&str> = hardcoded.cores().iter().map(super::super::core_module::CoreModule::name).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn embedded_soc1_matches_hardcoded_builder() {
        let d = SocDescriptor::parse(SOC1_DESCRIPTOR).unwrap();
        let from_text = d.build().unwrap();
        let hardcoded = crate::d695::soc1().unwrap();
        assert_eq!(from_text.num_chains(), 1);
        assert_eq!(from_text.total_positions(), hardcoded.total_positions());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = SocDescriptor::parse("soc x\nbogus y\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseSocErrorKind::UnknownDirective(_)));
        let err = SocDescriptor::parse("soc x\ncore not_a_chip\n").unwrap_err();
        assert!(matches!(err.kind, ParseSocErrorKind::UnknownBenchmark(_)));
        let err = SocDescriptor::parse("core s27\n").unwrap_err();
        assert!(matches!(err.kind, ParseSocErrorKind::MissingName));
        let err = SocDescriptor::parse("soc x\ntam zero\n").unwrap_err();
        assert!(matches!(err.kind, ParseSocErrorKind::BadArguments(_)));
    }

    #[test]
    fn duplicate_cores_fail_at_build() {
        let d = SocDescriptor::parse("soc x\ncore s27\ncore s27\n").unwrap();
        let err = d.build().unwrap_err();
        assert!(matches!(err.kind, ParseSocErrorKind::Build(_)));
    }
}
