//! The two SOCs evaluated in the paper, built from synthetic stand-ins
//! for the ISCAS-89 benchmarks (see `scan-netlist::generate` and
//! `DESIGN.md` §5).

use scan_netlist::generate;

use crate::core_module::CoreModule;
use crate::error::BuildSocError;
use crate::meta_chain::Soc;

/// Core order of the paper's first SOC: the six largest ISCAS-89
/// benchmarks stitched onto a single meta scan chain.
pub const SOC1_CORES: [&str; 6] = ["s9234", "s13207", "s15850", "s35932", "s38417", "s38584"];

/// Core order of the paper's second SOC (the d695 variant, Fig. 4): the
/// eight full-scan ISCAS-89 modules of the ITC'02 d695 benchmark,
/// daisy-chained on an 8-bit TAM.
pub const D695_CORES: [&str; 8] = [
    "s838", "s9234", "s5378", "s38584", "s13207", "s38417", "s35932", "s15850",
];

/// TAM width of the second SOC.
pub const D695_TAM_WIDTH: usize = 8;

fn cores_for(names: &[&str]) -> Vec<CoreModule> {
    names
        .iter()
        .map(|name| CoreModule::new(generate::benchmark(name)))
        .collect()
}

/// Builds the paper's first SOC: six largest ISCAS-89 cores on a single
/// meta scan chain.
///
/// # Errors
///
/// Propagates [`BuildSocError`]; cannot fail for the fixed core list in
/// practice.
pub fn soc1() -> Result<Soc, BuildSocError> {
    Soc::single_chain("soc1", cores_for(&SOC1_CORES))
}

/// Builds the paper's second SOC: the d695 variant with 8 balanced meta
/// scan chains over an 8-bit TAM.
///
/// # Errors
///
/// Propagates [`BuildSocError`]; cannot fail for the fixed core list in
/// practice.
pub fn soc2() -> Result<Soc, BuildSocError> {
    Soc::balanced("d695", cores_for(&D695_CORES), D695_TAM_WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc1_is_one_long_chain() {
        let soc = soc1().unwrap();
        assert_eq!(soc.num_chains(), 1);
        assert_eq!(soc.cores().len(), 6);
        // 6173 FFs + 1071 POs across the six largest benchmarks.
        assert_eq!(soc.total_positions(), 6173 + 1071);
    }

    #[test]
    fn soc2_has_eight_balanced_chains() {
        let soc = soc2().unwrap();
        assert_eq!(soc.num_chains(), 8);
        assert_eq!(soc.cores().len(), 8);
        let max = soc.max_chain_len();
        let min = soc.chains().iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 8, "chains unbalanced: {min}..{max}");
    }

    #[test]
    fn soc_cores_resolve_by_name() {
        let soc = soc1().unwrap();
        for name in SOC1_CORES {
            assert!(soc.core_index(name).is_some(), "missing core {name}");
        }
    }
}
