//! Test access mechanism (TAM) modelling: `TestRail` daisy-chain schedules
//! and bypass accounting.
//!
//! The paper's SOC experiments use a `TestRail` \[Marinissen et al.\]: meta
//! scan chains threaded through the cores' internal chains. Patterns are
//! transported to all cores in one session; when a core runs out of test
//! patterns it is *bypassed* (a 1-bit register replaces its chain
//! segment), shortening subsequent shifts. This module computes those
//! schedules and cycle counts; the diagnosis experiments themselves use
//! uniform pattern budgets (see `DESIGN.md` §5).

use crate::meta_chain::Soc;

/// Per-core test requirements for schedule computation.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct CoreTestPlan {
    /// Number of BIST patterns this core needs.
    pub patterns: usize,
}

/// One phase of a daisy-chain schedule: the set of still-active cores
/// and the per-pattern shift length while they are active.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct SchedulePhase {
    /// Cores still receiving patterns (indices into [`Soc::cores`]).
    pub active_cores: Vec<usize>,
    /// Patterns applied during this phase.
    pub patterns: usize,
    /// Shift cycles per pattern (longest active chain segment; bypassed
    /// cores contribute one cycle each).
    pub shift_cycles: usize,
}

/// A complete daisy-chain test schedule.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct TestSchedule {
    phases: Vec<SchedulePhase>,
}

impl TestSchedule {
    /// Computes the daisy-chain schedule for an SOC given each core's
    /// pattern budget: all cores start active; after each phase the
    /// core(s) with the smallest remaining budget are bypassed.
    ///
    /// # Panics
    ///
    /// Panics if `plans.len()` differs from the SOC's core count.
    #[must_use]
    pub fn daisy_chain(soc: &Soc, plans: &[CoreTestPlan]) -> Self {
        assert_eq!(
            plans.len(),
            soc.cores().len(),
            "one test plan per core required"
        );
        let mut remaining: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.patterns))
            .collect();
        let mut applied = 0usize;
        let mut phases = Vec::new();
        loop {
            remaining.retain(|&(_, budget)| budget > applied);
            if remaining.is_empty() {
                break;
            }
            let next_stop = remaining.iter().map(|&(_, b)| b).min().expect("non-empty");
            let active: Vec<usize> = remaining.iter().map(|&(i, _)| i).collect();
            let shift_cycles = Self::phase_shift_cycles(soc, &active);
            phases.push(SchedulePhase {
                active_cores: active,
                patterns: next_stop - applied,
                shift_cycles,
            });
            applied = next_stop;
        }
        TestSchedule { phases }
    }

    fn phase_shift_cycles(soc: &Soc, active: &[usize]) -> usize {
        // Per chain: active cores contribute their full segment length,
        // bypassed cores one bypass flop.
        let active_set: std::collections::BTreeSet<usize> = active.iter().copied().collect();
        soc.chains()
            .iter()
            .map(|chain| {
                let mut cycles = 0usize;
                let mut bypassed_seen: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
                for cell in chain {
                    if active_set.contains(&(cell.core as usize)) {
                        cycles += 1;
                    } else if bypassed_seen.insert(cell.core) {
                        cycles += 1; // the bypass register
                    }
                }
                cycles
            })
            .max()
            .unwrap_or(0)
    }

    /// The schedule phases in application order.
    #[must_use]
    pub fn phases(&self) -> &[SchedulePhase] {
        &self.phases
    }

    /// Total scan shift cycles over the whole schedule (excluding
    /// capture cycles).
    #[must_use]
    pub fn total_shift_cycles(&self) -> usize {
        self.phases
            .iter()
            .map(|p| p.patterns * p.shift_cycles)
            .sum()
    }

    /// Total patterns applied (the maximum core budget).
    #[must_use]
    pub fn total_patterns(&self) -> usize {
        self.phases.iter().map(|p| p.patterns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_module::CoreModule;
    use scan_netlist::generate::{generate, profile};

    fn soc3() -> Soc {
        let cores = vec![
            CoreModule::new(generate(profile("s298").unwrap(), 1)),
            CoreModule::new(generate(profile("s344").unwrap(), 1)),
            CoreModule::new(generate(profile("s386").unwrap(), 1)),
        ];
        Soc::single_chain("trio", cores).unwrap()
    }

    #[test]
    fn uniform_budgets_single_phase() {
        let soc = soc3();
        let plans = vec![CoreTestPlan { patterns: 100 }; 3];
        let sched = TestSchedule::daisy_chain(&soc, &plans);
        assert_eq!(sched.phases().len(), 1);
        assert_eq!(sched.total_patterns(), 100);
        assert_eq!(
            sched.phases()[0].shift_cycles,
            soc.total_positions(),
            "single chain: every position shifts"
        );
    }

    #[test]
    fn bypass_shortens_later_phases() {
        let soc = soc3();
        let plans = vec![
            CoreTestPlan { patterns: 50 },
            CoreTestPlan { patterns: 100 },
            CoreTestPlan { patterns: 100 },
        ];
        let sched = TestSchedule::daisy_chain(&soc, &plans);
        assert_eq!(sched.phases().len(), 2);
        let p0 = &sched.phases()[0];
        let p1 = &sched.phases()[1];
        assert_eq!(p0.patterns, 50);
        assert_eq!(p1.patterns, 50);
        assert!(p1.shift_cycles < p0.shift_cycles);
        // Bypassing core 0 (s298 view: 14 FFs + 6 POs = 20 positions)
        // replaces 20 cells with 1 bypass flop.
        assert_eq!(p0.shift_cycles - p1.shift_cycles, 20 - 1);
    }

    #[test]
    fn distinct_budgets_three_phases() {
        let soc = soc3();
        let plans = vec![
            CoreTestPlan { patterns: 10 },
            CoreTestPlan { patterns: 20 },
            CoreTestPlan { patterns: 30 },
        ];
        let sched = TestSchedule::daisy_chain(&soc, &plans);
        assert_eq!(sched.phases().len(), 3);
        assert_eq!(sched.total_patterns(), 30);
        assert_eq!(sched.phases()[2].active_cores, vec![2]);
        let total = sched.total_shift_cycles();
        assert!(total > 0);
    }

    #[test]
    fn zero_budget_core_never_active() {
        let soc = soc3();
        let plans = vec![
            CoreTestPlan { patterns: 0 },
            CoreTestPlan { patterns: 5 },
            CoreTestPlan { patterns: 5 },
        ];
        let sched = TestSchedule::daisy_chain(&soc, &plans);
        assert!(sched
            .phases()
            .iter()
            .all(|p| !p.active_cores.contains(&0)));
    }
}
