//! Error types for SOC construction.

use std::error::Error;
use std::fmt;

/// Error returned when building a system-on-chip test structure.
#[derive(Clone, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum BuildSocError {
    /// No cores were supplied.
    NoCores,
    /// The TAM width is zero or wider than the smallest core view.
    BadTamWidth {
        /// The requested width.
        width: usize,
    },
    /// Two cores share a name, making diagnosis reports ambiguous.
    DuplicateCoreName {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for BuildSocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildSocError::NoCores => write!(f, "an SOC needs at least one core"),
            BuildSocError::BadTamWidth { width } => {
                write!(f, "TAM width {width} is invalid for these cores")
            }
            BuildSocError::DuplicateCoreName { name } => {
                write!(f, "core name `{name}` used more than once")
            }
        }
    }
}

impl Error for BuildSocError {}
