//! Meta scan chain construction: threading core-internal scan chains
//! into SOC-level chains (`TestRail` daisy-chain architecture).

use crate::core_module::CoreModule;
use crate::error::BuildSocError;

/// A reference to one observation position of one core.
#[derive(Clone, Copy, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct CellRef {
    /// Index of the core within the SOC.
    pub core: u32,
    /// Local observation index within the core's scan view.
    pub local: u32,
}

/// A system-on-chip under test: embedded cores threaded onto one or more
/// meta scan chains.
///
/// Chain `c`, position `p` holds `chains()[c][p]`, a [`CellRef`] into a
/// core's local scan view. During scan-out, shift cycle `p` presents the
/// cells at position `p` of *every* chain simultaneously to the
/// compactor — which is why the partitioning schemes operate on shift
/// positions (see `scan-diagnosis`).
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, Netlist};
/// use scan_soc::{CoreModule, Soc};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let twin = Netlist::from_bench("s27_copy", bench::S27_BENCH)?;
/// let cores = vec![CoreModule::new(bench::s27()), CoreModule::new(twin)];
/// let soc = Soc::single_chain("twin", cores)?;
/// assert_eq!(soc.num_chains(), 1);
/// assert_eq!(soc.total_positions(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Soc {
    name: String,
    cores: Vec<CoreModule>,
    chains: Vec<Vec<CellRef>>,
}

impl Soc {
    /// Builds an SOC whose cores are daisy-chained on a single meta scan
    /// chain, in the given core order (the paper's first SOC).
    ///
    /// # Errors
    ///
    /// Returns [`BuildSocError`] if no cores are given or names repeat.
    pub fn single_chain(
        name: impl Into<String>,
        cores: Vec<CoreModule>,
    ) -> Result<Self, BuildSocError> {
        Self::check_cores(&cores)?;
        let mut chain = Vec::new();
        for (ci, core) in cores.iter().enumerate() {
            for local in 0..core.num_positions() {
                chain.push(CellRef {
                    core: ci as u32,
                    local: local as u32,
                });
            }
        }
        Ok(Soc {
            name: name.into(),
            cores,
            chains: vec![chain],
        })
    }

    /// Builds an SOC with `width` balanced meta scan chains (the
    /// paper's second SOC, a d695 variant on an 8-bit TAM): each core's
    /// scan view is cut into `width` nearly equal segments, and chain
    /// `i` daisy-chains segment `i` of every core.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSocError`] if no cores are given, names repeat,
    /// or `width` is zero.
    pub fn balanced(
        name: impl Into<String>,
        cores: Vec<CoreModule>,
        width: usize,
    ) -> Result<Self, BuildSocError> {
        Self::check_cores(&cores)?;
        if width == 0 {
            return Err(BuildSocError::BadTamWidth { width });
        }
        let mut chains: Vec<Vec<CellRef>> = vec![Vec::new(); width];
        for (ci, core) in cores.iter().enumerate() {
            let n = core.num_positions();
            let base = n / width;
            let rem = n % width;
            let mut local = 0usize;
            for (w, chain) in chains.iter_mut().enumerate() {
                let seg = base + usize::from(w < rem);
                for _ in 0..seg {
                    chain.push(CellRef {
                        core: ci as u32,
                        local: local as u32,
                    });
                    local += 1;
                }
            }
        }
        Ok(Soc {
            name: name.into(),
            cores,
            chains,
        })
    }

    fn check_cores(cores: &[CoreModule]) -> Result<(), BuildSocError> {
        if cores.is_empty() {
            return Err(BuildSocError::NoCores);
        }
        let mut names = std::collections::BTreeSet::new();
        for core in cores {
            if !names.insert(core.name().to_owned()) {
                return Err(BuildSocError::DuplicateCoreName {
                    name: core.name().to_owned(),
                });
            }
        }
        Ok(())
    }

    /// The SOC name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The embedded cores.
    #[must_use]
    pub fn cores(&self) -> &[CoreModule] {
        &self.cores
    }

    /// Finds a core index by name.
    #[must_use]
    pub fn core_index(&self, name: &str) -> Option<usize> {
        self.cores.iter().position(|c| c.name() == name)
    }

    /// The meta scan chains.
    #[must_use]
    pub fn chains(&self) -> &[Vec<CellRef>] {
        &self.chains
    }

    /// Number of meta scan chains (TAM width).
    #[must_use]
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Length of the longest meta chain (shift cycles per pattern
    /// unload).
    #[must_use]
    pub fn max_chain_len(&self) -> usize {
        self.chains.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total observation positions across all chains.
    #[must_use]
    pub fn total_positions(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Maps every cell to its `(chain, position)` coordinate, indexed by
    /// a dense global cell id assigned chain-major (chain 0's cells
    /// first, in shift order).
    #[must_use]
    pub fn layout(&self) -> Vec<(CellRef, u32, u32)> {
        let mut layout = Vec::with_capacity(self.total_positions());
        for (c, chain) in self.chains.iter().enumerate() {
            for (p, &cell) in chain.iter().enumerate() {
                layout.push((cell, c as u32, p as u32));
            }
        }
        layout
    }

    /// The global cell ids (chain-major dense indices, as in
    /// [`Soc::layout`]) belonging to one core.
    #[must_use]
    pub fn core_cells(&self, core: usize) -> Vec<usize> {
        self.layout()
            .iter()
            .enumerate()
            .filter(|(_, (cell, _, _))| cell.core as usize == core)
            .map(|(global, _)| global)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;
    use scan_netlist::generate::{generate, profile};

    fn two_cores() -> Vec<CoreModule> {
        vec![
            CoreModule::new(bench::s27()),
            CoreModule::new(generate(profile("s298").unwrap(), 1)),
        ]
    }

    #[test]
    fn single_chain_concatenates_in_order() {
        let soc = Soc::single_chain("t", two_cores()).unwrap();
        let chain = &soc.chains()[0];
        assert_eq!(chain.len(), 4 + (14 + 6));
        assert!(chain[..4].iter().all(|c| c.core == 0));
        assert!(chain[4..].iter().all(|c| c.core == 1));
        // Local indices ascend within each core.
        assert_eq!(chain[0].local, 0);
        assert_eq!(chain[3].local, 3);
        assert_eq!(chain[4].local, 0);
    }

    #[test]
    fn balanced_chains_are_near_equal() {
        let soc = Soc::balanced("t", two_cores(), 4).unwrap();
        assert_eq!(soc.num_chains(), 4);
        let total: usize = soc.chains().iter().map(Vec::len).sum();
        assert_eq!(total, 24);
        let max = soc.max_chain_len();
        let min = soc.chains().iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 2, "chains unbalanced: {max} vs {min}");
    }

    #[test]
    fn balanced_covers_every_cell_once() {
        let soc = Soc::balanced("t", two_cores(), 3).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for chain in soc.chains() {
            for cell in chain {
                assert!(seen.insert(*cell), "cell {cell:?} appears twice");
            }
        }
        assert_eq!(seen.len(), soc.total_positions());
    }

    #[test]
    fn layout_is_chain_major() {
        let soc = Soc::balanced("t", two_cores(), 2).unwrap();
        let layout = soc.layout();
        assert_eq!(layout.len(), 24);
        assert_eq!(layout[0].1, 0);
        assert_eq!(layout[0].2, 0);
        let first_len = soc.chains()[0].len();
        assert_eq!(layout[first_len].1, 1);
        assert_eq!(layout[first_len].2, 0);
    }

    #[test]
    fn core_cells_partition_globals() {
        let soc = Soc::balanced("t", two_cores(), 2).unwrap();
        let a = soc.core_cells(0);
        let b = soc.core_cells(1);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 20);
        let all: std::collections::BTreeSet<usize> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(all.len(), 24);
    }

    #[test]
    fn errors_rejected() {
        assert!(Soc::single_chain("t", vec![]).is_err());
        let dup = vec![CoreModule::new(bench::s27()), CoreModule::new(bench::s27())];
        assert!(Soc::single_chain("t", dup).is_err());
        assert!(Soc::balanced("t", two_cores(), 0).is_err());
    }
}
