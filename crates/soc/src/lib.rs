//! System-on-chip test access substrate for the scan-BIST diagnosis
//! workspace.
//!
//! Models core-based SOCs tested through a `TestRail` daisy-chain test
//! access mechanism (TAM):
//!
//! * [`CoreModule`] — an embedded core: netlist + full-scan observation
//!   view;
//! * [`Soc`] — meta scan chains threading the cores' internal chains,
//!   either a single chain ([`Soc::single_chain`], the paper's SOC 1)
//!   or `w` balanced chains over a `w`-bit TAM ([`Soc::balanced`], the
//!   paper's d695-variant SOC 2);
//! * [`tam`] — daisy-chain test schedules with bypass accounting;
//! * [`d695`] — the two concrete SOCs evaluated in the paper.
//!
//! # Examples
//!
//! ```
//! use scan_soc::d695;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = d695::soc2()?;
//! assert_eq!(soc.num_chains(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_possible_truncation)]

mod core_module;
pub mod d695;
pub mod descriptor;
mod error;
mod meta_chain;
pub mod tam;

pub use core_module::CoreModule;
pub use descriptor::{ParseSocError, ParseSocErrorKind, SocDescriptor};
pub use error::BuildSocError;
pub use meta_chain::{CellRef, Soc};
