//! Embedded core descriptors.

use scan_netlist::{Netlist, ScanView};

/// One embedded core of a system-on-chip: a netlist plus its full-scan
/// observation view.
///
/// The view's positions (`0 .. view.len()`) are the core's *local*
/// observation indices; [`Soc`](crate::Soc) maps them onto meta scan
/// chain positions.
#[derive(Clone, Debug)]
pub struct CoreModule {
    name: String,
    netlist: Netlist,
    view: ScanView,
}

impl CoreModule {
    /// Wraps a netlist as an embedded core, observing scan cells and
    /// primary outputs in natural order.
    #[must_use]
    pub fn new(netlist: Netlist) -> Self {
        let view = ScanView::natural(&netlist, true);
        CoreModule {
            name: netlist.name().to_owned(),
            netlist,
            view,
        }
    }

    /// Wraps a netlist with an explicit scan view.
    #[must_use]
    pub fn with_view(netlist: Netlist, view: ScanView) -> Self {
        CoreModule {
            name: netlist.name().to_owned(),
            netlist,
            view,
        }
    }

    /// The core (circuit) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The core's netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The core's full-scan observation view.
    #[must_use]
    pub fn view(&self) -> &ScanView {
        &self.view
    }

    /// Number of observation positions this core contributes to the
    /// meta scan chains.
    #[must_use]
    pub fn num_positions(&self) -> usize {
        self.view.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;

    #[test]
    fn wraps_netlist_with_natural_view() {
        let core = CoreModule::new(bench::s27());
        assert_eq!(core.name(), "s27");
        assert_eq!(core.num_positions(), 4); // 3 FFs + 1 PO
    }
}
