//! Property-based tests for the SOC substrate, on the in-workspace
//! shrink-free harness.

use scan_rng::testkit::Runner;

use scan_netlist::generate::{generate, profile};
use scan_soc::tam::{CoreTestPlan, TestSchedule};
use scan_soc::{CoreModule, Soc};

fn small_cores(count: usize) -> Vec<CoreModule> {
    let names = ["s298", "s344", "s386", "s349", "s382"];
    names
        .iter()
        .take(count)
        .map(|n| CoreModule::new(generate(profile(n).unwrap(), 1)))
        .collect()
}

/// Balanced construction covers every cell exactly once, for any TAM
/// width.
#[test]
fn balanced_covers_exactly_once() {
    Runner::new(24).run("balanced_covers_exactly_once", |g| {
        let width = g.usize("width", 1, 12);
        let cores = g.usize("cores", 1, 5);
        let modules = small_cores(cores);
        let expected: usize = modules.iter().map(CoreModule::num_positions).sum();
        let soc = Soc::balanced("t", modules, width).unwrap();
        assert_eq!(soc.num_chains(), width);
        assert_eq!(soc.total_positions(), expected);
        let mut seen = std::collections::BTreeSet::new();
        for chain in soc.chains() {
            for cell in chain {
                assert!(seen.insert(*cell));
            }
        }
        assert_eq!(seen.len(), expected);
        // Balance: chain lengths differ by at most the core count (one
        // remainder slot per core).
        let max = soc.chains().iter().map(Vec::len).max().unwrap();
        let min = soc.chains().iter().map(Vec::len).min().unwrap();
        assert!(max - min <= cores);
    });
}

/// Layout coordinates are consistent with the chain structure.
#[test]
fn layout_roundtrips() {
    Runner::new(24).run("layout_roundtrips", |g| {
        let width = g.usize("width", 1, 6);
        let soc = Soc::balanced("t", small_cores(3), width).unwrap();
        for (cell, chain, pos) in soc.layout() {
            assert_eq!(soc.chains()[chain as usize][pos as usize], cell);
        }
    });
}

/// Daisy-chain schedules: total patterns equal the largest budget;
/// shift cycles never increase across phases; total shift cycles are
/// bounded by a no-bypass schedule.
#[test]
fn schedules_monotone_and_bounded() {
    Runner::new(24).run("schedules_monotone_and_bounded", |g| {
        let budgets = g.vec("budgets", 3, 3, |r| r.gen_index(300));
        let modules = small_cores(3);
        let soc = Soc::single_chain("t", modules).unwrap();
        let plans: Vec<CoreTestPlan> = budgets
            .iter()
            .map(|&p| CoreTestPlan { patterns: p })
            .collect();
        let sched = TestSchedule::daisy_chain(&soc, &plans);
        let max_budget = budgets.iter().copied().max().unwrap_or(0);
        assert_eq!(sched.total_patterns(), max_budget);
        let mut prev = usize::MAX;
        for phase in sched.phases() {
            assert!(phase.shift_cycles <= prev);
            assert!(phase.patterns > 0);
            prev = phase.shift_cycles;
        }
        let naive = max_budget * soc.total_positions();
        assert!(sched.total_shift_cycles() <= naive);
    });
}
