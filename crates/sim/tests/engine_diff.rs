//! Differential harness between the fault-simulation engines.
//!
//! The bit-parallel PPSFP engine ([`PpsfpSimulator`]) is the fast
//! production path; the event-driven engine ([`EventFaultSimulator`])
//! and the whole-circuit resimulator ([`FaultSimulator`]) are the
//! reference oracles. These tests drive all three over
//! `scan_rng::testkit`-generated circuits, fault lists, and partition
//! plans, and require *bit-identical* results end to end:
//!
//! * per-fault error maps and golden responses,
//! * per-session verdicts and MISR-model signatures (compared through
//!   the campaign audit trail, which records the failing groups every
//!   signature mismatch produces),
//! * strict and robust diagnosis reports, serial and sharded at
//!   1 / 2 / 8 threads.
//!
//! `scan-diagnosis` is a dev-dependency here (Cargo permits the
//! dev-cycle): campaign-level identity is what licenses the CLI to
//! default to the fast engine.

use scan_bist::Scheme;
use scan_diagnosis::{
    CampaignSpec, NoiseConfig, NoiseModel, PreparedCampaign, RobustPolicy,
};
use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::{Netlist, ScanOrdering, ScanView};
use scan_rng::testkit::Runner;
use scan_sim::{
    EventFaultSimulator, FaultSimulator, FaultUniverse, PatternSet, PpsfpSimulator, SimEngine,
};

fn random_circuit(g: &mut scan_rng::testkit::Gen) -> Netlist {
    let name = g.pick("profile", &["s298", "s344", "s386"]);
    let seed = g.u64("circuit_seed", 0, 31);
    generate_with(profile(name).unwrap(), seed, &GeneratorConfig::default())
}

/// A campaign spec pair differing only in the engine field.
fn spec_pair(g: &mut scan_rng::testkit::Gen) -> (CampaignSpec, CampaignSpec, Scheme) {
    // Deliberately includes pattern counts that are not multiples of
    // 64, so the ragged last word is always in play.
    let patterns = g.usize("patterns", 33, 130);
    let groups = g.u16("groups", 2, 6);
    let partitions = g.usize("partitions", 2, 6);
    let scheme = g.pick(
        "scheme",
        &[
            Scheme::TWO_STEP_DEFAULT,
            Scheme::RandomSelection,
            Scheme::IntervalBased,
        ],
    );
    let mut spec = CampaignSpec::new(patterns, groups, partitions);
    spec.num_faults = g.usize("faults", 10, 40);
    spec.fault_seed = g.u64("fault_seed", 0, 1 << 20);
    if g.bool("shuffled_chain") {
        spec.ordering = ScanOrdering::Shuffled(g.u64("chain_seed", 0, 1 << 10));
    }
    let mut bitpar = spec;
    bitpar.engine = SimEngine::BitParallel;
    let mut event = spec;
    event.engine = SimEngine::EventDriven;
    (bitpar, event, scheme)
}

/// All three engines agree on the golden response and on every sampled
/// fault's error map, at pattern widths that exercise the masked tail.
#[test]
fn error_maps_bit_identical_across_engines() {
    Runner::new(10).run("error_maps_bit_identical_across_engines", |g| {
        let n = random_circuit(g);
        let view = ScanView::natural(&n, true);
        let num_patterns = g.usize("patterns", 1, 200);
        let pat_seed = g.u64("pattern_seed", 0, 1 << 20);
        let patterns =
            PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), num_patterns, pat_seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut esim = EventFaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        assert_eq!(fsim.golden(), psim.golden());
        assert_eq!(fsim.golden(), esim.golden());
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(40) {
            let reference = fsim.error_map(fault);
            assert_eq!(reference, esim.error_map(fault), "event engine diverged");
            assert_eq!(reference, psim.error_map(fault), "ppsfp engine diverged");
            assert_eq!(
                reference.is_detected(),
                psim.detects(fault),
                "fault dropping changed the verdict"
            );
        }
    });
}

/// Campaigns prepared on either engine produce identical strict
/// diagnosis results: reports, per-fault candidate sets, and the full
/// audit trail (which pins every session verdict and failing group the
/// MISR signature comparison yields), serially and at 1/2/8 threads.
#[test]
fn strict_campaigns_identical_across_engines() {
    Runner::new(6).run("strict_campaigns_identical_across_engines", |g| {
        let n = random_circuit(g);
        let (bitpar, event, scheme) = spec_pair(g);
        let fast = PreparedCampaign::from_circuit(&n, &bitpar).unwrap();
        let oracle = PreparedCampaign::from_circuit(&n, &event).unwrap();
        assert_eq!(fast.num_faults(), oracle.num_faults());
        // Reports carry f64 aggregates; Debug formatting is exact for
        // f64, so string equality is bit-identity.
        let reference = format!("{:?}", oracle.run(scheme).unwrap());
        assert_eq!(reference, format!("{:?}", fast.run(scheme).unwrap()));
        for threads in [1usize, 2, 8] {
            assert_eq!(
                reference,
                format!("{:?}", fast.run_parallel(scheme, threads).unwrap()),
                "bitpar parallel run diverged at {threads} threads"
            );
            assert_eq!(
                reference,
                format!("{:?}", oracle.run_parallel(scheme, threads).unwrap()),
                "event parallel run diverged at {threads} threads"
            );
        }
        assert_eq!(
            oracle.candidate_sets(scheme).unwrap(),
            fast.candidate_sets(scheme).unwrap()
        );
        let oracle_audit = oracle.audit(scheme).unwrap();
        let fast_audit = fast.audit(scheme).unwrap();
        assert_eq!(oracle_audit, fast_audit);
        assert_eq!(oracle_audit.to_ndjson(), fast_audit.to_ndjson());
    });
}

/// The fault-tolerant (robust) path is engine-independent too, serial
/// and sharded: retries, votes, and fallbacks all replay identically
/// because the underlying error maps are bit-identical.
#[test]
fn robust_campaigns_identical_across_engines() {
    Runner::new(4).run("robust_campaigns_identical_across_engines", |g| {
        let n = random_circuit(g);
        let (bitpar, event, scheme) = spec_pair(g);
        let fast = PreparedCampaign::from_circuit(&n, &bitpar).unwrap();
        let oracle = PreparedCampaign::from_circuit(&n, &event).unwrap();
        let mut config = NoiseConfig::noiseless(g.u64("noise_seed", 0, 1 << 20));
        config.flip_rate = g.f64("flip", 0.0, 0.1);
        config.dropout_rate = g.f64("dropout", 0.0, 0.05);
        let noise = NoiseModel::new(config).unwrap();
        let policy = RobustPolicy {
            max_retry_rounds: 2,
            votes: 3,
        };
        let reference = format!("{:?}", oracle.run_robust(scheme, &noise, &policy).unwrap());
        assert_eq!(
            reference,
            format!("{:?}", fast.run_robust(scheme, &noise, &policy).unwrap())
        );
        for threads in [1usize, 2, 8] {
            assert_eq!(
                reference,
                format!(
                    "{:?}",
                    fast.run_robust_parallel(scheme, &noise, &policy, threads)
                        .unwrap()
                ),
                "robust bitpar run diverged at {threads} threads"
            );
        }
    });
}

/// Multiple-fault campaigns agree as well: the PPSFP multi-fault sweep
/// against the whole-circuit resimulation oracle the event engine
/// falls back to for multiplets.
#[test]
fn multiplet_campaigns_identical_across_engines() {
    Runner::new(4).run("multiplet_campaigns_identical_across_engines", |g| {
        let n = random_circuit(g);
        let (bitpar, event, scheme) = spec_pair(g);
        let size = g.usize("multiplet_size", 2, 3);
        let fast = PreparedCampaign::from_circuit_multiplets(&n, &bitpar, size).unwrap();
        let oracle = PreparedCampaign::from_circuit_multiplets(&n, &event, size).unwrap();
        assert_eq!(fast.num_faults(), oracle.num_faults());
        assert_eq!(
            format!("{:?}", oracle.run(scheme).unwrap()),
            format!("{:?}", fast.run(scheme).unwrap())
        );
        assert_eq!(
            oracle.candidate_sets(scheme).unwrap(),
            fast.candidate_sets(scheme).unwrap()
        );
    });
}
