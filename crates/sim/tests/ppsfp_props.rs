//! Property tests for the bit-packing primitives under the PPSFP
//! engine: the pattern transpose, the masked ragged tail, and the
//! statelessness of fault dropping. All on the in-workspace
//! shrink-free `scan_rng::testkit` harness.

use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::ScanView;
use scan_rng::testkit::{Gen, Runner};
use scan_sim::{FaultUniverse, PatternSet, PpsfpSimulator};

/// Packing a bit stream into 64-wide words and reading it back bit by
/// bit is lossless — the transpose round-trips for any (PIs, FFs,
/// patterns) shape, ragged tails included.
#[test]
fn pattern_pack_unpack_round_trip() {
    Runner::new(24).run("pattern_pack_unpack_round_trip", |g| {
        let num_pis = g.usize("pis", 1, 9);
        let num_ffs = g.usize("ffs", 0, 9);
        let num_patterns = g.usize("patterns", 1, 200);
        let seed = g.u64("seed", 0, 1 << 30);
        // The scan-application order from_bit_stream consumes: per
        // pattern, the scan-chain load bits (FF 0..F−1), then the
        // primary inputs (PI 0..P−1).
        let mut rng = scan_rng::ScanRng::seed_from_u64(seed);
        let stream: Vec<bool> = (0..num_patterns * (num_pis + num_ffs))
            .map(|_| rng.next_u64() & 1 == 1)
            .collect();
        let mut cursor = stream.iter().copied();
        let packed = PatternSet::from_bit_stream(num_pis, num_ffs, num_patterns, || {
            cursor.next().expect("stream long enough")
        });
        assert_eq!(packed.num_patterns(), num_patterns);
        assert_eq!(packed.num_words(), num_patterns.div_ceil(64));
        for pat in 0..num_patterns {
            let base = pat * (num_pis + num_ffs);
            for ff in 0..num_ffs {
                assert_eq!(packed.state_bit(ff, pat), stream[base + ff], "ff {ff} pat {pat}");
            }
            for pi in 0..num_pis {
                assert_eq!(
                    packed.pi_bit(pi, pat),
                    stream[base + num_ffs + pi],
                    "pi {pi} pat {pat}"
                );
            }
        }
        // Word accessors never expose lanes beyond the tail mask.
        let last = packed.num_words() - 1;
        let mask = packed.lane_mask(last);
        for pi in 0..num_pis {
            assert_eq!(packed.pi_word(pi, last) & !mask, 0, "stray tail lanes");
        }
    });
}

/// Tail lanes never leak into verdicts: simulating a prefix-identical
/// pattern set with N extra patterns yields the same error bits for
/// the shared prefix, and no error map ever reports a pattern index
/// past `num_patterns`.
#[test]
fn masked_tail_bits_never_leak() {
    Runner::new(12).run("masked_tail_bits_never_leak", |g| {
        let name = g.pick("profile", &["s298", "s344"]);
        let n = generate_with(
            profile(name).unwrap(),
            g.u64("circuit_seed", 0, 15),
            &GeneratorConfig::default(),
        );
        let view = ScanView::natural(&n, true);
        // A short set whose last word is ragged, and a longer set
        // sharing the same leading bit stream.
        let short_len = g.usize("short", 1, 150);
        let extra = g.usize("extra", 1, 80);
        let seed = g.u64("pattern_seed", 0, 1 << 20);
        let short = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), short_len, seed);
        let long = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), short_len + extra, seed);
        let mut psim_short = PpsfpSimulator::new(&n, &view, &short).unwrap();
        let mut psim_long = PpsfpSimulator::new(&n, &view, &long).unwrap();
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(25) {
            let map_short = psim_short.error_map(fault);
            let map_long = psim_long.error_map(fault);
            for (pos, pat) in map_short.iter_bits() {
                assert!(pat < short_len, "error bit past num_patterns");
                assert!(
                    map_long.bit(pos, pat),
                    "prefix error bit ({pos},{pat}) lost when tail grows"
                );
            }
            for (pos, pat) in map_long.iter_bits() {
                assert!(pat < short_len + extra, "error bit past num_patterns");
                if pat < short_len {
                    assert!(
                        map_short.bit(pos, pat),
                        "tail lanes leaked error ({pos},{pat}) into the short set"
                    );
                }
            }
        }
    });
}

/// Dropping a fault never changes another fault's outcome: any
/// interleaving of early-exit `detects` probes and full `error_map`
/// sweeps leaves the engine in a state where every fault still
/// produces its fresh-engine error map.
#[test]
fn fault_dropping_leaves_no_residue() {
    Runner::new(12).run("fault_dropping_leaves_no_residue", |g| {
        let n = generate_with(
            profile("s298").unwrap(),
            g.u64("circuit_seed", 0, 15),
            &GeneratorConfig::default(),
        );
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(
            n.num_inputs(),
            n.num_dffs(),
            g.usize("patterns", 65, 190),
            g.u64("pattern_seed", 0, 1 << 20),
        );
        let universe = FaultUniverse::collapsed(&n);
        let mut dirty = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let mut fresh = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let probes: Vec<usize> = (0..g.usize("ops", 5, 25))
            .map(|i| g.usize(&format!("probe_{i}"), 0, universe.len() - 1))
            .collect();
        for (i, &probe) in probes.iter().enumerate() {
            let fault = universe.faults()[probe];
            let expected = fresh.error_map(&fault);
            if interleave(g, i) {
                // Early-exit probe first, then the full map on the
                // same (possibly dirty) engine.
                assert_eq!(dirty.detects(&fault), expected.is_detected());
            }
            assert_eq!(
                dirty.error_map(&fault),
                expected,
                "residue after {i} prior sweeps"
            );
        }
    });
}

fn interleave(g: &mut Gen, i: usize) -> bool {
    g.bool(&format!("interleave_{i}"))
}
