//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::{bench, stats::OutputCones, ScanView};
use scan_sim::{Fault, FaultSimulator, FaultUniverse, PatternSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The golden response of a circuit never depends on the word
    /// packing: simulating 64+n patterns gives the same bits as
    /// simulating the first 64 alone.
    #[test]
    fn golden_response_prefix_stable(seed in 0u64..20, extra in 1usize..64) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let short = PatternSet::pseudo_random(4, 3, 64, seed);
        let long = PatternSet::pseudo_random(4, 3, 64 + extra, seed);
        let fsim_short = FaultSimulator::new(&n, &view, &short).unwrap();
        let fsim_long = FaultSimulator::new(&n, &view, &long).unwrap();
        for pos in 0..view.len() {
            for pat in 0..64 {
                prop_assert_eq!(
                    fsim_short.golden().bit(pos, pat),
                    fsim_long.golden().bit(pos, pat)
                );
            }
        }
    }

    /// No fault ever produces an error outside its structural output
    /// cone, across random synthetic circuits.
    #[test]
    fn errors_confined_to_cones(seed in 0u64..12) {
        let p = profile("s298").unwrap();
        let n = generate_with(p, seed, &GeneratorConfig::default());
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), 64, seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let cones = OutputCones::compute(&n, &view);
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(60) {
            let errors = fsim.error_map(fault);
            let cone = match fault.site {
                scan_sim::FaultSite::Stem(net) => cones.cone(net),
                scan_sim::FaultSite::Pin { gate, .. } => cones.cone(n.gate(gate).output),
            };
            for pos in errors.failing_positions().iter() {
                prop_assert!(cone.contains(pos));
            }
        }
    }

    /// Complementary stuck-at faults on the same site never produce
    /// errors in the same (position, pattern) bit — a bit is either
    /// stuck wrong at 0 or at 1, not both.
    #[test]
    fn complementary_faults_disjoint_errors(seed in 0u64..12) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 64, seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        for net in n.net_ids() {
            let e0 = fsim.error_map(&Fault::stem(net, false));
            let e1 = fsim.error_map(&Fault::stem(net, true));
            for (pos, pat) in e0.iter_bits() {
                prop_assert!(
                    !e1.bit(pos, pat),
                    "net {} errs both ways at ({pos},{pat})",
                    n.net_name(net)
                );
            }
        }
    }

    /// The fault-free circuit simulated as a "fault" that forces a net
    /// to its own golden constant produces no detected fault only when
    /// values actually match; sanity-check via the zero-diff identity:
    /// a response XORed with itself is empty.
    #[test]
    fn response_self_difference_empty(seed in 0u64..20) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 100, seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let diff = fsim.golden().xor(fsim.golden());
        prop_assert!(!diff.is_detected());
    }

    /// Detected-fault sampling is deterministic in (count, seed) and
    /// monotone in count.
    #[test]
    fn sampling_deterministic_and_monotone(seed in 0u64..20) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 64, 3);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let five = fsim.sample_detected_faults(5, seed);
        let ten = fsim.sample_detected_faults(10, seed);
        prop_assert_eq!(&five[..], &ten[..5.min(ten.len())]);
    }
}
