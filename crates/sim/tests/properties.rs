//! Property-based tests for the simulation substrate, on the
//! in-workspace shrink-free harness.

use scan_rng::testkit::Runner;

use scan_netlist::generate::{generate_with, profile, GeneratorConfig};
use scan_netlist::{bench, stats::OutputCones, ScanView};
use scan_sim::{Fault, FaultSimulator, FaultUniverse, PatternSet};

/// The golden response of a circuit never depends on the word packing:
/// simulating 64+n patterns gives the same bits as simulating the
/// first 64 alone.
#[test]
fn golden_response_prefix_stable() {
    Runner::new(24).run("golden_response_prefix_stable", |g| {
        let seed = g.u64("seed", 0, 19);
        let extra = g.usize("extra", 1, 63);
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let short = PatternSet::pseudo_random(4, 3, 64, seed);
        let long = PatternSet::pseudo_random(4, 3, 64 + extra, seed);
        let fsim_short = FaultSimulator::new(&n, &view, &short).unwrap();
        let fsim_long = FaultSimulator::new(&n, &view, &long).unwrap();
        for pos in 0..view.len() {
            for pat in 0..64 {
                assert_eq!(
                    fsim_short.golden().bit(pos, pat),
                    fsim_long.golden().bit(pos, pat)
                );
            }
        }
    });
}

/// No fault ever produces an error outside its structural output cone,
/// across random synthetic circuits.
#[test]
fn errors_confined_to_cones() {
    Runner::new(12).run("errors_confined_to_cones", |g| {
        let seed = g.u64("seed", 0, 11);
        let p = profile("s298").unwrap();
        let n = generate_with(p, seed, &GeneratorConfig::default());
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), 64, seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let cones = OutputCones::compute(&n, &view);
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(60) {
            let errors = fsim.error_map(fault);
            let cone = match fault.site {
                scan_sim::FaultSite::Stem(net) => cones.cone(net),
                scan_sim::FaultSite::Pin { gate, .. } => cones.cone(n.gate(gate).output),
            };
            for pos in errors.failing_positions().iter() {
                assert!(cone.contains(pos));
            }
        }
    });
}

/// Complementary stuck-at faults on the same site never produce errors
/// in the same (position, pattern) bit — a bit is either stuck wrong
/// at 0 or at 1, not both.
#[test]
fn complementary_faults_disjoint_errors() {
    Runner::new(12).run("complementary_faults_disjoint_errors", |g| {
        let seed = g.u64("seed", 0, 11);
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 64, seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        for net in n.net_ids() {
            let e0 = fsim.error_map(&Fault::stem(net, false));
            let e1 = fsim.error_map(&Fault::stem(net, true));
            for (pos, pat) in e0.iter_bits() {
                assert!(
                    !e1.bit(pos, pat),
                    "net {} errs both ways at ({pos},{pat})",
                    n.net_name(net)
                );
            }
        }
    });
}

/// A response XORed with itself is empty (zero-diff identity).
#[test]
fn response_self_difference_empty() {
    Runner::new(20).run("response_self_difference_empty", |g| {
        let seed = g.u64("seed", 0, 19);
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 100, seed);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let diff = fsim.golden().xor(fsim.golden());
        assert!(!diff.is_detected());
    });
}

/// Detected-fault sampling is deterministic in (count, seed) and
/// monotone in count.
#[test]
fn sampling_deterministic_and_monotone() {
    Runner::new(20).run("sampling_deterministic_and_monotone", |g| {
        let seed = g.u64("seed", 0, 19);
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 64, 3);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let five = fsim.sample_detected_faults(5, seed);
        let ten = fsim.sample_detected_faults(10, seed);
        assert_eq!(&five[..], &ten[..5.min(ten.len())]);
    });
}
