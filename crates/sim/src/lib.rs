//! Bit-parallel gate-level logic and stuck-at fault simulation for
//! full-scan circuits.
//!
//! This crate is the simulation substrate of the scan-BIST diagnosis
//! workspace:
//!
//! * [`PatternSet`] — bit-packed full-scan stimuli (64 patterns/word),
//!   buildable from any serial bit stream (e.g. an LFSR PRPG);
//! * [`Simulator`] — levelized bit-parallel evaluation with optional
//!   stuck-at fault injection (stem or fanout-branch pin);
//! * [`Fault`] / [`FaultUniverse`] — stuck-at fault enumeration with
//!   classical equivalence collapsing;
//! * [`FaultSimulator`] — golden/faulty response computation and
//!   [`ErrorMap`] extraction over a
//!   [`ScanView`](scan_netlist::ScanView), plus reproducible sampling
//!   of detected faults (the paper's 500-fault campaigns);
//! * [`PpsfpSimulator`] — the 64-wide PPSFP campaign engine: cone-
//!   limited word sweeps, fault dropping, and single-pass sampling
//!   that keeps each detection's error map;
//! * [`EventFaultSimulator`] — the event-driven reference oracle;
//! * [`SimEngine`] — explicit engine selection, threaded through the
//!   `scan-diagnosis` campaign entry points and the `scanbist` CLI.
//!
//! # Examples
//!
//! ```
//! use scan_netlist::{bench, ScanView};
//! use scan_sim::{FaultSimulator, FaultUniverse, PatternSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let s27 = bench::s27();
//! let view = ScanView::natural(&s27, true);
//! let patterns = PatternSet::pseudo_random(4, 3, 128, 1);
//! let fsim = FaultSimulator::new(&s27, &view, &patterns)?;
//!
//! let universe = FaultUniverse::collapsed(&s27);
//! let detected = universe
//!     .faults()
//!     .iter()
//!     .filter(|f| fsim.is_detected(f))
//!     .count();
//! assert!(detected > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_possible_truncation)]

pub mod chain_fault;
mod error;
mod event_sim;
mod fault;
mod fault_sim;
mod pattern;
mod ppsfp;
mod response;
mod sequential;
mod simulator;

pub use chain_fault::{locate_chain_fault, simulate_chain_fault, ChainFault};
pub use error::PatternShapeError;
pub use event_sim::EventFaultSimulator;
pub use fault::{site_has_fanout, Fault, FaultSite, FaultUniverse};
pub use fault_sim::FaultSimulator;
pub use ppsfp::{PpsfpSimulator, SimEngine};
pub use sequential::SequentialSimulator;
pub use pattern::PatternSet;
pub use response::{ErrorMap, ResponseMap};
pub use simulator::Simulator;
