//! Levelized bit-parallel logic evaluation.

use scan_netlist::{Driver, Netlist};

use crate::error::PatternShapeError;
use crate::fault::{Fault, FaultSite};
use crate::pattern::PatternSet;

/// A bit-parallel evaluator for the combinational logic of a full-scan
/// netlist.
///
/// Each call to [`Simulator::eval_word`] evaluates up to 64 patterns at
/// once: primary inputs and flip-flop outputs (the scanned-in state) are
/// taken from a [`PatternSet`], gates are evaluated in topological
/// order, and an optional stuck-at [`Fault`] is injected.
///
/// # Examples
///
/// ```
/// use scan_netlist::bench;
/// use scan_sim::{PatternSet, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s27 = bench::s27();
/// let patterns = PatternSet::pseudo_random(4, 3, 64, 1);
/// let sim = Simulator::new(&s27, &patterns)?;
/// let mut values = vec![0u64; s27.num_nets()];
/// sim.eval_word(0, None, &mut values);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    patterns: &'a PatternSet,
}

impl<'a> Simulator<'a> {
    /// Creates an evaluator for a netlist/pattern-set pair.
    ///
    /// # Errors
    ///
    /// Returns [`PatternShapeError`] if the pattern set's PI/FF counts
    /// do not match the netlist.
    pub fn new(netlist: &'a Netlist, patterns: &'a PatternSet) -> Result<Self, PatternShapeError> {
        if patterns.num_pis() != netlist.num_inputs() || patterns.num_ffs() != netlist.num_dffs() {
            return Err(PatternShapeError {
                expected_pis: netlist.num_inputs(),
                expected_ffs: netlist.num_dffs(),
                found_pis: patterns.num_pis(),
                found_ffs: patterns.num_ffs(),
            });
        }
        Ok(Simulator { netlist, patterns })
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The stimulus set.
    #[must_use]
    pub fn patterns(&self) -> &'a PatternSet {
        self.patterns
    }

    /// Evaluates pattern word `word` (patterns `word*64 ..`), writing one
    /// value word per net into `values`.
    ///
    /// `fault` is injected if given: a stem fault forces its net after
    /// the net is driven; a pin fault overrides one gate input pin.
    /// Lanes beyond the pattern count are left unmasked (callers mask
    /// with [`PatternSet::lane_mask`] when comparing).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the netlist's net count or
    /// `word` is out of range.
    pub fn eval_word(&self, word: usize, fault: Option<&Fault>, values: &mut [u64]) {
        match fault {
            Some(f) => self.eval_word_multi(word, std::slice::from_ref(f), values),
            None => self.eval_word_multi(word, &[], values),
        }
    }

    /// Like [`Simulator::eval_word`], but injects *every* fault in
    /// `faults` simultaneously — the multiple-fault scenario the paper
    /// discusses in Section 3 (overlapping or disjoint fault cones).
    ///
    /// If two faults force the same site, the last one in the slice
    /// wins (physically, one defect dominates a node).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the netlist's net count or
    /// `word` is out of range.
    pub fn eval_word_multi(&self, word: usize, faults: &[Fault], values: &mut [u64]) {
        assert_eq!(
            values.len(),
            self.netlist.num_nets(),
            "value buffer must cover every net"
        );
        assert!(word < self.patterns.num_words(), "word out of range");

        // Drive sources.
        for (pi_index, &net) in self.netlist.inputs().iter().enumerate() {
            values[net.index()] = self.patterns.pi_word(pi_index, word);
        }
        for (ff_index, dff) in self.netlist.dffs().iter().enumerate() {
            values[dff.q.index()] = self.patterns.state_word(ff_index, word);
        }
        // Source-driven stems are forced here; gate-driven stems are
        // forced as their gate is evaluated below.
        for fault in faults {
            if let FaultSite::Stem(site) = fault.site {
                if matches!(
                    self.netlist.driver(site),
                    Driver::PrimaryInput | Driver::Dff(_)
                ) {
                    values[site.index()] = force_word(fault.stuck);
                }
            }
        }

        // Evaluate gates in topological order.
        let mut input_buf: Vec<u64> = Vec::with_capacity(8);
        for &gid in self.netlist.topo_order() {
            let gate = self.netlist.gate(gid);
            input_buf.clear();
            input_buf.extend(gate.inputs.iter().map(|n| values[n.index()]));
            for fault in faults {
                if let FaultSite::Pin { gate: fgate, pin } = fault.site {
                    if fgate == gid {
                        input_buf[pin as usize] = force_word(fault.stuck);
                    }
                }
            }
            let mut out = gate.kind.eval_words(&input_buf);
            for fault in faults {
                if let FaultSite::Stem(site) = fault.site {
                    if site == gate.output {
                        out = force_word(fault.stuck);
                    }
                }
            }
            values[gate.output.index()] = out;
        }
    }
}

fn force_word(stuck: bool) -> u64 {
    if stuck {
        !0
    } else {
        0
    }
}
