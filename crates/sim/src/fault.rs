//! Single stuck-at faults: sites, enumeration, and equivalence
//! collapsing.

use std::fmt;

use scan_netlist::{GateId, GateKind, NetId, Netlist};

/// Where a stuck-at fault sits.
#[derive(Clone, Copy, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum FaultSite {
    /// On a net's stem: affects every reader of the net.
    Stem(NetId),
    /// On one input pin of one gate (a fanout branch): affects only that
    /// reader.
    Pin {
        /// The reading gate.
        gate: GateId,
        /// The pin index into the gate's input list.
        pin: u32,
    },
}

/// A single stuck-at fault.
#[derive(Clone, Copy, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub struct Fault {
    /// The fault site.
    pub site: FaultSite,
    /// The stuck value (`false` = stuck-at-0, `true` = stuck-at-1).
    pub stuck: bool,
}

impl Fault {
    /// A stuck-at fault on a net stem.
    #[must_use]
    pub fn stem(net: NetId, stuck: bool) -> Self {
        Fault {
            site: FaultSite::Stem(net),
            stuck,
        }
    }

    /// A stuck-at fault on a gate input pin.
    #[must_use]
    pub fn pin(gate: GateId, pin: u32, stuck: bool) -> Self {
        Fault {
            site: FaultSite::Pin { gate, pin },
            stuck,
        }
    }

    /// Renders the fault against its netlist (e.g. `G10/SA0`).
    #[must_use]
    pub fn describe(&self, netlist: &Netlist) -> String {
        let sa = if self.stuck { "SA1" } else { "SA0" };
        match self.site {
            FaultSite::Stem(net) => format!("{}/{sa}", netlist.net_name(net)),
            FaultSite::Pin { gate, pin } => {
                let g = netlist.gate(gate);
                format!(
                    "{}.pin{}({})/{sa}",
                    netlist.net_name(g.output),
                    pin,
                    netlist.net_name(g.inputs[pin as usize]),
                )
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = if self.stuck { "SA1" } else { "SA0" };
        match self.site {
            FaultSite::Stem(net) => write!(f, "{net}/{sa}"),
            FaultSite::Pin { gate, pin } => write!(f, "{gate}.pin{pin}/{sa}"),
        }
    }
}

/// The set of single stuck-at faults considered for a circuit.
#[derive(Clone, Debug)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
}

impl FaultUniverse {
    /// Every structural fault: stuck-at-0/1 on every net stem, plus
    /// stuck-at-0/1 on every input pin whose net has fanout greater than
    /// one (fanout branches). Pins on single-fanout nets are identical
    /// to the stem fault and are not duplicated.
    #[must_use]
    pub fn all(netlist: &Netlist) -> Self {
        let mut faults = Vec::with_capacity(2 * netlist.num_nets());
        for net in netlist.net_ids() {
            faults.push(Fault::stem(net, false));
            faults.push(Fault::stem(net, true));
        }
        for gid in netlist.gate_ids() {
            let gate = netlist.gate(gid);
            for (pin, &input) in gate.inputs.iter().enumerate() {
                if netlist.fanout_count(input) > 1 {
                    faults.push(Fault::pin(gid, pin as u32, false));
                    faults.push(Fault::pin(gid, pin as u32, true));
                }
            }
        }
        FaultUniverse { faults }
    }

    /// The equivalence-collapsed fault list.
    ///
    /// Collapsing rules (classical gate-level equivalence):
    ///
    /// * NOT/BUF: an input stem fault is equivalent to the corresponding
    ///   output fault (inverted value for NOT), provided the input net
    ///   has a single fanout.
    /// * AND/NAND: a controlling (stuck-at-0) input fault is equivalent
    ///   to the output stuck-at-0 (AND) / stuck-at-1 (NAND); same for
    ///   OR/NOR with stuck-at-1 inputs. Again only for single-fanout
    ///   inputs.
    ///
    /// Branch (pin) faults never collapse across the gate.
    #[must_use]
    pub fn collapsed(netlist: &Netlist) -> Self {
        // forward: (net, value) stem fault → equivalent (net, value)
        // further downstream. Flat-indexed by `net * 2 + value`: this
        // runs on every campaign preparation, so the lookup tables sit
        // on the sampling hot path.
        let slot = |net: NetId, value: bool| net.index() * 2 + usize::from(value);
        let mut forward: Vec<Option<(NetId, bool)>> = vec![None; netlist.num_nets() * 2];
        for gid in netlist.gate_ids() {
            let gate = netlist.gate(gid);
            for &input in &gate.inputs {
                if netlist.fanout_count(input) != 1 {
                    continue;
                }
                match gate.kind {
                    GateKind::Not | GateKind::Buf => {
                        let inv = gate.kind == GateKind::Not;
                        forward[slot(input, false)] = Some((gate.output, inv));
                        forward[slot(input, true)] = Some((gate.output, !inv));
                    }
                    _ => {
                        if let Some(c) = gate.kind.controlling_value() {
                            let out_value = c ^ gate.kind.is_inverting();
                            forward[slot(input, c)] = Some((gate.output, out_value));
                        }
                    }
                }
            }
        }
        let resolve = |mut key: (NetId, bool)| {
            // Chains are acyclic (they follow combinational paths), so
            // this terminates.
            while let Some(next) = forward[slot(key.0, key.1)] {
                key = next;
            }
            key
        };
        let mut seen = vec![false; netlist.num_nets() * 2];
        let mut faults = Vec::new();
        for fault in FaultUniverse::all(netlist).faults {
            match fault.site {
                FaultSite::Stem(net) => {
                    let rep = resolve((net, fault.stuck));
                    if !std::mem::replace(&mut seen[slot(rep.0, rep.1)], true) {
                        faults.push(Fault::stem(rep.0, rep.1));
                    }
                }
                FaultSite::Pin { .. } => faults.push(fault),
            }
        }
        FaultUniverse { faults }
    }

    /// The faults in this universe.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Returns `true` if the fault site drives anything observable at all
/// (stems on dangling nets are undetectable by construction).
#[must_use]
pub fn site_has_fanout(netlist: &Netlist, fault: &Fault) -> bool {
    match fault.site {
        FaultSite::Stem(net) => {
            !netlist.fanout(net).is_empty()
                || netlist.outputs().contains(&net)
                || netlist.dffs().iter().any(|d| d.d == net)
        }
        FaultSite::Pin { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;

    #[test]
    fn all_faults_cover_stems_and_branches() {
        let n = bench::s27();
        let u = FaultUniverse::all(&n);
        // Every net contributes two stem faults.
        assert!(u.len() >= 2 * n.num_nets());
        // s27 has fanout stems (e.g. G8 feeds G15 and G16), so branch
        // faults exist.
        assert!(u
            .faults()
            .iter()
            .any(|f| matches!(f.site, FaultSite::Pin { .. })));
    }

    #[test]
    fn collapse_shrinks_universe() {
        let n = bench::s27();
        let all = FaultUniverse::all(&n);
        let col = FaultUniverse::collapsed(&n);
        assert!(col.len() < all.len());
        assert!(!col.is_empty());
    }

    #[test]
    fn collapse_is_deterministic() {
        let n = bench::s27();
        let a = FaultUniverse::collapsed(&n);
        let b = FaultUniverse::collapsed(&n);
        assert_eq!(a.faults(), b.faults());
    }

    #[test]
    fn not_gate_input_collapses_to_output() {
        let n = scan_netlist::Netlist::from_bench("inv", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
            .unwrap();
        let col = FaultUniverse::collapsed(&n);
        let a = n.find_net("a").unwrap();
        // a/SA0 ≡ y/SA1 and a/SA1 ≡ y/SA0: only y faults remain.
        assert!(!col
            .faults()
            .iter()
            .any(|f| matches!(f.site, FaultSite::Stem(net) if net == a)));
        assert_eq!(col.len(), 2);
    }

    #[test]
    fn and_controlling_input_collapses() {
        let n = scan_netlist::Netlist::from_bench(
            "and2",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
        )
        .unwrap();
        let col = FaultUniverse::collapsed(&n);
        let a = n.find_net("a").unwrap();
        // a/SA0 collapses into y/SA0; a/SA1 remains.
        let a_faults: Vec<&Fault> = col
            .faults()
            .iter()
            .filter(|f| matches!(f.site, FaultSite::Stem(net) if net == a))
            .collect();
        assert_eq!(a_faults.len(), 1);
        assert!(a_faults[0].stuck);
    }

    #[test]
    fn describe_names_sites() {
        let n = bench::s27();
        let g10 = n.find_net("G10").unwrap();
        let f = Fault::stem(g10, true);
        assert_eq!(f.describe(&n), "G10/SA1");
    }

    #[test]
    fn site_has_fanout_detects_dangles() {
        let n = scan_netlist::Netlist::from_bench(
            "dangle",
            "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\nz = NOT(a)\n",
        )
        .unwrap();
        let z = n.find_net("z").unwrap();
        assert!(!site_has_fanout(&n, &Fault::stem(z, false)));
        let y = n.find_net("y").unwrap();
        assert!(site_has_fanout(&n, &Fault::stem(y, false)));
    }
}
