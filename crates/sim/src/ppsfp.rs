//! Bit-parallel PPSFP fault simulation with fault dropping.
//!
//! PPSFP (parallel-pattern single-fault propagation) simulates 64 BIST
//! patterns per `u64` word pass over the netlist. This engine combines
//! that word layout with cone-limited event propagation and keeps a
//! *per-word* scratch image of the fault-free net values, so a fault
//! costs only its touched nets — there is no whole-image resynchronize
//! between words, unlike [`EventFaultSimulator`](crate::EventFaultSimulator),
//! and no whole-circuit re-evaluation at all, unlike
//! [`FaultSimulator`](crate::FaultSimulator).
//!
//! Three things make it the campaign workhorse:
//!
//! * **Single-pass sampling.** [`PpsfpSimulator::sample_detected_with_maps`]
//!   returns each detected fault *with* the error map that proved it
//!   detected, eliminating the classic sample-then-resimulate double
//!   pass.
//! * **Fault dropping.** [`PpsfpSimulator::detects`] stops sweeping a
//!   fault at the first pattern word that produces an observed error —
//!   once a fault's failing status is resolved, the remaining words are
//!   dropped (`ppsfp.faults_dropped` counts the early exits).
//! * **Fused compaction.** [`PpsfpSimulator::sweep`] streams packed
//!   `(position, word, diff)` triples to a caller-supplied sink during
//!   the propagation sweep itself, so MISR signature accumulation (see
//!   `scan_bist::WordMisr` and `DiagnosisPlan::analyze_packed` in
//!   `scan-diagnosis`) consumes error words without an intermediate
//!   per-bit pass.
//!
//! The engine is bit-exact with both older engines; the differential
//! harness `tests/engine_diff.rs` proves it over generated circuits,
//! fault lists, and partition plans.

use scan_netlist::{GateId, Netlist, ScanView};

use crate::error::PatternShapeError;
use crate::fault::{Fault, FaultSite};
use crate::fault_sim::{shuffled_candidate_faults, MULTIPLET_SEED_TAG};
use crate::pattern::PatternSet;
use crate::response::{ErrorMap, ResponseMap};
use crate::simulator::Simulator;

/// Which fault-simulation engine a campaign runs on.
///
/// Threaded through `scan-diagnosis` campaign preparation and the
/// `scanbist` CLI (`--engine`). Both engines produce bit-identical
/// verdicts, signatures, and diagnoses; they differ only in speed.
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug, Default)]
pub enum SimEngine {
    /// The word-level PPSFP engine with fault dropping
    /// ([`PpsfpSimulator`]) — the fast default.
    #[default]
    BitParallel,
    /// The event-driven engine ([`EventFaultSimulator`](crate::EventFaultSimulator)),
    /// kept alive as the reference oracle.
    EventDriven,
}

impl SimEngine {
    /// The CLI spelling of this engine (`bitpar` / `event`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SimEngine::BitParallel => "bitpar",
            SimEngine::EventDriven => "event",
        }
    }
}

/// A bit-parallel PPSFP fault simulator bound to one circuit, scan
/// view, and pattern set.
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, ScanView};
/// use scan_sim::{Fault, PatternSet, PpsfpSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s27 = bench::s27();
/// let view = ScanView::natural(&s27, true);
/// let patterns = PatternSet::pseudo_random(4, 3, 100, 1);
/// let mut psim = PpsfpSimulator::new(&s27, &view, &patterns)?;
/// let g10 = s27.find_net("G10").expect("net exists");
/// let fault = Fault::stem(g10, true);
/// assert_eq!(psim.detects(&fault), psim.error_map(&fault).is_detected());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PpsfpSimulator<'a> {
    netlist: &'a Netlist,
    patterns: &'a PatternSet,
    view_len: usize,
    /// Fault-free net values, `golden_nets[word][net]`.
    golden_nets: Vec<Vec<u64>>,
    /// Fault-free observed response (lane-masked).
    golden: ResponseMap,
    /// Observation positions per net (a net can be both a PO and a DFF
    /// data input).
    observers: Vec<Vec<u32>>,
    /// Per-word scratch image of the net values. Between sweeps every
    /// word equals `golden_nets`; a sweep dirties only the nets a fault
    /// touches and restores exactly those, so no word-sized memcpy is
    /// ever needed.
    scratch: Vec<Vec<u64>>,
    /// Whether a gate is already queued, per gate.
    queued: Vec<bool>,
    /// Worklist buckets by gate level.
    buckets: Vec<Vec<GateId>>,
    /// Reused gate-input buffer (avoids a heap allocation per event).
    input_buf: Vec<u64>,
    /// Reused touched-net list.
    touched: Vec<usize>,
}

impl<'a> PpsfpSimulator<'a> {
    /// Creates the simulator and computes the fault-free values of
    /// every net for every pattern word (under the `golden` span, like
    /// the other engines).
    ///
    /// # Errors
    ///
    /// Returns [`PatternShapeError`] if the pattern set does not match
    /// the netlist interface.
    pub fn new(
        netlist: &'a Netlist,
        view: &'a ScanView,
        patterns: &'a PatternSet,
    ) -> Result<Self, PatternShapeError> {
        let _span = scan_obs::span!("golden");
        let sim = Simulator::new(netlist, patterns)?;
        let mut golden_nets = Vec::with_capacity(patterns.num_words());
        let mut values = vec![0u64; netlist.num_nets()];
        for word in 0..patterns.num_words() {
            sim.eval_word(word, None, &mut values);
            golden_nets.push(values.clone());
        }
        let mut observers = vec![Vec::new(); netlist.num_nets()];
        let mut golden = ResponseMap::zeroed(view.len(), patterns.num_patterns());
        for pos in 0..view.len() {
            let net = view.observed_net(netlist, pos);
            observers[net.index()].push(pos as u32);
            for (word, nets) in golden_nets.iter().enumerate() {
                golden.set_word(pos, word, nets[net.index()] & patterns.lane_mask(word));
            }
        }
        let depth = netlist.depth() as usize;
        Ok(PpsfpSimulator {
            netlist,
            patterns,
            view_len: view.len(),
            scratch: golden_nets.clone(),
            golden_nets,
            golden,
            observers,
            queued: vec![false; netlist.num_gates()],
            buckets: vec![Vec::new(); depth + 2],
            input_buf: Vec::with_capacity(8),
            touched: Vec::new(),
        })
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The fault-free observed response.
    #[must_use]
    pub fn golden(&self) -> &ResponseMap {
        &self.golden
    }

    /// Simulates `fault` and returns its error map. Bit-exact with
    /// [`FaultSimulator::error_map`](crate::FaultSimulator::error_map).
    pub fn error_map(&mut self, fault: &Fault) -> ErrorMap {
        self.error_map_multi(std::slice::from_ref(fault))
    }

    /// Error map of several *simultaneous* faults (the paper's
    /// multiple-fault scenario). Bit-exact with
    /// [`FaultSimulator::error_map_multi`](crate::FaultSimulator::error_map_multi):
    /// if two faults force the same site, the last one in the slice
    /// wins.
    pub fn error_map_multi(&mut self, faults: &[Fault]) -> ErrorMap {
        scan_obs::metrics::incr("fault_sim.error_maps");
        let mut errors = ResponseMap::zeroed(self.view_len, self.patterns.num_patterns());
        self.sweep(faults, |pos, word, diff| {
            let current = errors.word(pos as usize, word);
            errors.set_word(pos as usize, word, current | diff);
        });
        ErrorMap::from(errors)
    }

    /// Returns `true` if the fault flips at least one observed bit,
    /// *dropping* the fault at the first failing pattern word: once its
    /// failing status is resolved the remaining words are never swept.
    ///
    /// Identical verdict to `error_map(fault).is_detected()`.
    pub fn detects(&mut self, fault: &Fault) -> bool {
        let faults = std::slice::from_ref(fault);
        let words = self.patterns.num_words();
        for word in 0..words {
            if self.propagate_word(word, faults, &mut |_, _, _| {}) {
                if word + 1 < words {
                    scan_obs::metrics::incr("ppsfp.faults_dropped");
                }
                return true;
            }
        }
        false
    }

    /// Sweeps every pattern word with `faults` injected simultaneously,
    /// streaming each observed diff as a packed `(position, word, diff)`
    /// triple to `sink`, and returns whether any diff was observed.
    ///
    /// This is the fused word-level pass: error-map accumulation and
    /// MISR compaction are both sinks over the same sweep instead of
    /// separate per-bit passes. Diff words are lane-masked; a position
    /// is reported at most once per word.
    pub fn sweep<S: FnMut(u32, usize, u64)>(&mut self, faults: &[Fault], mut sink: S) -> bool {
        let mut detected = false;
        for word in 0..self.patterns.num_words() {
            detected |= self.propagate_word(word, faults, &mut sink);
        }
        detected
    }

    /// Propagates `faults` through pattern word `word` by levelized
    /// events, reporting observed diffs to `sink`. Returns whether any
    /// observed diff occurred. Scratch is restored before returning.
    fn propagate_word<S: FnMut(u32, usize, u64)>(
        &mut self,
        word: usize,
        faults: &[Fault],
        sink: &mut S,
    ) -> bool {
        scan_obs::metrics::incr("ppsfp.words_swept");
        let mask = self.patterns.lane_mask(word);
        let mut touched = std::mem::take(&mut self.touched);
        let mut input_buf = std::mem::take(&mut self.input_buf);
        touched.clear();
        let mut detected = false;
        let mut gate_evals = 0u64;

        // Seed the worklist. Stem forcings apply in slice order (last
        // wins, matching `Simulator::eval_word_multi`); the final value
        // of each forced net stays pinned for the whole word.
        let mut forced_stems: Vec<(scan_netlist::NetId, u64)> = Vec::new();
        for fault in faults {
            match fault.site {
                FaultSite::Stem(net) => {
                    let forced = force_word(fault.stuck);
                    if let Some(entry) = forced_stems.iter_mut().find(|(n, _)| *n == net) {
                        entry.1 = forced;
                    } else {
                        forced_stems.push((net, forced));
                    }
                }
                FaultSite::Pin { gate, .. } => self.enqueue(gate),
            }
        }
        for &(net, forced) in &forced_stems {
            let diff = (self.scratch[word][net.index()] ^ forced) & mask;
            if diff == 0 {
                continue;
            }
            self.scratch[word][net.index()] = forced;
            touched.push(net.index());
            detected |= self.report(net.index(), diff, word, sink);
            for &g in self.netlist.fanout(net) {
                self.enqueue(g);
            }
        }

        // Levelized propagation: fanout always points to strictly
        // higher levels, so each gate is evaluated at most once.
        for level in 0..self.buckets.len() {
            while let Some(gid) = self.buckets[level].pop() {
                self.queued[gid.index()] = false;
                let gate = self.netlist.gate(gid);
                let out_index = gate.output.index();
                if forced_stems.iter().any(|&(n, _)| n.index() == out_index) {
                    // The output is pinned by a stem fault; input
                    // changes cannot move it.
                    continue;
                }
                gate_evals += 1;
                input_buf.clear();
                input_buf.extend(gate.inputs.iter().map(|n| self.scratch[word][n.index()]));
                for fault in faults {
                    if let FaultSite::Pin { gate: fgate, pin } = fault.site {
                        if fgate == gid {
                            input_buf[pin as usize] = force_word(fault.stuck);
                        }
                    }
                }
                let new = gate.kind.eval_words(&input_buf);
                let old = self.scratch[word][out_index];
                if (new ^ old) & mask == 0 {
                    continue;
                }
                self.scratch[word][out_index] = new;
                touched.push(out_index);
                let golden_diff = (new ^ self.golden_nets[word][out_index]) & mask;
                detected |= self.report(out_index, golden_diff, word, sink);
                for &succ in self.netlist.fanout(gate.output) {
                    self.enqueue(succ);
                }
            }
        }

        // Restore only the touched nets of this word's scratch image.
        for &net in &touched {
            self.scratch[word][net] = self.golden_nets[word][net];
        }
        touched.clear();
        self.touched = touched;
        self.input_buf = input_buf;
        scan_obs::metrics::add("ppsfp.gate_evals", gate_evals);
        detected
    }

    /// Reports a net's diff word to every observer of the net. Returns
    /// whether anything was observed.
    fn report<S: FnMut(u32, usize, u64)>(
        &self,
        net: usize,
        diff: u64,
        word: usize,
        sink: &mut S,
    ) -> bool {
        if diff == 0 {
            return false;
        }
        let mut observed = false;
        for &pos in &self.observers[net] {
            sink(pos, word, diff);
            observed = true;
        }
        observed
    }

    fn enqueue(&mut self, gate: GateId) {
        if !self.queued[gate.index()] {
            self.queued[gate.index()] = true;
            let level = self.netlist.gate_level(gate) as usize;
            self.buckets[level].push(gate);
        }
    }

    /// Draws a reproducible sample of up to `count` *detected* faults
    /// together with the error maps that proved them detected, in one
    /// pass: the map computed for the detection check is the map the
    /// campaign keeps, so no fault is ever simulated twice.
    ///
    /// Samples from the exact candidate sequence of
    /// [`FaultSimulator::sample_detected_faults`](crate::FaultSimulator::sample_detected_faults)
    /// (same universe, same shuffle, same verdicts), so campaigns built
    /// on either engine see the same faults.
    pub fn sample_detected_with_maps(&mut self, count: usize, seed: u64) -> Vec<(Fault, ErrorMap)> {
        let _span = scan_obs::span!("sample_detected");
        let faults = shuffled_candidate_faults(self.netlist, seed);
        let mut detected = Vec::with_capacity(count);
        let mut tried = 0u64;
        for fault in faults {
            if detected.len() == count {
                break;
            }
            tried += 1;
            let map = self.error_map(&fault);
            if map.is_detected() {
                detected.push((fault, map));
            }
        }
        scan_obs::metrics::add("fault_sim.faults_tried", tried);
        scan_obs::metrics::add("fault_sim.faults_detected", detected.len() as u64);
        detected
    }

    /// Single-pass multiplet sampling: like
    /// [`PpsfpSimulator::sample_detected_with_maps`] but injecting
    /// `size` simultaneous faults per candidate chunk, matching
    /// [`FaultSimulator::sample_detected_multiplets`](crate::FaultSimulator::sample_detected_multiplets).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn sample_detected_multiplets_with_maps(
        &mut self,
        count: usize,
        size: usize,
        seed: u64,
    ) -> Vec<(Vec<Fault>, ErrorMap)> {
        assert!(size >= 1, "multiplet size must be at least 1");
        let _span = scan_obs::span!("sample_detected");
        let faults = shuffled_candidate_faults(self.netlist, seed ^ MULTIPLET_SEED_TAG);
        let mut detected = Vec::with_capacity(count);
        let mut tried = 0u64;
        for chunk in faults.chunks_exact(size) {
            if detected.len() == count {
                break;
            }
            tried += 1;
            let map = self.error_map_multi(chunk);
            if map.is_detected() {
                detected.push((chunk.to_vec(), map));
            }
        }
        scan_obs::metrics::add("fault_sim.faults_tried", tried);
        scan_obs::metrics::add("fault_sim.faults_detected", detected.len() as u64);
        detected
    }
}

fn force_word(stuck: bool) -> u64 {
    if stuck {
        !0
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use crate::fault_sim::FaultSimulator;
    use scan_netlist::generate::{generate, profile};
    use scan_netlist::{bench, ScanView};

    #[test]
    fn matches_full_resimulation_on_s27() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 100, 7);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        assert_eq!(fsim.golden(), psim.golden());
        for fault in FaultUniverse::all(&n).faults() {
            assert_eq!(
                fsim.error_map(fault),
                psim.error_map(fault),
                "fault {}",
                fault.describe(&n)
            );
        }
    }

    #[test]
    fn matches_full_resimulation_on_synthetic_circuit() {
        let p = profile("s344").unwrap();
        let n = generate(p, 5);
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), 128, 3);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(150) {
            assert_eq!(
                fsim.error_map(fault),
                psim.error_map(fault),
                "fault {}",
                fault.describe(&n)
            );
        }
    }

    #[test]
    fn multi_fault_matches_full_resimulation() {
        let p = profile("s344").unwrap();
        let n = generate(p, 9);
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), 96, 11);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let universe = FaultUniverse::collapsed(&n);
        for chunk in universe.faults().chunks_exact(3).take(40) {
            assert_eq!(
                fsim.error_map_multi(chunk),
                psim.error_map_multi(chunk),
                "multiplet {:?}",
                chunk.iter().map(|f| f.describe(&n)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn detects_agrees_with_error_map_and_drops_early() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 150, 3);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        for fault in FaultUniverse::all(&n).faults() {
            assert_eq!(
                psim.detects(fault),
                fsim.is_detected(fault),
                "fault {}",
                fault.describe(&n)
            );
        }
    }

    #[test]
    fn dropping_leaves_no_residue() {
        // detects() early-exits mid-sweep; the next fault must still see
        // pristine scratch state: A (dropped), B, then A fully.
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 130, 1);
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let a = Fault::stem(n.find_net("G11").unwrap(), false);
        let b = Fault::stem(n.find_net("G8").unwrap(), true);
        let full_a = psim.error_map(&a);
        let _ = psim.detects(&a);
        let _ = psim.detects(&b);
        let _ = psim.error_map(&b);
        assert_eq!(full_a, psim.error_map(&a));
    }

    #[test]
    fn sampling_matches_reference_engine() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 128, 7);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let reference = fsim.sample_detected_faults(10, 1);
        let fused = psim.sample_detected_with_maps(10, 1);
        assert_eq!(
            reference,
            fused.iter().map(|(f, _)| *f).collect::<Vec<_>>()
        );
        for (fault, map) in &fused {
            assert_eq!(map, &fsim.error_map(fault));
        }
    }

    #[test]
    fn multiplet_sampling_matches_reference_engine() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 128, 7);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let reference = fsim.sample_detected_multiplets(5, 2, 1);
        let fused = psim.sample_detected_multiplets_with_maps(5, 2, 1);
        assert_eq!(
            reference,
            fused.iter().map(|(fs, _)| fs.clone()).collect::<Vec<_>>()
        );
        for (faults, map) in &fused {
            assert_eq!(map, &fsim.error_map_multi(faults));
        }
    }

    #[test]
    fn sweep_sink_reconstructs_error_map() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 100, 5);
        let mut psim = PpsfpSimulator::new(&n, &view, &patterns).unwrap();
        let fault = Fault::stem(n.find_net("G11").unwrap(), true);
        let mut bits = Vec::new();
        let detected = psim.sweep(std::slice::from_ref(&fault), |pos, word, diff| {
            let mut d = diff;
            while d != 0 {
                let lane = d.trailing_zeros() as usize;
                d &= d - 1;
                bits.push((pos as usize, word * 64 + lane));
            }
        });
        bits.sort_unstable();
        bits.dedup();
        let rebuilt = ErrorMap::from_bits(view.len(), 100, bits.iter().copied());
        let direct = psim.error_map(&fault);
        assert!(detected);
        assert_eq!(rebuilt, direct);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let bad = PatternSet::pseudo_random(5, 3, 64, 7);
        assert!(PpsfpSimulator::new(&n, &view, &bad).is_err());
    }
}
