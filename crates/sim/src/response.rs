//! Observed responses and error maps.

use scan_netlist::BitSet;

/// Bit-packed observed values: one row per observation position (scan
/// cell or primary output, in [`ScanView`](scan_netlist::ScanView)
/// order), 64 patterns per word.
///
/// Rows live in one flat row-major allocation: a fault simulator
/// builds one map per candidate fault, so construction cost is on the
/// campaign-preparation hot path and a per-row `Vec` would mean one
/// heap allocation per observation position per fault.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ResponseMap {
    num_patterns: usize,
    num_positions: usize,
    data: Vec<u64>,
}

impl ResponseMap {
    /// Creates an all-zero response map.
    #[must_use]
    pub fn zeroed(positions: usize, num_patterns: usize) -> Self {
        ResponseMap {
            num_patterns,
            num_positions: positions,
            data: vec![0u64; positions * num_patterns.div_ceil(64)],
        }
    }

    /// Words per row.
    fn stride(&self) -> usize {
        self.num_patterns.div_ceil(64)
    }

    /// One position's packed words.
    fn row(&self, position: usize) -> &[u64] {
        let stride = self.stride();
        &self.data[position * stride..(position + 1) * stride]
    }

    /// Number of observation positions.
    #[must_use]
    pub fn num_positions(&self) -> usize {
        self.num_positions
    }

    /// Number of patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The packed word for one position.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn word(&self, position: usize, word: usize) -> u64 {
        self.row(position)[word]
    }

    /// Sets the packed word for one position.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set_word(&mut self, position: usize, word: usize, value: u64) {
        let stride = self.stride();
        assert!(position < self.num_positions && word < stride, "index out of range");
        self.data[position * stride + word] = value;
    }

    /// The observed bit at (position, pattern).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn bit(&self, position: usize, pattern: usize) -> bool {
        assert!(pattern < self.num_patterns, "pattern out of range");
        self.row(position)[pattern / 64] >> (pattern % 64) & 1 != 0
    }

    /// XORs this map against a reference, yielding the error map
    /// (`self` is typically the faulty response, `golden` the
    /// fault-free one).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn xor(&self, golden: &ResponseMap) -> ErrorMap {
        assert_eq!(self.num_patterns, golden.num_patterns, "pattern counts differ");
        assert_eq!(self.num_positions, golden.num_positions, "position counts differ");
        let data = self
            .data
            .iter()
            .zip(&golden.data)
            .map(|(x, y)| x ^ y)
            .collect();
        ErrorMap {
            inner: ResponseMap {
                num_patterns: self.num_patterns,
                num_positions: self.num_positions,
                data,
            },
        }
    }
}

/// The difference between a faulty and the fault-free response: bit
/// `(position, pattern)` is set iff the fault flipped that observed
/// value.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct ErrorMap {
    inner: ResponseMap,
}

impl From<ResponseMap> for ErrorMap {
    /// Interprets an already-differenced bit map as error bits (used by
    /// engines that accumulate diffs directly instead of XOR-ing two
    /// full responses).
    fn from(inner: ResponseMap) -> Self {
        ErrorMap { inner }
    }
}

impl ErrorMap {
    /// An error map with no errors (used for fault-free references).
    #[must_use]
    pub fn empty(positions: usize, num_patterns: usize) -> Self {
        ErrorMap {
            inner: ResponseMap::zeroed(positions, num_patterns),
        }
    }

    /// Builds an error map from explicit error bits.
    ///
    /// # Panics
    ///
    /// Panics if any bit is out of range.
    #[must_use]
    pub fn from_bits<I>(positions: usize, num_patterns: usize, bits: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut inner = ResponseMap::zeroed(positions, num_patterns);
        for (pos, pat) in bits {
            assert!(pat < num_patterns, "pattern out of range");
            let w = inner.word(pos, pat / 64) | 1 << (pat % 64);
            inner.set_word(pos, pat / 64, w);
        }
        ErrorMap { inner }
    }

    /// Number of observation positions.
    #[must_use]
    pub fn num_positions(&self) -> usize {
        self.inner.num_positions()
    }

    /// Number of patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.inner.num_patterns()
    }

    /// Whether the error bit at (position, pattern) is set.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn bit(&self, position: usize, pattern: usize) -> bool {
        self.inner.bit(position, pattern)
    }

    /// Returns `true` if the fault produced at least one error.
    #[must_use]
    pub fn is_detected(&self) -> bool {
        self.inner.data.iter().any(|&w| w != 0)
    }

    /// Total number of error bits.
    #[must_use]
    pub fn num_error_bits(&self) -> usize {
        self.inner
            .data
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Rows as `(position, packed words)`, skipping nothing.
    fn rows(&self) -> impl Iterator<Item = (usize, &[u64])> + '_ {
        // `max(1)` keeps `chunks_exact` well-defined for degenerate
        // zero-pattern maps (which hold no data at all).
        self.inner
            .data
            .chunks_exact(self.inner.stride().max(1))
            .enumerate()
    }

    /// The failing positions: every observation point that captured at
    /// least one error.
    #[must_use]
    pub fn failing_positions(&self) -> BitSet {
        let mut set = BitSet::new(self.num_positions());
        for (pos, row) in self.rows() {
            if row.iter().any(|&w| w != 0) {
                set.insert(pos);
            }
        }
        set
    }

    /// Iterates over all error bits as `(position, pattern)` pairs, in
    /// position-major order.
    pub fn iter_bits(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows().flat_map(|(pos, row)| {
            row.iter().enumerate().flat_map(move |(w, &word)| {
                BitLanes(word).map(move |lane| (pos, w * 64 + lane))
            })
        })
    }

    /// Iterates over the nonzero packed error words as
    /// `(position, word_index, bits)` triples, in position-major order:
    /// bit `l` of `bits` is the error bit of pattern
    /// `word_index * 64 + l`.
    ///
    /// This is the word-level feed for fused MISR compaction
    /// (`DiagnosisPlan::analyze_packed` in `scan-diagnosis`): signature
    /// accumulation consumes packed words straight from the map, with
    /// no intermediate per-bit pair stream.
    pub fn iter_words(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        self.rows().flat_map(|(pos, row)| {
            row.iter()
                .enumerate()
                .filter(|(_, &word)| word != 0)
                .map(move |(w, &word)| (pos, w, word))
        })
    }

    /// Iterates over the error patterns of one position.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn errors_at(&self, position: usize) -> impl Iterator<Item = usize> + '_ {
        self.inner
            .row(position)
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| BitLanes(word).map(move |lane| w * 64 + lane))
    }
}

struct BitLanes(u64);

impl Iterator for BitLanes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_produces_error_map() {
        let mut faulty = ResponseMap::zeroed(3, 70);
        let golden = ResponseMap::zeroed(3, 70);
        faulty.set_word(1, 0, 0b101);
        faulty.set_word(2, 1, 1 << 5);
        let err = faulty.xor(&golden);
        assert!(err.is_detected());
        assert_eq!(err.num_error_bits(), 3);
        assert_eq!(
            err.iter_bits().collect::<Vec<_>>(),
            vec![(1, 0), (1, 2), (2, 69)]
        );
        assert_eq!(err.failing_positions().iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn from_bits_roundtrip() {
        let bits = vec![(0usize, 0usize), (4, 63), (4, 64), (7, 99)];
        let err = ErrorMap::from_bits(8, 100, bits.clone());
        assert_eq!(err.iter_bits().collect::<Vec<_>>(), bits);
        assert_eq!(err.errors_at(4).collect::<Vec<_>>(), vec![63, 64]);
        assert!(err.bit(7, 99));
        assert!(!err.bit(7, 98));
    }

    #[test]
    fn iter_words_skips_zero_words() {
        let err = ErrorMap::from_bits(3, 130, vec![(0, 0), (0, 65), (2, 129)]);
        assert_eq!(
            err.iter_words().collect::<Vec<_>>(),
            vec![(0, 0, 1), (0, 1, 2), (2, 2, 2)]
        );
        // Expanding lanes reproduces iter_bits exactly.
        let expanded: Vec<(usize, usize)> = err
            .iter_words()
            .flat_map(|(pos, w, word)| BitLanes(word).map(move |lane| (pos, w * 64 + lane)))
            .collect();
        assert_eq!(expanded, err.iter_bits().collect::<Vec<_>>());
    }

    #[test]
    fn empty_map_undetected() {
        let err = ErrorMap::empty(5, 10);
        assert!(!err.is_detected());
        assert_eq!(err.num_error_bits(), 0);
        assert!(err.failing_positions().is_empty());
    }

    #[test]
    #[should_panic(expected = "pattern counts differ")]
    fn shape_mismatch_panics() {
        let a = ResponseMap::zeroed(2, 10);
        let b = ResponseMap::zeroed(2, 20);
        let _ = a.xor(&b);
    }
}
