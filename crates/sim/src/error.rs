//! Error types for the simulation crate.

use std::error::Error;
use std::fmt;

/// Error returned when a pattern set does not match a circuit's
/// interface.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct PatternShapeError {
    /// Primary inputs the circuit has.
    pub expected_pis: usize,
    /// Flip-flops the circuit has.
    pub expected_ffs: usize,
    /// Primary inputs the pattern set provides.
    pub found_pis: usize,
    /// Flip-flop load values the pattern set provides.
    pub found_ffs: usize,
}

impl fmt::Display for PatternShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern set shape ({} PIs, {} FFs) does not match circuit ({} PIs, {} FFs)",
            self.found_pis, self.found_ffs, self.expected_pis, self.expected_ffs
        )
    }
}

impl Error for PatternShapeError {}
