//! Stuck-at fault simulation over a full-scan view.
//!
//! [`FaultSimulator`] evaluates the fault-free ("golden") response once
//! and then re-simulates the whole pattern set per fault, 64 patterns
//! per pass, comparing against the golden response to produce an
//! [`ErrorMap`]. At ISCAS-89 scale (≤ ~22k gates, 128–200 patterns)
//! whole-circuit re-simulation is fast enough that event-driven
//! machinery would not pay for itself.

use scan_rng::ScanRng;

use scan_netlist::{Netlist, ScanView};

use crate::error::PatternShapeError;
use crate::fault::{Fault, FaultUniverse};
use crate::pattern::PatternSet;
use crate::response::{ErrorMap, ResponseMap};
use crate::simulator::Simulator;

/// A fault simulator bound to one circuit, scan view, and pattern set.
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, ScanView};
/// use scan_sim::{Fault, FaultSimulator, PatternSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s27 = bench::s27();
/// let view = ScanView::natural(&s27, true);
/// let patterns = PatternSet::pseudo_random(4, 3, 64, 1);
/// let fsim = FaultSimulator::new(&s27, &view, &patterns)?;
/// let g10 = s27.find_net("G10").expect("net exists");
/// let errors = fsim.error_map(&Fault::stem(g10, true));
/// assert!(errors.num_positions() == view.len());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSimulator<'a> {
    sim: Simulator<'a>,
    view: &'a ScanView,
    observed_nets: Vec<usize>,
    golden: ResponseMap,
}

impl<'a> FaultSimulator<'a> {
    /// Creates the simulator and computes the golden response.
    ///
    /// # Errors
    ///
    /// Returns [`PatternShapeError`] if the pattern set does not match
    /// the netlist interface.
    pub fn new(
        netlist: &'a Netlist,
        view: &'a ScanView,
        patterns: &'a PatternSet,
    ) -> Result<Self, PatternShapeError> {
        let sim = Simulator::new(netlist, patterns)?;
        let observed_nets: Vec<usize> = (0..view.len())
            .map(|pos| view.observed_net(netlist, pos).index())
            .collect();
        let golden = {
            let _span = scan_obs::span!("golden");
            Self::response_with(&sim, &observed_nets, view.len(), None)
        };
        Ok(FaultSimulator {
            sim,
            view,
            observed_nets,
            golden,
        })
    }

    /// The scan view responses are observed through.
    #[must_use]
    pub fn view(&self) -> &'a ScanView {
        self.view
    }

    /// The netlist under test.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.sim.netlist()
    }

    /// The fault-free response.
    #[must_use]
    pub fn golden(&self) -> &ResponseMap {
        &self.golden
    }

    /// Simulates the circuit with `fault` injected and returns the full
    /// faulty response map.
    #[must_use]
    pub fn response(&self, fault: &Fault) -> ResponseMap {
        Self::response_with(&self.sim, &self.observed_nets, self.view.len(), Some(fault))
    }

    /// Simulates `fault` and returns its error map (faulty XOR golden).
    #[must_use]
    pub fn error_map(&self, fault: &Fault) -> ErrorMap {
        scan_obs::metrics::incr("fault_sim.error_maps");
        self.response(fault).xor(&self.golden)
    }

    /// Simulates all of `faults` *simultaneously* and returns the full
    /// faulty response — the paper's multiple-fault scenario (Fig. 2's
    /// overlapping or disjoint fault cones).
    #[must_use]
    pub fn response_multi(&self, faults: &[Fault]) -> ResponseMap {
        let patterns = self.sim.patterns();
        let mut response = ResponseMap::zeroed(self.view.len(), patterns.num_patterns());
        let mut values = vec![0u64; self.sim.netlist().num_nets()];
        for word in 0..patterns.num_words() {
            self.sim.eval_word_multi(word, faults, &mut values);
            let mask = patterns.lane_mask(word);
            for (pos, &net) in self.observed_nets.iter().enumerate() {
                response.set_word(pos, word, values[net] & mask);
            }
        }
        response
    }

    /// Error map of several simultaneous faults.
    #[must_use]
    pub fn error_map_multi(&self, faults: &[Fault]) -> ErrorMap {
        scan_obs::metrics::incr("fault_sim.error_maps");
        self.response_multi(faults).xor(&self.golden)
    }

    /// Returns `true` if the fault flips at least one observed bit under
    /// this pattern set.
    #[must_use]
    pub fn is_detected(&self, fault: &Fault) -> bool {
        self.error_map(fault).is_detected()
    }

    fn response_with(
        sim: &Simulator<'a>,
        observed_nets: &[usize],
        positions: usize,
        fault: Option<&Fault>,
    ) -> ResponseMap {
        let patterns = sim.patterns();
        let mut response = ResponseMap::zeroed(positions, patterns.num_patterns());
        let mut values = vec![0u64; sim.netlist().num_nets()];
        for word in 0..patterns.num_words() {
            sim.eval_word(word, fault, &mut values);
            let mask = patterns.lane_mask(word);
            for (pos, &net) in observed_nets.iter().enumerate() {
                response.set_word(pos, word, values[net] & mask);
            }
        }
        response
    }

    /// Draws a reproducible sample of up to `count` *detected* faults
    /// from the collapsed fault universe.
    ///
    /// The universe is shuffled with `seed` and simulated until `count`
    /// detected faults are found (or the universe is exhausted) — the
    /// paper's "500 injected single stuck-at faults per circuit"
    /// methodology, restricted to faults the pattern set actually
    /// detects (undetected faults produce no failing cells and carry no
    /// diagnostic information).
    #[must_use]
    pub fn sample_detected_faults(&self, count: usize, seed: u64) -> Vec<Fault> {
        let _span = scan_obs::span!("sample_detected");
        let faults = shuffled_candidate_faults(self.netlist(), seed);
        let mut detected = Vec::with_capacity(count);
        let mut tried = 0u64;
        for fault in faults {
            if detected.len() == count {
                break;
            }
            tried += 1;
            if self.is_detected(&fault) {
                detected.push(fault);
            }
        }
        scan_obs::metrics::add("fault_sim.faults_tried", tried);
        scan_obs::metrics::add("fault_sim.faults_detected", detected.len() as u64);
        detected
    }

    /// Draws a reproducible sample of up to `count` *detected* fault
    /// multiplets of the given `size` (simultaneous faults) — the
    /// paper's multiple-fault discussion, where overlapping cones merge
    /// into one expanded failing segment.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn sample_detected_multiplets(
        &self,
        count: usize,
        size: usize,
        seed: u64,
    ) -> Vec<Vec<Fault>> {
        assert!(size >= 1, "multiplet size must be at least 1");
        let _span = scan_obs::span!("sample_detected");
        let faults = shuffled_candidate_faults(self.netlist(), seed ^ MULTIPLET_SEED_TAG);
        let mut result = Vec::with_capacity(count);
        let mut tried = 0u64;
        for chunk in faults.chunks_exact(size) {
            if result.len() == count {
                break;
            }
            tried += 1;
            if self.error_map_multi(chunk).is_detected() {
                result.push(chunk.to_vec());
            }
        }
        scan_obs::metrics::add("fault_sim.faults_tried", tried);
        scan_obs::metrics::add("fault_sim.faults_detected", result.len() as u64);
        result
    }
}

/// Seed perturbation applied when sampling fault *multiplets* instead
/// of single faults ("MULT"), so the two sample streams decorrelate.
pub(crate) const MULTIPLET_SEED_TAG: u64 = 0x4D55_4C54;

/// The shared candidate order every sampling engine draws from: the
/// collapsed fault universe, restricted to sites with fanout, shuffled
/// by `seed`.
///
/// Both [`FaultSimulator`] and the bit-parallel
/// [`PpsfpSimulator`](crate::PpsfpSimulator) sample from this exact
/// sequence, which is what makes their campaign fault samples — and
/// therefore every downstream verdict — bit-identical.
pub(crate) fn shuffled_candidate_faults(netlist: &Netlist, seed: u64) -> Vec<Fault> {
    let _span = scan_obs::span!("candidates");
    let universe = FaultUniverse::collapsed(netlist);
    // Precomputed [`site_has_fanout`] verdict per stem net: the
    // per-fault linear scans over outputs/DFFs would dominate the
    // sampler on large universes.
    let mut observable = vec![false; netlist.num_nets()];
    for net in netlist.net_ids() {
        observable[net.index()] = !netlist.fanout(net).is_empty();
    }
    for &out in netlist.outputs() {
        observable[out.index()] = true;
    }
    for dff in netlist.dffs() {
        observable[dff.d.index()] = true;
    }
    let mut faults: Vec<Fault> = universe
        .faults()
        .iter()
        .copied()
        .filter(|f| match f.site {
            crate::fault::FaultSite::Stem(net) => observable[net.index()],
            crate::fault::FaultSite::Pin { .. } => true,
        })
        .collect();
    let mut rng = ScanRng::seed_from_u64(seed);
    rng.shuffle(&mut faults);
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::bench;
    use scan_netlist::GateKind;

    fn setup() -> (Netlist, ScanView, PatternSet) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 128, 7);
        (n, view, patterns)
    }

    #[test]
    fn golden_matches_naive_per_pattern_eval() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        // Naive scalar evaluation for a handful of patterns.
        for pattern in [0usize, 1, 63, 64, 127] {
            let mut values: std::collections::BTreeMap<usize, bool> = std::collections::BTreeMap::new();
            for (pi, &net) in n.inputs().iter().enumerate() {
                values.insert(net.index(), patterns.pi_bit(pi, pattern));
            }
            for (ff, dff) in n.dffs().iter().enumerate() {
                values.insert(dff.q.index(), patterns.state_bit(ff, pattern));
            }
            for &gid in n.topo_order() {
                let gate = n.gate(gid);
                let ins: Vec<bool> = gate.inputs.iter().map(|i| values[&i.index()]).collect();
                values.insert(gate.output.index(), gate.kind.eval_bools(&ins));
            }
            for pos in 0..view.len() {
                let net = view.observed_net(&n, pos);
                assert_eq!(
                    fsim.golden().bit(pos, pattern),
                    values[&net.index()],
                    "pattern {pattern} position {pos}"
                );
            }
        }
    }

    #[test]
    fn stuck_fault_changes_response() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        // G11 feeds the PO (via NOT) and two NOR gates: forcing it must
        // be detected with 128 random patterns.
        let g11 = n.find_net("G11").unwrap();
        assert!(fsim.is_detected(&Fault::stem(g11, true)));
        assert!(fsim.is_detected(&Fault::stem(g11, false)));
    }

    #[test]
    fn errors_confined_to_structural_cone() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let cones = scan_netlist::stats::OutputCones::compute(&n, &view);
        for fault in FaultUniverse::collapsed(&n).faults() {
            let errors = fsim.error_map(fault);
            let failing = errors.failing_positions();
            let cone = match fault.site {
                crate::fault::FaultSite::Stem(net) => cones.cone(net).clone(),
                crate::fault::FaultSite::Pin { gate, .. } => {
                    cones.cone(n.gate(gate).output).clone()
                }
            };
            for pos in &failing {
                assert!(
                    cone.contains(pos),
                    "fault {} produced an error outside its cone at {pos}",
                    fault.describe(&n)
                );
            }
        }
    }

    #[test]
    fn pin_fault_affects_only_its_branch() {
        // y = AND(a, b); z = OR(a, c). A pin fault on the AND's `a` pin
        // must leave z untouched even when a is wrong for z's cone.
        let n = Netlist::from_bench(
            "branch",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(a, c)\n",
        )
        .unwrap();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(3, 0, 64, 3);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let and_gate = n
            .gate_ids()
            .find(|&g| n.gate(g).kind == GateKind::And)
            .unwrap();
        let errors = fsim.error_map(&Fault::pin(and_gate, 0, true));
        // Position 0 is y, position 1 is z.
        assert!(errors.errors_at(1).next().is_none(), "z must be clean");
        assert!(errors.errors_at(0).next().is_some(), "y must fail");
    }

    #[test]
    fn sampling_returns_detected_faults_only() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let sample = fsim.sample_detected_faults(10, 1);
        assert!(!sample.is_empty());
        for f in &sample {
            assert!(fsim.is_detected(f));
        }
        // Reproducible.
        assert_eq!(sample, fsim.sample_detected_faults(10, 1));
    }

    #[test]
    fn single_fault_multi_path_agrees_with_single_path() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(20) {
            assert_eq!(
                fsim.error_map(fault),
                fsim.error_map_multi(std::slice::from_ref(fault)),
                "fault {}",
                fault.describe(&n)
            );
        }
    }

    #[test]
    fn disjoint_cone_faults_superpose() {
        // y = AND(a, b); z = OR(c, d): faults in the two cones never
        // interact, so the pair's error map is the union of the
        // singles'.
        let n = Netlist::from_bench(
            "twocones",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b)\nz = OR(c, d)\n",
        )
        .unwrap();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 0, 64, 9);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let fa = Fault::stem(n.find_net("a").unwrap(), true);
        let fc = Fault::stem(n.find_net("c").unwrap(), true);
        let ea = fsim.error_map(&fa);
        let ec = fsim.error_map(&fc);
        let both = fsim.error_map_multi(&[fa, fc]);
        for pos in 0..view.len() {
            for pat in 0..64 {
                assert_eq!(
                    both.bit(pos, pat),
                    ea.bit(pos, pat) ^ ec.bit(pos, pat),
                    "({pos},{pat})"
                );
            }
        }
    }

    #[test]
    fn multiplet_sampling_detected_and_reproducible() {
        let (n, view, patterns) = setup();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let pairs = fsim.sample_detected_multiplets(5, 2, 1);
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert_eq!(pair.len(), 2);
            assert!(fsim.error_map_multi(pair).is_detected());
        }
        assert_eq!(pairs, fsim.sample_detected_multiplets(5, 2, 1));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let (n, view, _) = setup();
        let bad = PatternSet::pseudo_random(5, 3, 64, 7);
        assert!(FaultSimulator::new(&n, &view, &bad).is_err());
    }
}
