//! Bit-packed stimulus sets for full-scan test application.
//!
//! Under full scan, each test pattern is independent: the scan chain is
//! loaded with pseudo-random state bits, the primary inputs are driven
//! with pseudo-random values, and one capture clock latches the
//! combinational response. [`PatternSet`] stores the stimuli bit-packed,
//! 64 patterns per word, so the simulator can evaluate 64 patterns per
//! pass.

use scan_rng::ScanRng;

/// A bit-packed set of full-scan test patterns.
///
/// Bit `p % 64` of word `p / 64` holds the stimulus of pattern `p`.
///
/// # Examples
///
/// ```
/// use scan_sim::PatternSet;
///
/// let ps = PatternSet::pseudo_random(4, 3, 100, 42);
/// assert_eq!(ps.num_patterns(), 100);
/// assert_eq!(ps.num_words(), 2);
/// let _first_pi_word = ps.pi_word(0, 0);
/// ```
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct PatternSet {
    num_patterns: usize,
    pi_bits: Vec<Vec<u64>>,
    state_bits: Vec<Vec<u64>>,
}

impl PatternSet {
    /// Builds a pattern set by drawing stimulus bits from `next_bit` in
    /// scan-application order: for each pattern, first the scan-chain
    /// load values (flip-flop 0 .. F−1), then the primary input values
    /// (PI 0 .. P−1).
    ///
    /// This ordering matches a serial PRPG filling the chain and then
    /// the input register, so the same generator seed always produces
    /// the same test session.
    pub fn from_bit_stream<F>(
        num_pis: usize,
        num_ffs: usize,
        num_patterns: usize,
        mut next_bit: F,
    ) -> Self
    where
        F: FnMut() -> bool,
    {
        let words = num_patterns.div_ceil(64);
        let mut pi_bits = vec![vec![0u64; words]; num_pis];
        let mut state_bits = vec![vec![0u64; words]; num_ffs];
        for p in 0..num_patterns {
            let (w, b) = (p / 64, p % 64);
            for ff in &mut state_bits {
                if next_bit() {
                    ff[w] |= 1 << b;
                }
            }
            for pi in &mut pi_bits {
                if next_bit() {
                    pi[w] |= 1 << b;
                }
            }
        }
        PatternSet {
            num_patterns,
            pi_bits,
            state_bits,
        }
    }

    /// Builds a pseudo-random pattern set from a portable seeded RNG
    /// (convenience; experiments use
    /// [`PatternSet::from_bit_stream`] with an LFSR PRPG).
    #[must_use]
    pub fn pseudo_random(num_pis: usize, num_ffs: usize, num_patterns: usize, seed: u64) -> Self {
        let mut rng = ScanRng::seed_from_u64(seed);
        Self::from_bit_stream(num_pis, num_ffs, num_patterns, || rng.next_bool())
    }

    /// Builds a *weighted* pseudo-random pattern set: stimulus bit `i`
    /// of each pattern is 1 with the given probability (classical
    /// weighted-random BIST, which detects random-pattern-resistant
    /// faults that uniform patterns miss).
    ///
    /// `state_weights` biases the scan-load bits (one weight per
    /// flip-flop), `pi_weights` the primary inputs.
    ///
    /// # Panics
    ///
    /// Panics if the weight vectors are mis-sized or any weight is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn weighted(
        num_patterns: usize,
        seed: u64,
        pi_weights: &[f64],
        state_weights: &[f64],
    ) -> Self {
        for &w in pi_weights.iter().chain(state_weights) {
            assert!((0.0..=1.0).contains(&w), "weight {w} outside [0, 1]");
        }
        let mut rng = ScanRng::seed_from_u64(seed);
        let words = num_patterns.div_ceil(64);
        let mut pi_bits = vec![vec![0u64; words]; pi_weights.len()];
        let mut state_bits = vec![vec![0u64; words]; state_weights.len()];
        for p in 0..num_patterns {
            let (w, b) = (p / 64, p % 64);
            for (row, &weight) in state_bits.iter_mut().zip(state_weights) {
                if rng.gen_bool(weight) {
                    row[w] |= 1 << b;
                }
            }
            for (row, &weight) in pi_bits.iter_mut().zip(pi_weights) {
                if rng.gen_bool(weight) {
                    row[w] |= 1 << b;
                }
            }
        }
        PatternSet {
            num_patterns,
            pi_bits,
            state_bits,
        }
    }

    /// Number of patterns.
    #[must_use]
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of 64-pattern words.
    #[must_use]
    pub fn num_words(&self) -> usize {
        self.num_patterns.div_ceil(64)
    }

    /// Number of primary input streams.
    #[must_use]
    pub fn num_pis(&self) -> usize {
        self.pi_bits.len()
    }

    /// Number of flip-flop load streams.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.state_bits.len()
    }

    /// The packed word of primary input `pi` for word index `word`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn pi_word(&self, pi: usize, word: usize) -> u64 {
        self.pi_bits[pi][word]
    }

    /// The packed scan-load word of flip-flop `ff` for word index
    /// `word`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn state_word(&self, ff: usize, word: usize) -> u64 {
        self.state_bits[ff][word]
    }

    /// Mask of valid pattern lanes in the given word (all ones except in
    /// the final partial word).
    #[must_use]
    pub fn lane_mask(&self, word: usize) -> u64 {
        let full_words = self.num_patterns / 64;
        if word < full_words {
            !0
        } else {
            let rem = self.num_patterns % 64;
            if rem == 0 {
                0
            } else {
                (1u64 << rem) - 1
            }
        }
    }

    /// The scan-load bit of flip-flop `ff` in pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn state_bit(&self, ff: usize, pattern: usize) -> bool {
        assert!(pattern < self.num_patterns, "pattern out of range");
        self.state_bits[ff][pattern / 64] >> (pattern % 64) & 1 != 0
    }

    /// The primary-input bit of `pi` in pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    #[must_use]
    pub fn pi_bit(&self, pi: usize, pattern: usize) -> bool {
        assert!(pattern < self.num_patterns, "pattern out of range");
        self.pi_bits[pi][pattern / 64] >> (pattern % 64) & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bit_stream_consumes_in_scan_order() {
        // 1 PI, 2 FFs, 2 patterns: consumption order is
        // p0: ff0, ff1, pi0 — p1: ff0, ff1, pi0.
        let stream = [true, false, true, false, true, false];
        let mut it = stream.iter().copied();
        let ps = PatternSet::from_bit_stream(1, 2, 2, || it.next().unwrap());
        assert!(ps.state_bit(0, 0));
        assert!(!ps.state_bit(1, 0));
        assert!(ps.pi_bit(0, 0));
        assert!(!ps.state_bit(0, 1));
        assert!(ps.state_bit(1, 1));
        assert!(!ps.pi_bit(0, 1));
    }

    #[test]
    fn pseudo_random_deterministic() {
        let a = PatternSet::pseudo_random(5, 7, 130, 9);
        let b = PatternSet::pseudo_random(5, 7, 130, 9);
        assert_eq!(a, b);
        let c = PatternSet::pseudo_random(5, 7, 130, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn lane_masks() {
        let ps = PatternSet::pseudo_random(1, 1, 130, 0);
        assert_eq!(ps.num_words(), 3);
        assert_eq!(ps.lane_mask(0), !0);
        assert_eq!(ps.lane_mask(1), !0);
        assert_eq!(ps.lane_mask(2), 0b11);
        let exact = PatternSet::pseudo_random(1, 1, 128, 0);
        assert_eq!(exact.lane_mask(1), !0);
    }

    #[test]
    fn weighted_biases_bits() {
        let ps = PatternSet::weighted(1000, 3, &[0.9, 0.1], &[0.5]);
        let ones = |f: &dyn Fn(usize) -> bool| (0..1000).filter(|&p| f(p)).count();
        let high = ones(&|p| ps.pi_bit(0, p));
        let low = ones(&|p| ps.pi_bit(1, p));
        let mid = ones(&|p| ps.state_bit(0, p));
        assert!(high > 850, "high-weight input: {high}");
        assert!(low < 150, "low-weight input: {low}");
        assert!((400..=600).contains(&mid), "balanced state: {mid}");
    }

    #[test]
    fn weighted_extremes_are_constant() {
        let ps = PatternSet::weighted(100, 1, &[1.0, 0.0], &[]);
        assert!((0..100).all(|p| ps.pi_bit(0, p)));
        assert!((0..100).all(|p| !ps.pi_bit(1, p)));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn weighted_rejects_bad_weight() {
        let _ = PatternSet::weighted(10, 1, &[1.5], &[]);
    }

    #[test]
    fn word_bit_consistency() {
        let ps = PatternSet::pseudo_random(3, 4, 200, 5);
        for p in [0usize, 63, 64, 127, 199] {
            for pi in 0..3 {
                assert_eq!(
                    ps.pi_bit(pi, p),
                    ps.pi_word(pi, p / 64) >> (p % 64) & 1 != 0
                );
            }
            for ff in 0..4 {
                assert_eq!(
                    ps.state_bit(ff, p),
                    ps.state_word(ff, p / 64) >> (p % 64) & 1 != 0
                );
            }
        }
    }
}
