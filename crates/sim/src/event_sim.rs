//! Event-driven stuck-at fault simulation.
//!
//! [`FaultSimulator`](crate::FaultSimulator) re-evaluates the whole
//! circuit per fault; this engine instead propagates only the *changes*
//! a fault causes. The fault-free value of every net is computed once;
//! per fault, a levelized worklist re-evaluates just the gates whose
//! inputs changed, and touched nets are restored afterwards. For faults
//! with small cones (the common case the paper's clustering argument
//! rests on) this visits a tiny fraction of the circuit.
//!
//! Both engines are bit-exact (see the cross-check tests); the Criterion
//! bench `fault_sim` compares their throughput.

use scan_netlist::{GateId, Netlist, ScanView};

use crate::error::PatternShapeError;
use crate::fault::{Fault, FaultSite};
use crate::pattern::PatternSet;
use crate::response::{ErrorMap, ResponseMap};
use crate::simulator::Simulator;

/// An event-driven fault simulator bound to one circuit, scan view, and
/// pattern set.
///
/// # Examples
///
/// ```
/// use scan_netlist::{bench, ScanView};
/// use scan_sim::{EventFaultSimulator, Fault, PatternSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s27 = bench::s27();
/// let view = ScanView::natural(&s27, true);
/// let patterns = PatternSet::pseudo_random(4, 3, 64, 1);
/// let mut esim = EventFaultSimulator::new(&s27, &view, &patterns)?;
/// let g10 = s27.find_net("G10").expect("net exists");
/// let errors = esim.error_map(&Fault::stem(g10, true));
/// assert!(errors.is_detected());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct EventFaultSimulator<'a> {
    netlist: &'a Netlist,
    patterns: &'a PatternSet,
    view_len: usize,
    /// Fault-free net values, `golden[word][net]`.
    golden_nets: Vec<Vec<u64>>,
    /// Fault-free observed response.
    golden: ResponseMap,
    /// Observation positions per net (a net can be both a PO and a DFF
    /// data input).
    observers: Vec<Vec<u32>>,
    /// Scratch copy of the current word's net values (restored after
    /// each fault).
    scratch: Vec<u64>,
    /// Whether a gate is already queued, per gate.
    queued: Vec<bool>,
    /// Worklist buckets by gate level.
    buckets: Vec<Vec<GateId>>,
}

impl<'a> EventFaultSimulator<'a> {
    /// Creates the simulator and computes the fault-free values of
    /// every net for every pattern word.
    ///
    /// # Errors
    ///
    /// Returns [`PatternShapeError`] if the pattern set does not match
    /// the netlist interface.
    pub fn new(
        netlist: &'a Netlist,
        view: &'a ScanView,
        patterns: &'a PatternSet,
    ) -> Result<Self, PatternShapeError> {
        let sim = Simulator::new(netlist, patterns)?;
        let mut golden_nets = Vec::with_capacity(patterns.num_words());
        let mut values = vec![0u64; netlist.num_nets()];
        for word in 0..patterns.num_words() {
            sim.eval_word(word, None, &mut values);
            golden_nets.push(values.clone());
        }
        let mut observers = vec![Vec::new(); netlist.num_nets()];
        let mut golden = ResponseMap::zeroed(view.len(), patterns.num_patterns());
        for pos in 0..view.len() {
            let net = view.observed_net(netlist, pos);
            observers[net.index()].push(pos as u32);
            for (word, nets) in golden_nets.iter().enumerate() {
                golden.set_word(pos, word, nets[net.index()] & patterns.lane_mask(word));
            }
        }
        let depth = netlist.depth() as usize;
        Ok(EventFaultSimulator {
            netlist,
            patterns,
            view_len: view.len(),
            scratch: golden_nets.first().cloned().unwrap_or_default(),
            golden_nets,
            golden,
            observers,
            queued: vec![false; netlist.num_gates()],
            buckets: vec![Vec::new(); depth + 2],
        })
    }

    /// The fault-free observed response.
    #[must_use]
    pub fn golden(&self) -> &ResponseMap {
        &self.golden
    }

    /// Draws a reproducible sample of up to `count` *detected* faults
    /// together with their error maps — the reference-oracle
    /// counterpart of
    /// [`PpsfpSimulator::sample_detected_with_maps`](crate::PpsfpSimulator::sample_detected_with_maps).
    ///
    /// Samples from the exact candidate sequence of
    /// [`FaultSimulator::sample_detected_faults`](crate::FaultSimulator::sample_detected_faults),
    /// so a campaign prepared on this engine sees the same faults (and,
    /// both engines being bit-exact, the same error maps) as one
    /// prepared on the bit-parallel engine.
    pub fn sample_detected_with_maps(&mut self, count: usize, seed: u64) -> Vec<(Fault, ErrorMap)> {
        let _span = scan_obs::span!("sample_detected");
        let faults = crate::fault_sim::shuffled_candidate_faults(self.netlist, seed);
        let mut detected = Vec::with_capacity(count);
        let mut tried = 0u64;
        for fault in faults {
            if detected.len() == count {
                break;
            }
            tried += 1;
            let map = self.error_map(&fault);
            if map.is_detected() {
                detected.push((fault, map));
            }
        }
        scan_obs::metrics::add("fault_sim.faults_tried", tried);
        scan_obs::metrics::add("fault_sim.faults_detected", detected.len() as u64);
        detected
    }

    /// Simulates `fault` by event propagation and returns its error
    /// map. Bit-exact with
    /// [`FaultSimulator::error_map`](crate::FaultSimulator::error_map).
    pub fn error_map(&mut self, fault: &Fault) -> ErrorMap {
        scan_obs::metrics::incr("fault_sim.error_maps");
        let mut errors = ResponseMap::zeroed(self.view_len, self.patterns.num_patterns());
        let forced = if fault.stuck { !0u64 } else { 0u64 };
        for word in 0..self.patterns.num_words() {
            self.propagate_word(word, fault, forced, &mut errors);
        }
        ErrorMap::from(errors)
    }

    #[allow(clippy::too_many_lines)]
    fn propagate_word(
        &mut self,
        word: usize,
        fault: &Fault,
        forced: u64,
        errors: &mut ResponseMap,
    ) {
        // scratch currently equals golden_nets[previous word] for all
        // untouched nets; resynchronize it wholesale per word (cheap:
        // one memcpy per word, shared by the fault).
        self.scratch.copy_from_slice(&self.golden_nets[word]);
        let mask = self.patterns.lane_mask(word);
        let mut touched: Vec<usize> = Vec::new();
        // The stem net whose value stays forced regardless of inputs.
        let mut forced_stem: Option<usize> = None;

        // Seed the worklist.
        match fault.site {
            FaultSite::Stem(net) => {
                forced_stem = Some(net.index());
                let diff = (self.scratch[net.index()] ^ forced) & mask;
                if diff == 0 {
                    return;
                }
                self.scratch[net.index()] = forced;
                touched.push(net.index());
                self.record_errors(net.index(), diff, word, errors);
                // If a gate drives the stem, nothing upstream changes;
                // only the fanout must be re-evaluated either way.
                for &g in self.netlist.fanout(net) {
                    self.enqueue(g);
                }
            }
            FaultSite::Pin { gate, .. } => {
                self.enqueue(gate);
            }
        }

        // Levelized propagation.
        for level in 0..self.buckets.len() {
            while let Some(gid) = self.buckets[level].pop() {
                self.queued[gid.index()] = false;
                let gate = self.netlist.gate(gid);
                let out_index = gate.output.index();
                if forced_stem == Some(out_index) {
                    // The output is pinned by the stem fault; input
                    // changes cannot move it.
                    continue;
                }
                let mut inputs: Vec<u64> = gate
                    .inputs
                    .iter()
                    .map(|n| self.scratch[n.index()])
                    .collect();
                if let FaultSite::Pin { gate: fgate, pin } = fault.site {
                    if fgate == gid {
                        inputs[pin as usize] = forced;
                    }
                }
                let new = gate.kind.eval_words(&inputs);
                let old = self.scratch[out_index];
                let diff = (new ^ old) & mask;
                if diff == 0 {
                    continue;
                }
                self.scratch[out_index] = new;
                touched.push(out_index);
                let golden_diff = (new ^ self.golden_nets[word][out_index]) & mask;
                self.record_errors(out_index, golden_diff, word, errors);
                for &succ in self.netlist.fanout(gate.output) {
                    self.enqueue(succ);
                }
            }
        }

        // Restore scratch to golden for the touched nets (constant-time
        // reuse for the next word/fault).
        for net in touched {
            self.scratch[net] = self.golden_nets[word][net];
        }
    }

    fn enqueue(&mut self, gate: GateId) {
        if !self.queued[gate.index()] {
            self.queued[gate.index()] = true;
            let level = self.netlist.gate_level(gate) as usize;
            self.buckets[level].push(gate);
        }
    }

    fn record_errors(&self, net: usize, diff: u64, word: usize, errors: &mut ResponseMap) {
        if diff == 0 {
            return;
        }
        for &pos in &self.observers[net] {
            let current = errors.word(pos as usize, word);
            errors.set_word(pos as usize, word, current | diff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultUniverse;
    use crate::fault_sim::FaultSimulator;
    use scan_netlist::generate::{generate, profile};
    use scan_netlist::{bench, ScanView};

    #[test]
    fn matches_full_resimulation_on_s27() {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 100, 7);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut esim = EventFaultSimulator::new(&n, &view, &patterns).unwrap();
        assert_eq!(fsim.golden(), esim.golden());
        for fault in FaultUniverse::all(&n).faults() {
            assert_eq!(
                fsim.error_map(fault),
                esim.error_map(fault),
                "fault {}",
                fault.describe(&n)
            );
        }
    }

    #[test]
    fn matches_full_resimulation_on_synthetic_circuit() {
        let p = profile("s344").unwrap();
        let n = generate(p, 5);
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(n.num_inputs(), n.num_dffs(), 128, 3);
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let mut esim = EventFaultSimulator::new(&n, &view, &patterns).unwrap();
        for fault in FaultUniverse::collapsed(&n).faults().iter().take(150) {
            assert_eq!(
                fsim.error_map(fault),
                esim.error_map(fault),
                "fault {}",
                fault.describe(&n)
            );
        }
    }

    #[test]
    fn consecutive_faults_do_not_contaminate() {
        // The scratch-restore logic must leave no residue between
        // faults: simulate A, B, then A again.
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 64, 1);
        let mut esim = EventFaultSimulator::new(&n, &view, &patterns).unwrap();
        let a = Fault::stem(n.find_net("G11").unwrap(), false);
        let b = Fault::stem(n.find_net("G8").unwrap(), true);
        let first = esim.error_map(&a);
        let _ = esim.error_map(&b);
        let again = esim.error_map(&a);
        assert_eq!(first, again);
    }
}
