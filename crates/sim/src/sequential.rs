//! Sequential (multi-cycle) simulation.
//!
//! The scan-BIST flow treats every pattern independently (scan load →
//! one capture), so the core engines are combinational. This module
//! adds true sequential simulation — state carried across clock cycles
//! — which (a) validates the flip-flop capture semantics the full-scan
//! model assumes, and (b) lets users run functional stimulus on the
//! same netlists.

use scan_netlist::Netlist;

use crate::fault::Fault;
use crate::pattern::PatternSet;
use crate::simulator::Simulator;

/// A cycle-by-cycle simulator carrying flip-flop state.
///
/// # Examples
///
/// ```
/// use scan_netlist::bench;
/// use scan_sim::SequentialSimulator;
///
/// let s27 = bench::s27();
/// let mut sim = SequentialSimulator::new(&s27);
/// sim.reset(&[false, false, false]);
/// let outputs = sim.step(&[true, false, true, false], None);
/// assert_eq!(outputs.len(), 1); // one PO
/// ```
#[derive(Clone, Debug)]
pub struct SequentialSimulator<'a> {
    netlist: &'a Netlist,
    state: Vec<bool>,
}

impl<'a> SequentialSimulator<'a> {
    /// Creates a simulator with all flip-flops reset to 0.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        SequentialSimulator {
            netlist,
            state: vec![false; netlist.num_dffs()],
        }
    }

    /// Forces the flip-flop state (e.g. a scan load).
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have one bit per flip-flop.
    pub fn reset(&mut self, state: &[bool]) {
        assert_eq!(
            state.len(),
            self.netlist.num_dffs(),
            "one state bit per flip-flop"
        );
        self.state.copy_from_slice(state);
    }

    /// Current flip-flop state, in declaration order.
    #[must_use]
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Applies one clock cycle: evaluates the combinational logic under
    /// `pi` and the current state, returns the primary output values,
    /// and latches the next state. An optional stuck-at `fault` is
    /// injected (persistently, as a hardware defect would be).
    ///
    /// # Panics
    ///
    /// Panics if `pi` does not have one bit per primary input.
    pub fn step(&mut self, pi: &[bool], fault: Option<&Fault>) -> Vec<bool> {
        assert_eq!(
            pi.len(),
            self.netlist.num_inputs(),
            "one bit per primary input"
        );
        // Reuse the bit-parallel evaluator with a single lane.
        let mut pi_iter = pi.iter();
        let mut st_iter = self.state.iter();
        let patterns = PatternSet::from_bit_stream(
            self.netlist.num_inputs(),
            self.netlist.num_dffs(),
            1,
            || {
                if let Some(&b) = st_iter.next() {
                    b
                } else {
                    *pi_iter.next().expect("enough stimulus bits")
                }
            },
        );
        let sim = Simulator::new(self.netlist, &patterns).expect("shapes match by construction");
        let mut values = vec![0u64; self.netlist.num_nets()];
        sim.eval_word(0, fault, &mut values);
        let outputs = self
            .netlist
            .outputs()
            .iter()
            .map(|&net| values[net.index()] & 1 != 0)
            .collect();
        for (slot, dff) in self.state.iter_mut().zip(self.netlist.dffs()) {
            *slot = values[dff.d.index()] & 1 != 0;
        }
        outputs
    }

    /// Runs a stimulus sequence, returning the PO vectors per cycle.
    ///
    /// # Panics
    ///
    /// Panics if any cycle's stimulus is mis-sized.
    pub fn run(&mut self, stimuli: &[Vec<bool>], fault: Option<&Fault>) -> Vec<Vec<bool>> {
        stimuli.iter().map(|pi| self.step(pi, fault)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_netlist::{bench, GateKind, NetlistBuilder};

    /// A 2-bit synchronous counter with a carry output.
    fn counter2() -> Netlist {
        let mut b = NetlistBuilder::new("cnt2");
        b.input("en");
        b.dff("q0", "d0");
        b.dff("q1", "d1");
        // d0 = q0 XOR en; d1 = q1 XOR (q0 AND en); carry = q1 AND q0 AND en
        b.gate(GateKind::Xor, "d0", &["q0", "en"]);
        b.gate(GateKind::And, "t", &["q0", "en"]);
        b.gate(GateKind::Xor, "d1", &["q1", "t"]);
        b.gate(GateKind::And, "c0", &["q1", "t"]);
        b.gate(GateKind::Buf, "carry", &["c0"]);
        b.output("carry");
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let n = counter2();
        let mut sim = SequentialSimulator::new(&n);
        sim.reset(&[false, false]);
        let mut states = Vec::new();
        for _ in 0..5 {
            sim.step(&[true], None);
            states.push((sim.state()[0], sim.state()[1]));
        }
        assert_eq!(
            states,
            vec![
                (true, false),  // 1
                (false, true),  // 2
                (true, true),   // 3
                (false, false), // 0 (wrapped)
                (true, false),  // 1
            ]
        );
    }

    #[test]
    fn carry_fires_on_wrap() {
        let n = counter2();
        let mut sim = SequentialSimulator::new(&n);
        sim.reset(&[true, true]); // state 3
        let out = sim.step(&[true], None);
        assert!(out[0], "carry must assert when counting past 3");
        assert_eq!(sim.state(), &[false, false]);
    }

    #[test]
    fn disabled_counter_holds() {
        let n = counter2();
        let mut sim = SequentialSimulator::new(&n);
        sim.reset(&[true, false]);
        sim.step(&[false], None);
        assert_eq!(sim.state(), &[true, false]);
    }

    #[test]
    fn sequential_step_matches_full_scan_capture() {
        // One sequential step from a forced state equals the full-scan
        // model's capture for the same (state, PI) pattern.
        let n = bench::s27();
        let view = scan_netlist::ScanView::natural(&n, true);
        let state = [true, false, true];
        let pi = [false, true, true, false];
        let mut st_iter = state.iter();
        let mut pi_iter = pi.iter();
        let patterns = PatternSet::from_bit_stream(4, 3, 1, || {
            if let Some(&b) = st_iter.next() {
                b
            } else {
                *pi_iter.next().unwrap()
            }
        });
        let fsim = crate::FaultSimulator::new(&n, &view, &patterns).unwrap();

        let mut seq = SequentialSimulator::new(&n);
        seq.reset(&state);
        let outputs = seq.step(&pi, None);
        // Captured next state == observed cell values.
        for (ff, &bit) in seq.state().iter().enumerate() {
            assert_eq!(fsim.golden().bit(ff, 0), bit, "cell {ff}");
        }
        // PO values match the view's output positions.
        assert_eq!(fsim.golden().bit(3, 0), outputs[0]);
    }

    #[test]
    fn persistent_fault_corrupts_over_time() {
        let n = counter2();
        let q0 = n.find_net("q0").unwrap();
        let fault = Fault::stem(q0, false); // q0 stuck-at-0
        let mut good = SequentialSimulator::new(&n);
        let mut bad = SequentialSimulator::new(&n);
        good.reset(&[false, false]);
        bad.reset(&[false, false]);
        for _ in 0..4 {
            good.step(&[true], None);
            bad.step(&[true], Some(&fault));
        }
        assert_ne!(good.state(), bad.state(), "stuck counter must diverge");
    }
}
