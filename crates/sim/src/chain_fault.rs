//! Scan chain integrity faults.
//!
//! The paper diagnoses *system logic* faults observed through a healthy
//! scan chain; the complementary failure mode is a defect in the chain
//! itself — a scan cell whose shift path is stuck. A stuck shift stage
//! corrupts traffic in both directions:
//!
//! * **scan-in**: every bit that must pass *through* the broken stage
//!   to reach its destination arrives as the stuck value, so cells
//!   *upstream* of the defect (loaded through it) all capture the
//!   constant;
//! * **scan-out**: every observed bit that passes through the stage on
//!   its way to the output is forced, so cells upstream of the defect
//!   are observed as the constant.
//!
//! (Here "upstream" means farther from the scan output: with the
//! convention that cell 0 is next to the scan output, a defect at
//! position `k` forces the *loaded* state of positions `> k` wrong and
//! the *observed* values of positions `> k` constant, while positions
//! `≤ k` load and observe correctly.)

use scan_netlist::{Netlist, ScanView};

use crate::error::PatternShapeError;
use crate::pattern::PatternSet;
use crate::response::ResponseMap;
use crate::simulator::Simulator;

/// A stuck-at defect in the scan shift path at one chain position.
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub struct ChainFault {
    /// Shift position of the broken cell (0 = next to scan output).
    pub position: usize,
    /// The stuck value of the shift stage.
    pub stuck: bool,
}

/// Simulates BIST test application through a defective scan chain.
///
/// Produces the *observed* responses: the scan-in corruption alters what
/// the circuit captures, and the scan-out corruption alters what the
/// compactor sees. Primary outputs (view positions beyond the scan
/// cells) are observed directly and are only affected through the
/// corrupted loaded state.
///
/// # Errors
///
/// Returns [`PatternShapeError`] if the pattern set does not match the
/// netlist interface.
///
/// # Panics
///
/// Panics if `fault.position` is not a scan-cell position of the view.
pub fn simulate_chain_fault(
    netlist: &Netlist,
    view: &ScanView,
    patterns: &PatternSet,
    fault: &ChainFault,
) -> Result<ResponseMap, PatternShapeError> {
    assert!(
        fault.position < view.num_cells(),
        "chain fault position {} beyond the {} scan cells",
        fault.position,
        view.num_cells()
    );
    // Build the corrupted loaded state: cells loaded through the broken
    // stage (positions > fault.position) receive the stuck value.
    let corrupted = corrupt_loads(netlist, view, patterns, fault);
    let sim = Simulator::new(netlist, &corrupted)?;
    let mut response = ResponseMap::zeroed(view.len(), patterns.num_patterns());
    let mut values = vec![0u64; netlist.num_nets()];
    let stuck_word = if fault.stuck { !0u64 } else { 0u64 };
    for word in 0..patterns.num_words() {
        sim.eval_word(word, None, &mut values);
        let mask = patterns.lane_mask(word);
        for pos in 0..view.len() {
            let net = view.observed_net(netlist, pos);
            let mut observed = values[net.index()];
            // Scan-out corruption: scan-cell positions shifted out
            // through the defect are forced.
            if pos < view.num_cells() && pos > fault.position {
                observed = stuck_word;
            }
            response.set_word(pos, word, observed & mask);
        }
    }
    Ok(response)
}

/// The load-corrupting transform: positions `> fault.position` receive
/// the stuck value instead of their PRPG bits.
fn corrupt_loads(
    netlist: &Netlist,
    view: &ScanView,
    patterns: &PatternSet,
    fault: &ChainFault,
) -> PatternSet {
    let num_patterns = patterns.num_patterns();
    // Map each flip-flop (declaration index) to its chain position.
    let position_of_ff: Vec<usize> = netlist
        .dff_ids()
        .map(|ff| view.position_of_cell(ff).expect("view covers every FF"))
        .collect();
    let mut ff_index = 0usize;
    let mut pi_index = 0usize;
    let mut pattern = 0usize;
    PatternSet::from_bit_stream(
        netlist.num_inputs(),
        netlist.num_dffs(),
        num_patterns,
        move || {
            // Reproduce the scan-application order: per pattern, FFs
            // then PIs.
            if ff_index < position_of_ff.len() {
                let ff = ff_index;
                ff_index += 1;
                let original = patterns.state_bit(ff, pattern);
                if position_of_ff[ff] > fault.position {
                    fault.stuck
                } else {
                    original
                }
            } else {
                let pi = pi_index;
                pi_index += 1;
                if pi_index == netlist.num_inputs() {
                    pi_index = 0;
                    ff_index = 0;
                    let bit = patterns.pi_bit(pi, pattern);
                    pattern += 1;
                    bit
                } else {
                    patterns.pi_bit(pi, pattern)
                }
            }
        },
    )
}

/// Locates a chain defect from flush-test behaviour: an all-zeros and an
/// all-ones chain flush (no capture) reveal the stuck value and the
/// boundary position.
///
/// Returns `None` when both flushes come back clean (no chain defect).
///
/// With a defect at position `k` stuck at `v`, the observed flush of
/// the complementary value `!v` reads `!v` at positions `0..=k` and `v`
/// above — the first corrupted position is `k + 1`, so `k` is the last
/// correct one.
///
/// # Panics
///
/// Panics if the two flush observations have different lengths.
#[must_use]
pub fn locate_chain_fault(
    flush_zeros_observed: &[bool],
    flush_ones_observed: &[bool],
) -> Option<ChainFault> {
    assert_eq!(
        flush_zeros_observed.len(),
        flush_ones_observed.len(),
        "flush observations must cover the same chain"
    );
    // Stuck-at-1: the zero flush shows ones somewhere.
    if let Some(first_bad) = flush_zeros_observed.iter().position(|&b| b) {
        return Some(ChainFault {
            position: first_bad.saturating_sub(1),
            stuck: true,
        });
    }
    // Stuck-at-0: the ones flush shows zeros somewhere.
    if let Some(first_bad) = flush_ones_observed.iter().position(|&b| !b) {
        return Some(ChainFault {
            position: first_bad.saturating_sub(1),
            stuck: false,
        });
    }
    None
}

/// The flush observation a defective chain produces for a constant
/// flush of `value` (the model used by [`locate_chain_fault`]).
#[must_use]
pub fn flush_observation(chain_len: usize, fault: Option<&ChainFault>, value: bool) -> Vec<bool> {
    (0..chain_len)
        .map(|pos| match fault {
            Some(f) if pos > f.position => f.stuck,
            _ => value,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_sim::FaultSimulator;
    use scan_netlist::bench;

    fn setup() -> (Netlist, ScanView, PatternSet) {
        let n = bench::s27();
        let view = ScanView::natural(&n, true);
        let patterns = PatternSet::pseudo_random(4, 3, 64, 5);
        (n, view, patterns)
    }

    #[test]
    fn chain_fault_corrupts_upstream_only() {
        let (n, view, patterns) = setup();
        let fault = ChainFault {
            position: 0,
            stuck: true,
        };
        let observed = simulate_chain_fault(&n, &view, &patterns, &fault).unwrap();
        // Scan cells above the defect read constant 1.
        for pos in 1..view.num_cells() {
            for t in 0..8 {
                assert!(observed.bit(pos, t), "position {pos} pattern {t}");
            }
        }
    }

    #[test]
    fn healthy_position_matches_golden_when_loads_unaffected() {
        // A defect at the last chain position (2 of 3) corrupts no
        // loads in this convention only if every cell's position ≤ 2 —
        // cells at positions > 2 don't exist, so captures equal golden
        // and only scan-out could differ (nothing is above it).
        let (n, view, patterns) = setup();
        let fault = ChainFault {
            position: view.num_cells() - 1,
            stuck: false,
        };
        let observed = simulate_chain_fault(&n, &view, &patterns, &fault).unwrap();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        assert_eq!(&observed, fsim.golden());
    }

    #[test]
    fn primary_outputs_see_corrupted_state() {
        // Loads above the defect are constant, so the PO response
        // generally differs from golden even though POs bypass the
        // chain.
        let (n, view, patterns) = setup();
        let fault = ChainFault {
            position: 0,
            stuck: false,
        };
        let observed = simulate_chain_fault(&n, &view, &patterns, &fault).unwrap();
        let fsim = FaultSimulator::new(&n, &view, &patterns).unwrap();
        let po_pos = view.num_cells();
        let differs = (0..patterns.num_patterns())
            .any(|t| observed.bit(po_pos, t) != fsim.golden().bit(po_pos, t));
        assert!(differs, "PO must reflect the corrupted loaded state");
    }

    #[test]
    fn flush_localization_is_exact() {
        for chain_len in [3usize, 10, 52] {
            for position in 0..chain_len - 1 {
                for stuck in [false, true] {
                    let fault = ChainFault { position, stuck };
                    let zeros = flush_observation(chain_len, Some(&fault), false);
                    let ones = flush_observation(chain_len, Some(&fault), true);
                    let located = locate_chain_fault(&zeros, &ones).expect("defect visible");
                    assert_eq!(located, fault, "chain {chain_len} pos {position}");
                }
            }
        }
    }

    #[test]
    fn clean_flushes_mean_no_defect() {
        let zeros = flush_observation(10, None, false);
        let ones = flush_observation(10, None, true);
        assert_eq!(locate_chain_fault(&zeros, &ones), None);
    }

    #[test]
    #[should_panic(expected = "beyond the")]
    fn position_beyond_cells_rejected() {
        let (n, view, patterns) = setup();
        let fault = ChainFault {
            position: view.num_cells(),
            stuck: true,
        };
        let _ = simulate_chain_fault(&n, &view, &patterns, &fault);
    }
}
