//! Cycle-level emulation of the scan cell selection hardware (Fig. 1 of
//! the paper).
//!
//! The hardware consists of an LFSR loaded from an Initial Value
//! Register (IVR), a Pattern Counter, Shift Counter 1 (chain position),
//! Test Counter 1 (current session/group number) and — for two-step
//! partitioning — the two shaded registers: Shift Counter 2 (remaining
//! cells in the current interval) and Test Counter 2 (intervals left
//! before the selected one). The compare logic gates each shifted-out
//! cell into the compactor.
//!
//! [`partition`](crate::partition) derives group assignments
//! algebraically; this module replays the registers cycle by cycle and
//! is used by tests to prove the two agree, and by anyone who wants to
//! trace the hardware behaviour directly.

use crate::lfsr::Lfsr;
use crate::seed::read_length;

/// Which selection mode the hardware is in.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub enum SelectionMode {
    /// Random-selection: an `⌈log2 b⌉`-bit label is compared against
    /// Test Counter 1 on every shift.
    RandomSelection,
    /// Interval-based: Shift Counter 2 / Test Counter 2 delimit the
    /// selected interval; lengths are read from `k_bits` LFSR stages.
    Interval {
        /// Stages read per interval length.
        k_bits: u32,
    },
}

/// The selection hardware state.
#[derive(Clone, Debug)]
pub struct SelectionHardware {
    lfsr: Lfsr,
    ivr: u64,
    groups: u16,
    mode: SelectionMode,
}

impl SelectionHardware {
    /// Creates the hardware with the given partition LFSR, IVR seed,
    /// group count, and mode.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    #[must_use]
    pub fn new(lfsr: Lfsr, ivr: u64, groups: u16, mode: SelectionMode) -> Self {
        assert!(groups >= 1, "at least one group");
        SelectionHardware {
            lfsr,
            ivr,
            groups,
            mode,
        }
    }

    /// Current IVR contents.
    #[must_use]
    pub fn ivr(&self) -> u64 {
        self.ivr
    }

    /// Replays one scan-out of `chain_len` cells for the session that
    /// selects `group`, returning the per-position select mask (cell
    /// enters the compactor iff `mask[pos]`).
    ///
    /// The LFSR is reloaded from the IVR at the start (as the hardware
    /// does at the beginning of each pattern's scan-out), so the mask is
    /// identical for every pattern of the session.
    ///
    /// # Panics
    ///
    /// Panics if `group >= groups`.
    #[must_use]
    pub fn session_mask(&mut self, group: u16, chain_len: usize) -> Vec<bool> {
        assert!(group < self.groups, "group out of range");
        self.lfsr.load(self.ivr);
        match self.mode {
            SelectionMode::RandomSelection => self.random_selection_mask(group, chain_len),
            SelectionMode::Interval { k_bits } => self.interval_mask(group, chain_len, k_bits),
        }
    }

    fn random_selection_mask(&mut self, group: u16, chain_len: usize) -> Vec<bool> {
        let label_bits = if self.groups <= 1 {
            1
        } else {
            u32::from(self.groups)
                .next_power_of_two()
                .trailing_zeros()
                .max(1)
        }
        .min(self.lfsr.degree());
        let mut mask = Vec::with_capacity(chain_len);
        for _ in 0..chain_len {
            // Compare logic: label == Test Counter 1 (the group number).
            let label = if self.groups == 1 {
                0
            } else {
                (self.lfsr.low_bits(label_bits) % u64::from(self.groups)) as u16
            };
            mask.push(label == group);
            self.lfsr.step();
        }
        mask
    }

    fn interval_mask(&mut self, group: u16, chain_len: usize, k_bits: u32) -> Vec<bool> {
        // Test Counter 1 was incremented to `group` and transferred to
        // Test Counter 2; Shift Counter 2 is loaded with the first
        // interval length.
        let mut test_counter2 = group;
        let mut selecting = test_counter2 == 0;
        let mut shift_counter2 = read_length(&self.lfsr, k_bits);
        let mut done = false;
        let mut mask = Vec::with_capacity(chain_len);
        for _ in 0..chain_len {
            mask.push(selecting && !done);
            // Shift clock: Shift Counter 2 decrements; on reaching zero a
            // carry shifts the LFSR once, loads the next length, and
            // decrements Test Counter 2.
            shift_counter2 = shift_counter2.saturating_sub(1);
            if shift_counter2 == 0 {
                self.lfsr.step();
                shift_counter2 = read_length(&self.lfsr, k_bits);
                if selecting {
                    // The selected interval has ended.
                    done = true;
                    selecting = false;
                } else if test_counter2 > 0 {
                    test_counter2 -= 1;
                    selecting = test_counter2 == 0 && !done;
                }
            }
        }
        mask
    }

    /// Ends the current partition: the IVR is updated with the LFSR
    /// state so the next partition differs (random-selection mode), per
    /// the paper's "at the end of each partition, the IVR is updated
    /// with the current value of the LFSR".
    pub fn finish_partition(&mut self, chain_len: usize) {
        self.lfsr.load(self.ivr);
        for _ in 0..chain_len {
            self.lfsr.step();
        }
        self.ivr = self.lfsr.state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{random_selection_partitions, PartitionConfig};
    use crate::seed::find_interval_seed;

    #[test]
    fn random_selection_hardware_matches_partition_derivation() {
        let chain_len = 97;
        let groups = 4u16;
        let config = PartitionConfig::new(chain_len, groups);
        let parts = random_selection_partitions(&config, 3);
        let lfsr = Lfsr::new(config.lfsr_degree).unwrap();
        let mut hw = SelectionHardware::new(lfsr, config.seed, groups, SelectionMode::RandomSelection);
        for part in &parts {
            for g in 0..groups {
                let mask = hw.session_mask(g, chain_len);
                for (pos, &selected) in mask.iter().enumerate() {
                    assert_eq!(
                        selected,
                        part.group_of(pos) == g,
                        "mismatch at position {pos}, group {g}"
                    );
                }
            }
            hw.finish_partition(chain_len);
        }
    }

    #[test]
    fn interval_hardware_matches_partition_derivation() {
        let chain_len = 300;
        let groups = 8u16;
        let found = find_interval_seed(chain_len, groups, 16, 0).unwrap();
        let part = crate::partition::Partition::from_interval_lengths(chain_len, &found.lengths);
        let lfsr = Lfsr::new(16).unwrap();
        let mut hw = SelectionHardware::new(
            lfsr,
            found.seed,
            groups,
            SelectionMode::Interval {
                k_bits: found.k_bits,
            },
        );
        for g in 0..groups {
            let mask = hw.session_mask(g, chain_len);
            for (pos, &selected) in mask.iter().enumerate() {
                assert_eq!(
                    selected,
                    part.group_of(pos) == g,
                    "mismatch at position {pos}, group {g}"
                );
            }
        }
    }

    #[test]
    fn masks_partition_the_chain() {
        // Every position selected in exactly one session.
        let chain_len = 64;
        let groups = 4u16;
        let lfsr = Lfsr::new(16).unwrap();
        let mut hw = SelectionHardware::new(lfsr, 1, groups, SelectionMode::RandomSelection);
        let mut counts = vec![0usize; chain_len];
        for g in 0..groups {
            for (pos, sel) in hw.session_mask(g, chain_len).iter().enumerate() {
                if *sel {
                    counts[pos] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn finish_partition_changes_ivr() {
        let lfsr = Lfsr::new(16).unwrap();
        let mut hw = SelectionHardware::new(lfsr, 1, 4, SelectionMode::RandomSelection);
        let before = hw.ivr();
        hw.finish_partition(100);
        assert_ne!(hw.ivr(), before);
    }
}
