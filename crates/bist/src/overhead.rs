//! Hardware cost model for the scan cell selection logic (Fig. 1).
//!
//! The paper's hardware argument is that two-step partitioning costs
//! only *two additional registers* (Shift Counter 2 and Test Counter 2)
//! over the classical random-selection selection logic of \[5\]. This
//! module turns the Fig. 1 block diagram into flip-flop and gate-count
//! estimates so that claim can be checked quantitatively for any
//! configuration (see the `overhead` experiment binary).
//!
//! Costs use the usual DFT accounting: a `w`-bit register/counter is
//! `w` flip-flops; an up/down counter adds ~`5w` combinational gate
//! equivalents (half-adder + mux per stage); an equality comparator is
//! `w` XNORs plus a `w`-input AND tree (`w − 1` gates); LFSR feedback
//! is one XOR per tap.

use crate::lfsr::primitive_poly;

/// Parameters the selection hardware is sized for.
#[derive(Clone, Copy, Debug)]
pub struct SelectionHardwareSpec {
    /// Scan chain length (sizes Shift Counter 1).
    pub chain_len: usize,
    /// BIST patterns per session (sizes the Pattern Counter).
    pub num_patterns: usize,
    /// Groups per partition (sizes Test Counters and the label compare).
    pub groups: u16,
    /// Degree of the partition LFSR and IVR.
    pub lfsr_degree: u32,
    /// Selected bits per interval length (sizes Shift Counter 2); only
    /// meaningful when two-step hardware is included.
    pub length_bits: u32,
}

/// Flip-flop and gate-equivalent totals for one hardware variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HardwareCost {
    /// Storage elements (register/counter bits).
    pub flip_flops: usize,
    /// Combinational gate equivalents.
    pub gates: usize,
}

impl HardwareCost {
    /// Sum of both components (a crude single-number area proxy, one
    /// flip-flop counted as four gate equivalents).
    #[must_use]
    pub fn area_estimate(&self) -> usize {
        self.flip_flops * 4 + self.gates
    }
}

/// Register width needed for `values` distinct states (`⌈log2 n⌉`,
/// minimum 1).
fn bits_for(values: usize) -> usize {
    if values <= 2 {
        1
    } else {
        (usize::BITS - (values - 1).leading_zeros()) as usize
    }
}

fn counter(width: usize) -> HardwareCost {
    HardwareCost {
        flip_flops: width,
        gates: 5 * width,
    }
}

fn register(width: usize) -> HardwareCost {
    HardwareCost {
        flip_flops: width,
        gates: 0,
    }
}

fn comparator(width: usize) -> HardwareCost {
    HardwareCost {
        flip_flops: 0,
        gates: width + width.saturating_sub(1),
    }
}

fn add(a: HardwareCost, b: HardwareCost) -> HardwareCost {
    HardwareCost {
        flip_flops: a.flip_flops + b.flip_flops,
        gates: a.gates + b.gates,
    }
}

/// Cost of the classical random-selection hardware of \[5\]: LFSR +
/// IVR + Pattern Counter + Shift Counter 1 + Test Counter 1 + label
/// compare logic + the output AND gate.
#[must_use]
pub fn random_selection_cost(spec: &SelectionHardwareSpec) -> HardwareCost {
    let degree = spec.lfsr_degree as usize;
    let taps = primitive_poly(spec.lfsr_degree)
        .map_or(2, |p| p.count_ones() as usize - 2);
    let label_bits = bits_for(usize::from(spec.groups.max(2)) - 1).max(1);
    let mut cost = HardwareCost::default();
    cost = add(cost, register(degree)); // LFSR
    cost = add(cost, HardwareCost { flip_flops: 0, gates: taps }); // feedback
    cost = add(cost, register(degree)); // IVR
    cost = add(cost, counter(bits_for(spec.num_patterns))); // Pattern Counter
    cost = add(cost, counter(bits_for(spec.chain_len))); // Shift Counter 1
    cost = add(cost, counter(label_bits)); // Test Counter 1
    cost = add(cost, comparator(label_bits)); // label == TC1
    cost.gates += 1; // masking AND into the compactor
    cost
}

/// Cost of the paper's two-step hardware: the random-selection logic
/// plus Shift Counter 2 and Test Counter 2 (the shaded Fig. 1 blocks)
/// and the zero-detect compare on Test Counter 2.
#[must_use]
pub fn two_step_cost(spec: &SelectionHardwareSpec) -> HardwareCost {
    let label_bits = bits_for(usize::from(spec.groups.max(2)) - 1).max(1);
    let mut cost = random_selection_cost(spec);
    cost = add(cost, counter(spec.length_bits as usize)); // Shift Counter 2
    cost = add(cost, counter(label_bits)); // Test Counter 2
    // zero-detect on both counters: a NOR tree each.
    cost.gates += (spec.length_bits as usize).saturating_sub(1) + label_bits.saturating_sub(1) + 2;
    cost
}

/// The two-step increment over random selection, as absolute cost and
/// as a fraction of the baseline area.
///
/// # Panics
///
/// Panics only if the cost model produces a two-step cost below the
/// baseline (an internal invariant).
#[must_use]
#[allow(clippy::cast_precision_loss)] // gate counts are far below 2^52
pub fn two_step_overhead(spec: &SelectionHardwareSpec) -> (HardwareCost, f64) {
    let base = random_selection_cost(spec);
    let two = two_step_cost(spec);
    let delta = HardwareCost {
        flip_flops: two.flip_flops - base.flip_flops,
        gates: two.gates - base.gates,
    };
    let frac = delta.area_estimate() as f64 / base.area_estimate() as f64;
    (delta, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SelectionHardwareSpec {
        SelectionHardwareSpec {
            chain_len: 228,
            num_patterns: 128,
            groups: 8,
            lfsr_degree: 16,
            length_bits: 6,
        }
    }

    #[test]
    fn two_step_adds_exactly_two_registers() {
        let s = spec();
        let (delta, _) = two_step_overhead(&s);
        // Shift Counter 2 (length_bits) + Test Counter 2 (label bits).
        assert_eq!(delta.flip_flops, 6 + 3);
        assert!(delta.gates > 0);
    }

    #[test]
    fn overhead_fraction_is_small() {
        let (_, frac) = two_step_overhead(&spec());
        assert!(
            frac < 0.5,
            "two-step overhead should be a modest fraction, got {frac}"
        );
    }

    #[test]
    fn costs_scale_with_parameters() {
        let small = random_selection_cost(&spec());
        let mut big_spec = spec();
        big_spec.chain_len = 7244;
        big_spec.groups = 32;
        let big = random_selection_cost(&big_spec);
        assert!(big.flip_flops > small.flip_flops);
    }

    #[test]
    fn bits_for_is_ceiling_log2() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(128), 7);
        assert_eq!(bits_for(200), 8);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
    }

    #[test]
    fn area_estimate_weighs_flops() {
        let c = HardwareCost {
            flip_flops: 10,
            gates: 5,
        };
        assert_eq!(c.area_estimate(), 45);
    }
}
