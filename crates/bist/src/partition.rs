//! Scan chain partitioning schemes.
//!
//! A *partition* splits the positions of a scan chain into `b`
//! non-overlapping groups; one BIST session is run per group, compacting
//! only the cells of that group into the MISR. The paper compares:
//!
//! * **random-selection** partitioning \[Rajski & Tyszer\]: each cell's
//!   group is a pseudo-random label read from an LFSR as the chain
//!   shifts;
//! * **interval-based** partitioning (this paper): each group is a run
//!   of *consecutive* cells whose pseudo-random lengths come from an
//!   LFSR seeded with a precomputed covering seed;
//! * **fixed-interval** partitioning \[Bayraktaroglu & Orailoglu\]:
//!   equal-length intervals (deterministic baseline);
//! * **two-step** partitioning (the paper's contribution): a few
//!   interval-based partitions followed by random-selection partitions.

use crate::error::FindSeedError;
use crate::lfsr::Lfsr;
use crate::seed::find_interval_seed;

/// One partition of a scan chain into non-overlapping groups.
///
/// `assignment[pos]` is the group index of chain position `pos`; every
/// position belongs to exactly one group, so the groups cover the chain.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct Partition {
    num_groups: u16,
    assignment: Vec<u16>,
}

impl Partition {
    /// Builds a partition from an explicit assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= num_groups` or the assignment is empty.
    #[must_use]
    pub fn from_assignment(num_groups: u16, assignment: Vec<u16>) -> Self {
        assert!(!assignment.is_empty(), "partition of an empty chain");
        assert!(
            assignment.iter().all(|&g| g < num_groups),
            "group index out of range"
        );
        Partition {
            num_groups,
            assignment,
        }
    }

    /// Builds an interval partition from consecutive group lengths.
    ///
    /// The lengths must sum to at least the chain length; the last
    /// interval is truncated at the chain end. Unused trailing lengths
    /// are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the lengths cannot cover `chain_len` positions or if
    /// more than `u16::MAX` intervals are needed.
    #[must_use]
    pub fn from_interval_lengths(chain_len: usize, lengths: &[usize]) -> Self {
        let mut assignment = Vec::with_capacity(chain_len);
        let mut group: u16 = 0;
        for &len in lengths {
            for _ in 0..len {
                if assignment.len() == chain_len {
                    break;
                }
                assignment.push(group);
            }
            if assignment.len() == chain_len {
                break;
            }
            group = group.checked_add(1).expect("too many intervals");
        }
        assert_eq!(
            assignment.len(),
            chain_len,
            "interval lengths do not cover the chain"
        );
        Partition {
            num_groups: group + 1,
            assignment,
        }
    }

    /// Number of groups (BIST sessions per partition).
    #[must_use]
    pub fn num_groups(&self) -> u16 {
        self.num_groups
    }

    /// Chain length covered by the partition.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` if the partition covers no positions (never true
    /// for constructed partitions).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// The group of a chain position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[must_use]
    pub fn group_of(&self, pos: usize) -> u16 {
        self.assignment[pos]
    }

    /// The full assignment vector.
    #[must_use]
    pub fn assignment(&self) -> &[u16] {
        &self.assignment
    }

    /// Iterates over the positions belonging to a group.
    pub fn members(&self, group: u16) -> impl Iterator<Item = usize> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |&(_, &g)| g == group)
            .map(|(pos, _)| pos)
    }

    /// Size of each group.
    #[must_use]
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; usize::from(self.num_groups)];
        for &g in &self.assignment {
            sizes[usize::from(g)] += 1;
        }
        sizes
    }

    /// Returns `true` if every group is a single run of consecutive
    /// positions (an interval partition).
    #[must_use]
    pub fn is_interval(&self) -> bool {
        let mut seen = vec![false; usize::from(self.num_groups)];
        let mut prev: Option<u16> = None;
        for &g in &self.assignment {
            if prev != Some(g) {
                if seen[usize::from(g)] {
                    return false;
                }
                seen[usize::from(g)] = true;
                prev = Some(g);
            }
        }
        true
    }
}

/// Configuration shared by the partition generators.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Scan chain length (number of observation positions).
    pub chain_len: usize,
    /// Number of groups per partition (`b`).
    pub groups: u16,
    /// Degree of the partition-generating LFSR (the paper uses 16).
    pub lfsr_degree: u32,
    /// Initial IVR seed for random-selection label generation.
    pub seed: u64,
}

impl PartitionConfig {
    /// A configuration with the paper's defaults: degree-16 LFSR,
    /// seed 1.
    #[must_use]
    pub fn new(chain_len: usize, groups: u16) -> Self {
        PartitionConfig {
            chain_len,
            groups,
            lfsr_degree: 16,
            seed: 1,
        }
    }

    fn validate(&self) {
        assert!(self.chain_len > 0, "chain must be non-empty");
        assert!(self.groups >= 1, "at least one group required");
        assert!(
            usize::from(self.groups) <= self.chain_len,
            "more groups than chain positions"
        );
    }
}

/// Generates `count` random-selection partitions, emulating the IVR/LFSR
/// chaining of the selection hardware: partition `k+1` reuses the LFSR
/// state left by partition `k` as its IVR value.
///
/// Each position's label is the low `⌈log2 b⌉` bits of the LFSR state
/// after `pos` steps from the partition's IVR seed, reduced modulo `b`.
///
/// # Panics
///
/// Panics if the configuration is invalid (empty chain, zero groups,
/// more groups than positions) or the LFSR degree is unsupported.
#[must_use]
pub fn random_selection_partitions(config: &PartitionConfig, count: usize) -> Vec<Partition> {
    config.validate();
    let mut lfsr = Lfsr::new(config.lfsr_degree).expect("supported LFSR degree");
    let label_bits = label_bits_for(config.groups).min(config.lfsr_degree);
    let mut ivr = config.seed;
    let mut partitions = Vec::with_capacity(count);
    for _ in 0..count {
        lfsr.load(ivr);
        let mut assignment = Vec::with_capacity(config.chain_len);
        for _ in 0..config.chain_len {
            let label = if config.groups == 1 {
                0
            } else {
                (lfsr.low_bits(label_bits) % u64::from(config.groups)) as u16
            };
            assignment.push(label);
            lfsr.step();
        }
        ivr = lfsr.state();
        partitions.push(Partition::from_assignment(config.groups, assignment));
    }
    partitions
}

fn label_bits_for(groups: u16) -> u32 {
    if groups <= 1 {
        1
    } else {
        u32::from(groups).next_power_of_two().trailing_zeros().max(1)
    }
}

/// Generates one interval-based partition from a covering seed found by
/// [`find_interval_seed`].
///
/// `salt` decorrelates successive interval partitions (it offsets the
/// seed search so each partition uses a different covering seed).
///
/// # Errors
///
/// Returns [`FindSeedError`] if no covering seed exists within the
/// search budget (pathological chain-length/group combinations).
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn interval_partition(
    config: &PartitionConfig,
    salt: u64,
) -> Result<Partition, FindSeedError> {
    config.validate();
    if config.groups == 1 {
        return Ok(Partition::from_assignment(1, vec![0; config.chain_len]));
    }
    let found = find_interval_seed(config.chain_len, config.groups, config.lfsr_degree, salt)?;
    Ok(Partition::from_interval_lengths(
        config.chain_len,
        &found.lengths,
    ))
}

/// Generates the deterministic fixed-interval partition: all groups the
/// same length except the last, which absorbs the remainder.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn fixed_interval_partition(config: &PartitionConfig) -> Partition {
    config.validate();
    let b = usize::from(config.groups);
    let base = config.chain_len / b;
    let rem = config.chain_len % b;
    // Distribute the remainder over the first `rem` groups so lengths
    // differ by at most one.
    let lengths: Vec<usize> = (0..b).map(|i| base + usize::from(i < rem)).collect();
    Partition::from_interval_lengths(config.chain_len, &lengths)
}

/// The partitioning schemes compared in the paper.
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub enum Scheme {
    /// All partitions by random selection (the baseline of \[5\]).
    RandomSelection,
    /// All partitions interval-based with pseudo-random lengths.
    IntervalBased,
    /// The paper's contribution: the first `interval_partitions`
    /// partitions interval-based, the rest random-selection.
    TwoStep {
        /// How many leading partitions are interval-based (the paper's
        /// experiments use 1).
        interval_partitions: usize,
    },
    /// All partitions equal-length fixed intervals (deterministic
    /// baseline of \[8\]); every partition is identical, so extra
    /// partitions add no information.
    FixedInterval,
}

impl Scheme {
    /// The paper's default two-step scheme (one interval partition).
    pub const TWO_STEP_DEFAULT: Scheme = Scheme::TwoStep {
        interval_partitions: 1,
    };

    /// Short human-readable name used in experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::RandomSelection => "random-selection",
            Scheme::IntervalBased => "interval-based",
            Scheme::TwoStep { .. } => "two-step",
            Scheme::FixedInterval => "fixed-interval",
        }
    }
}

/// Generates the sequence of partitions a scheme uses.
///
/// Interval partitions that cannot find a covering seed fall back to the
/// fixed-interval partition (deterministic and always valid), keeping
/// experiment campaigns total.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn generate_partitions(config: &PartitionConfig, scheme: Scheme, count: usize) -> Vec<Partition> {
    config.validate();
    let _span = scan_obs::span!("generate_partitions");
    let parts = generate_partitions_inner(config, scheme, count);
    if scan_obs::enabled() {
        for part in &parts {
            for size in part.group_sizes() {
                scan_obs::metrics::record_pow2("partition.group_size", size as u64);
            }
        }
    }
    parts
}

fn generate_partitions_inner(
    config: &PartitionConfig,
    scheme: Scheme,
    count: usize,
) -> Vec<Partition> {
    match scheme {
        Scheme::RandomSelection => random_selection_partitions(config, count),
        Scheme::IntervalBased => (0..count)
            .map(|k| {
                interval_partition(config, k as u64)
                    .unwrap_or_else(|_| fixed_interval_partition(config))
            })
            .collect(),
        Scheme::TwoStep {
            interval_partitions,
        } => {
            let ni = interval_partitions.min(count);
            let mut parts: Vec<Partition> = (0..ni)
                .map(|k| {
                    interval_partition(config, k as u64)
                        .unwrap_or_else(|_| fixed_interval_partition(config))
                })
                .collect();
            parts.extend(random_selection_partitions(config, count - ni));
            parts
        }
        Scheme::FixedInterval => (0..count)
            .map(|_| fixed_interval_partition(config))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(chain_len: usize, groups: u16) -> PartitionConfig {
        PartitionConfig::new(chain_len, groups)
    }

    #[test]
    fn from_interval_lengths_paper_example() {
        // The paper's 16-cell example: lengths 5, 6, 3, 2.
        let p = Partition::from_interval_lengths(16, &[5, 6, 3, 2]);
        assert_eq!(p.num_groups(), 4);
        assert_eq!(p.group_sizes(), vec![5, 6, 3, 2]);
        assert_eq!(p.group_of(0), 0);
        assert_eq!(p.group_of(4), 0);
        assert_eq!(p.group_of(5), 1);
        assert_eq!(p.group_of(10), 1);
        assert_eq!(p.group_of(11), 2);
        assert_eq!(p.group_of(14), 3);
        assert!(p.is_interval());
    }

    #[test]
    fn from_interval_lengths_truncates_last() {
        let p = Partition::from_interval_lengths(10, &[4, 4, 8]);
        assert_eq!(p.group_sizes(), vec![4, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "do not cover")]
    fn short_lengths_rejected() {
        let _ = Partition::from_interval_lengths(10, &[3, 3]);
    }

    #[test]
    fn random_selection_covers_and_varies() {
        let parts = random_selection_partitions(&cfg(100, 4), 3);
        assert_eq!(parts.len(), 3);
        for p in &parts {
            assert_eq!(p.len(), 100);
            assert_eq!(p.num_groups(), 4);
            // All groups present for a 100-cell chain, 4 labels.
            assert!(p.group_sizes().iter().all(|&s| s > 0));
        }
        // Successive partitions differ (IVR chaining).
        assert_ne!(parts[0], parts[1]);
        assert_ne!(parts[1], parts[2]);
    }

    #[test]
    fn random_selection_is_deterministic() {
        let a = random_selection_partitions(&cfg(64, 8), 2);
        let b = random_selection_partitions(&cfg(64, 8), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn random_selection_single_group() {
        let parts = random_selection_partitions(&cfg(10, 1), 1);
        assert!(parts[0].assignment().iter().all(|&g| g == 0));
    }

    #[test]
    fn random_selection_non_power_of_two_groups() {
        let parts = random_selection_partitions(&cfg(200, 6), 1);
        assert_eq!(parts[0].num_groups(), 6);
        assert!(parts[0].assignment().iter().all(|&g| g < 6));
        assert!(parts[0].group_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn interval_partition_covers_chain() {
        let p = interval_partition(&cfg(52, 4), 0).expect("seed exists");
        assert_eq!(p.len(), 52);
        assert_eq!(p.num_groups(), 4);
        assert!(p.is_interval());
        assert!(p.group_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn interval_partitions_with_different_salts_differ() {
        let a = interval_partition(&cfg(500, 8), 0).unwrap();
        let b = interval_partition(&cfg(500, 8), 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn fixed_interval_balanced() {
        let p = fixed_interval_partition(&cfg(10, 3));
        assert_eq!(p.group_sizes(), vec![4, 3, 3]);
        assert!(p.is_interval());
    }

    #[test]
    fn two_step_mixes_schemes() {
        let parts = generate_partitions(&cfg(128, 4), Scheme::TWO_STEP_DEFAULT, 4);
        assert_eq!(parts.len(), 4);
        assert!(parts[0].is_interval(), "first partition interval-based");
        // Random-selection partitions are essentially never intervals for
        // a 128-cell chain with 4 groups.
        assert!(!parts[1].is_interval());
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::RandomSelection.name(), "random-selection");
        assert_eq!(Scheme::TWO_STEP_DEFAULT.name(), "two-step");
    }

    #[test]
    fn is_interval_detects_fragmentation() {
        let p = Partition::from_assignment(2, vec![0, 1, 0]);
        assert!(!p.is_interval());
    }

    #[test]
    #[should_panic(expected = "more groups than chain positions")]
    fn too_many_groups_rejected() {
        let _ = random_selection_partitions(&cfg(3, 4), 1);
    }
}
