//! Search for interval-covering LFSR seeds.
//!
//! Interval-based partitioning needs a seed such that the `b`
//! pseudo-random interval lengths read from the LFSR cover the whole
//! scan chain: the first `b − 1` intervals must end strictly before the
//! chain end and the `b`-th must reach (or pass) it. The paper notes
//! that "usually there exist a number of such seeds for a given
//! circuit"; this module finds them by deterministic search and prefers
//! balanced covers.

use crate::error::FindSeedError;
use crate::lfsr::Lfsr;

/// A covering seed together with the interval lengths it generates.
#[derive(Clone, Eq, PartialEq, Debug)]
pub struct FoundSeed {
    /// The LFSR seed (IVR value).
    pub seed: u64,
    /// Number of selected LFSR bits read per interval length.
    pub k_bits: u32,
    /// The `b` interval lengths (the last one is the nominal length; the
    /// partition truncates it at the chain end).
    pub lengths: Vec<usize>,
}

/// Number of selected bits used to read an interval length, chosen so
/// the mean length `2^(k−1)` is close to the target `chain_len / groups`.
#[must_use]
pub fn length_bits(chain_len: usize, groups: u16, lfsr_degree: u32) -> u32 {
    let target = (chain_len / usize::from(groups)).max(1);
    // Smallest k with 2^(k−1) ≥ target, so the mean length ~2^(k−1) is at
    // or just above the target and `groups` draws can plausibly cover the
    // chain with the boundary crossed at the last interval.
    let k = target.next_power_of_two().trailing_zeros() + 1;
    k.clamp(1, lfsr_degree)
}

/// Reads an interval length from `k` stages spread across the register.
///
/// The paper associates the seed "with a number of bits from the LFSR";
/// spreading the taps decorrelates successive reads (the LFSR shifts
/// only once between intervals).
#[must_use]
pub fn read_length(lfsr: &Lfsr, k_bits: u32) -> usize {
    let degree = lfsr.degree();
    let state = lfsr.state();
    let mut value = 0usize;
    for j in 0..k_bits {
        let pos = (j * degree) / k_bits;
        value |= (((state >> pos) & 1) as usize) << j;
    }
    value
}

/// Generates the `groups` interval lengths for a given seed, stepping the
/// LFSR once per interval (the Fig. 1 carry-driven shift).
///
/// # Panics
///
/// Panics if `lfsr_degree` is outside the tabulated range (2..=32).
#[must_use]
pub fn lengths_from_seed(seed: u64, groups: u16, k_bits: u32, lfsr_degree: u32) -> Vec<usize> {
    let mut lfsr = Lfsr::new(lfsr_degree).expect("supported degree");
    lfsr.load(seed);
    let mut lengths = Vec::with_capacity(usize::from(groups));
    for _ in 0..groups {
        lengths.push(read_length(&lfsr, k_bits));
        lfsr.step();
    }
    lengths
}

/// How many valid candidates the search weighs before picking the most
/// balanced one.
const CANDIDATE_POOL: usize = 64;
/// Seed-search budget.
const SEARCH_LIMIT: u64 = 1 << 20;

/// Finds a covering seed for an interval partition of `chain_len`
/// positions into `groups` groups, using a degree-`lfsr_degree` LFSR.
///
/// `salt` offsets the deterministic search so different partitions get
/// different seeds. Among the first valid candidates the seed with the
/// smallest maximum interval (most balanced cover) is returned.
///
/// # Errors
///
/// Returns [`FindSeedError`] if the search budget is exhausted without a
/// cover (only possible for pathological `chain_len`/`groups`
/// combinations).
///
/// # Panics
///
/// Panics if `groups < 2` or there are more groups than chain positions.
pub fn find_interval_seed(
    chain_len: usize,
    groups: u16,
    lfsr_degree: u32,
    salt: u64,
) -> Result<FoundSeed, FindSeedError> {
    assert!(groups >= 2, "interval cover needs at least two groups");
    assert!(
        usize::from(groups) <= chain_len,
        "more groups than chain positions"
    );
    let k_bits = length_bits(chain_len, groups, lfsr_degree);
    let mask = if lfsr_degree == 64 {
        !0
    } else {
        (1u64 << lfsr_degree) - 1
    };
    let mut best: Option<FoundSeed> = None;
    let mut best_max = usize::MAX;
    let mut valid_found = 0usize;
    let mut examined = 0u64;
    // Golden-ratio stride walks the seed space without short cycles.
    let stride = 0x9E37_79B9_7F4A_7C15u64 | 1;
    let mut candidate = salt.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(1);
    while examined < SEARCH_LIMIT {
        examined += 1;
        candidate = candidate.wrapping_add(stride);
        let seed = candidate & mask;
        if seed == 0 {
            continue;
        }
        if let Some(lengths) = try_seed(seed, chain_len, groups, k_bits, lfsr_degree) {
            let max = lengths.iter().copied().max().unwrap_or(0);
            valid_found += 1;
            if max < best_max {
                best_max = max;
                best = Some(FoundSeed {
                    seed,
                    k_bits,
                    lengths,
                });
            }
            if valid_found >= CANDIDATE_POOL {
                break;
            }
        }
    }
    best.ok_or(FindSeedError {
        chain_len,
        groups,
        examined,
    })
}

fn try_seed(
    seed: u64,
    chain_len: usize,
    groups: u16,
    k_bits: u32,
    lfsr_degree: u32,
) -> Option<Vec<usize>> {
    let lengths = lengths_from_seed(seed, groups, k_bits, lfsr_degree);
    let mut sum = 0usize;
    for (i, &len) in lengths.iter().enumerate() {
        if len == 0 {
            return None;
        }
        sum += len;
        let is_last = i + 1 == lengths.len();
        if !is_last && sum >= chain_len {
            // An earlier interval already reaches the chain end: fewer
            // than `groups` groups would be used.
            return None;
        }
        if is_last && sum < chain_len {
            return None;
        }
    }
    Some(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_bits_targets_mean() {
        // chain 52, 4 groups → target 13 → k = 5 (mean 16 ≥ 13).
        assert_eq!(length_bits(52, 4, 16), 5);
        // chain 1000, 8 groups → target 125 → k = 8 (mean 128 ≥ 125).
        assert_eq!(length_bits(1000, 8, 16), 8);
        assert_eq!(length_bits(4, 4, 16), 1);
    }

    #[test]
    fn found_seed_covers_paper_sized_chain() {
        // s953 view: 29 cells + 23 POs = 52 positions, 4 groups.
        let found = find_interval_seed(52, 4, 16, 0).expect("cover exists");
        assert_eq!(found.lengths.len(), 4);
        let sum: usize = found.lengths.iter().sum();
        assert!(sum >= 52);
        let prefix: usize = found.lengths[..3].iter().sum();
        assert!(prefix < 52);
        assert!(found.lengths.iter().all(|&l| l > 0));
    }

    #[test]
    fn found_seed_reproducible() {
        let a = find_interval_seed(500, 8, 16, 7).unwrap();
        let b = find_interval_seed(500, 8, 16, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn salt_changes_seed() {
        let a = find_interval_seed(500, 8, 16, 0).unwrap();
        let b = find_interval_seed(500, 8, 16, 1).unwrap();
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn large_chain_many_groups() {
        // SOC 1 scale: ~7000 positions, 32 groups.
        let found = find_interval_seed(7244, 32, 16, 0).expect("cover exists");
        assert_eq!(found.lengths.len(), 32);
        let sum: usize = found.lengths.iter().sum();
        assert!(sum >= 7244);
    }

    #[test]
    fn tiny_chain() {
        let found = find_interval_seed(4, 2, 16, 0).expect("cover exists");
        let sum: usize = found.lengths.iter().sum();
        assert!(sum >= 4 && found.lengths[0] < 4);
    }

    #[test]
    fn lengths_follow_hardware_stepping() {
        let found = find_interval_seed(200, 4, 16, 0).unwrap();
        let regen = lengths_from_seed(found.seed, 4, found.k_bits, 16);
        assert_eq!(found.lengths, regen);
    }
}
