//! Response compactors beyond the MISR.
//!
//! A scan-BIST response analyzer reduces a long bit stream to a short
//! signature; different compactors trade hardware for aliasing
//! characteristics. The diagnosis schemes only need a *pass/fail*
//! verdict per session, so any compactor slots in — but aliasing (a
//! failing stream whose signature matches the fault-free one) differs
//! sharply:
//!
//! * [`Misr`](crate::Misr) — aliasing probability ≈ `2^−degree`,
//!   independent of the error pattern;
//! * [`OnesCounter`] — counts the ones in the stream; aliases whenever
//!   the numbers of `0→1` and `1→0` bit flips are equal (common for
//!   clustered, polarity-balanced errors);
//! * [`TransitionCounter`] — counts signal transitions; aliases when
//!   errors preserve the transition count.
//!
//! The `compactors` experiment binary measures those aliasing rates on
//! real fault responses.

/// A streaming response compactor with a short signature.
///
/// Implementations are clocked once per shift cycle with the (masked)
/// response bit(s) for that cycle.
pub trait ResponseCompactor {
    /// Consumes one clock's input bits (bit `i` = chain `i`; single
    /// chains use bit 0).
    fn clock(&mut self, inputs: u64);

    /// The current signature.
    fn signature(&self) -> u64;

    /// Resets to the initial state for a new session.
    fn reset(&mut self);
}

impl ResponseCompactor for crate::Misr {
    fn clock(&mut self, inputs: u64) {
        crate::Misr::clock(self, inputs);
    }

    fn signature(&self) -> u64 {
        crate::Misr::signature(self)
    }

    fn reset(&mut self) {
        crate::Misr::reset(self);
    }
}

/// Counts the total number of `1` bits in the stream (syndrome
/// counting).
///
/// # Examples
///
/// ```
/// use scan_bist::compactor::{OnesCounter, ResponseCompactor};
///
/// let mut c = OnesCounter::new();
/// for bits in [1u64, 0, 1, 1] {
///     c.clock(bits);
/// }
/// assert_eq!(c.signature(), 3);
/// ```
#[derive(Clone, Copy, Default, Eq, PartialEq, Hash, Debug)]
pub struct OnesCounter {
    count: u64,
}

impl OnesCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        OnesCounter::default()
    }
}

impl ResponseCompactor for OnesCounter {
    fn clock(&mut self, inputs: u64) {
        self.count += u64::from(inputs.count_ones());
    }

    fn signature(&self) -> u64 {
        self.count
    }

    fn reset(&mut self) {
        self.count = 0;
    }
}

/// Counts `0↔1` transitions of a single-bit stream.
///
/// The first clocked bit establishes the initial level without counting
/// a transition.
#[derive(Clone, Copy, Default, Eq, PartialEq, Hash, Debug)]
pub struct TransitionCounter {
    last: Option<bool>,
    count: u64,
}

impl TransitionCounter {
    /// A fresh counter with no established level.
    #[must_use]
    pub fn new() -> Self {
        TransitionCounter::default()
    }
}

impl ResponseCompactor for TransitionCounter {
    fn clock(&mut self, inputs: u64) {
        let bit = inputs & 1 != 0;
        if let Some(last) = self.last {
            if last != bit {
                self.count += 1;
            }
        }
        self.last = Some(bit);
    }

    fn signature(&self) -> u64 {
        self.count
    }

    fn reset(&mut self) {
        self.last = None;
        self.count = 0;
    }
}

/// Runs a full bit stream through a compactor and returns the
/// signature (convenience for experiments and tests).
pub fn compact_stream<C, I>(compactor: &mut C, stream: I) -> u64
where
    C: ResponseCompactor,
    I: IntoIterator<Item = bool>,
{
    compactor.reset();
    for bit in stream {
        compactor.clock(u64::from(bit));
    }
    compactor.signature()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Misr;

    #[test]
    fn ones_counter_counts() {
        let mut c = OnesCounter::new();
        let sig = compact_stream(&mut c, [true, false, true, true, false]);
        assert_eq!(sig, 3);
        c.reset();
        assert_eq!(c.signature(), 0);
    }

    #[test]
    fn ones_counter_aliases_on_balanced_flips() {
        // Golden 10, faulty 01: one 1→0 and one 0→1 flip — identical
        // ones counts, undetected.
        let mut c = OnesCounter::new();
        let golden = compact_stream(&mut c, [true, false]);
        let faulty = compact_stream(&mut c, [false, true]);
        assert_eq!(golden, faulty);
        // A MISR distinguishes them.
        let mut m = Misr::new(8).unwrap();
        let g = compact_stream(&mut m, [true, false]);
        let f = compact_stream(&mut m, [false, true]);
        assert_ne!(g, f);
    }

    #[test]
    fn transition_counter_counts_edges() {
        let mut c = TransitionCounter::new();
        let sig = compact_stream(&mut c, [false, true, true, false, true]);
        assert_eq!(sig, 3);
    }

    #[test]
    fn transition_counter_aliases_on_inverted_pulse() {
        // 0110 vs 1001: two transitions each — indistinguishable.
        let mut c = TransitionCounter::new();
        let a = compact_stream(&mut c, [false, true, true, false]);
        let b = compact_stream(&mut c, [true, false, false, true]);
        assert_eq!(a, b);
    }

    #[test]
    fn misr_through_trait_object() {
        // The trait is object-safe: heterogeneous compactor banks work.
        let mut bank: Vec<Box<dyn ResponseCompactor>> = vec![
            Box::new(Misr::new(16).unwrap()),
            Box::new(OnesCounter::new()),
            Box::new(TransitionCounter::new()),
        ];
        for compactor in &mut bank {
            for bit in [true, false, true] {
                compactor.clock(u64::from(bit));
            }
            let _ = compactor.signature();
        }
    }

    #[test]
    fn first_bit_sets_level_without_transition() {
        let mut c = TransitionCounter::new();
        c.clock(1);
        assert_eq!(c.signature(), 0);
        c.clock(0);
        assert_eq!(c.signature(), 1);
    }
}
