//! Scan-BIST building blocks: LFSRs, MISRs, pseudo-random pattern
//! generation, scan chain partitioning schemes, and the scan cell
//! selection hardware of the DATE 2003 partition-based diagnosis paper.
//!
//! The crate is purely computational, depending only on the vendored
//! `scan-obs` instrumentation facade; circuit simulation lives in
//! `scan-sim`, and the diagnosis engine combining the two lives in
//! `scan-diagnosis`.
//!
//! # Overview
//!
//! * [`Lfsr`] — Galois LFSRs with a tabulated primitive polynomial per
//!   degree 2..=32.
//! * [`Misr`] / [`MisrModel`] — bit-true signature registers plus the
//!   linear superposition model used to compute error signatures from
//!   sparse error bits.
//! * [`WordMisr`] — the fused word-level register advancing up to 64
//!   clocks per step, for packed scan-out streams from the PPSFP
//!   simulator.
//! * [`Prpg`] — LFSR-based stimulus generation.
//! * [`partition`] — random-selection, interval-based, fixed-interval,
//!   and two-step partition generation.
//! * [`selection`] — cycle-level emulation of the paper's Fig. 1
//!   selection hardware, cross-validated against [`partition`].
//! * [`seed`] — the covering-seed search for interval partitions.
//!
//! # Examples
//!
//! ```
//! use scan_bist::partition::{generate_partitions, PartitionConfig, Scheme};
//!
//! let config = PartitionConfig::new(52, 4);
//! let parts = generate_partitions(&config, Scheme::TWO_STEP_DEFAULT, 4);
//! assert_eq!(parts.len(), 4);
//! assert!(parts[0].is_interval());
//! ```

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::must_use_candidate, clippy::module_name_repetitions)]
#![allow(clippy::cast_possible_truncation)]

pub mod compactor;
mod error;
mod lfsr;
mod misr;
pub mod overhead;
pub mod partition;
mod prpg;
pub mod seed;
pub mod selection;

pub use error::{BuildLfsrError, FindSeedError};
pub use lfsr::{primitive_poly, Lfsr, PRIMITIVE_POLYS};
pub use misr::{Misr, MisrModel, WordMisr};
pub use partition::{Partition, PartitionConfig, Scheme};
pub use prpg::{Prpg, PRPG_DEGREE};
