//! Multiple-input signature registers (MISRs) and their linear
//! superposition model.
//!
//! A MISR over GF(2) is linear: the final signature is the XOR of the
//! contributions of every injected bit. The contribution of a bit
//! injected at stage `s` during clock `j` of a `T`-clock session is
//! `x^(s + T − 1 − j) mod p(x)`. This lets the diagnosis engine compute
//! *error signatures* (faulty XOR fault-free) directly from the sparse
//! set of error bits, without replaying entire response streams —
//! while [`Misr`] provides the bit-true stepwise register used for
//! cross-validation and hardware emulation.

use crate::error::BuildLfsrError;
use crate::lfsr::primitive_poly;

/// The linear model of a MISR: feedback polynomial and register width.
///
/// # Examples
///
/// ```
/// use scan_bist::{Misr, MisrModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = MisrModel::new(16)?;
/// // Superposition: the signature of a sparse error stream equals the
/// // XOR of per-bit contributions.
/// let sig = model.signature(100, [(3, 0), (97, 0)]);
/// let mut misr = Misr::from_model(model);
/// for clock in 0..100 {
///     let bit = u64::from(clock == 3 || clock == 97);
///     misr.clock(bit);
/// }
/// assert_eq!(misr.signature(), sig);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub struct MisrModel {
    poly: u64,
    degree: u32,
}

impl MisrModel {
    /// Creates a model of the given width using the tabulated primitive
    /// polynomial.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLfsrError::UnsupportedDegree`] for widths outside
    /// `2..=32`.
    pub fn new(degree: u32) -> Result<Self, BuildLfsrError> {
        Ok(MisrModel {
            poly: primitive_poly(degree)?,
            degree,
        })
    }

    /// The feedback polynomial (coefficient bit mask, including the top
    /// term).
    #[must_use]
    pub fn poly(&self) -> u64 {
        self.poly
    }

    /// The register width in bits.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    fn mask(&self) -> u64 {
        (1u64 << self.degree) - 1
    }

    /// Multiplies two polynomials modulo the feedback polynomial
    /// (carry-less multiply + reduction).
    #[must_use]
    pub fn mul_mod(&self, a: u64, b: u64) -> u64 {
        let mut acc = 0u64;
        let mut a = a & self.mask();
        let mut b = b & self.mask();
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            // a := a·x mod p
            let carry = a >> (self.degree - 1) & 1 != 0;
            a = (a << 1) & self.mask();
            if carry {
                a ^= self.poly & self.mask();
            }
        }
        acc
    }

    /// Computes `x^exp mod p(x)` by square-and-multiply.
    #[must_use]
    pub fn x_pow_mod(&self, exp: u64) -> u64 {
        let mut result = 1u64;
        let mut base = 2u64; // the polynomial `x` (degree is always ≥ 2)
        let mut e = exp;
        while e != 0 {
            if e & 1 != 0 {
                result = self.mul_mod(result, base);
            }
            base = self.mul_mod(base, base);
            e >>= 1;
        }
        result
    }

    /// Contribution of a single injected bit to the final signature of a
    /// `total_clocks`-clock session: bit injected at `stage` during clock
    /// `clock` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `clock >= total_clocks` or `stage >= degree`.
    #[must_use]
    pub fn contribution(&self, total_clocks: u64, clock: u64, stage: u32) -> u64 {
        assert!(clock < total_clocks, "clock index beyond session length");
        assert!(stage < self.degree, "injection stage beyond register");
        self.x_pow_mod(u64::from(stage) + (total_clocks - 1 - clock))
    }

    /// Signature of a sparse bit stream by superposition: XOR of the
    /// contributions of every `(clock, stage)` pair with an injected `1`.
    ///
    /// An empty stream yields the zero signature, which is exactly the
    /// *error signature* semantics used in diagnosis: a BIST session's
    /// group passes iff the error signature of its masked error bits is
    /// zero (signature aliasing — a nonempty stream summing to zero — is
    /// faithfully modelled).
    ///
    /// # Panics
    ///
    /// Panics if any pair is out of range (see
    /// [`MisrModel::contribution`]).
    #[must_use]
    pub fn signature<I>(&self, total_clocks: u64, bits: I) -> u64
    where
        I: IntoIterator<Item = (u64, u32)>,
    {
        bits.into_iter()
            .fold(0u64, |acc, (clock, stage)| {
                acc ^ self.contribution(total_clocks, clock, stage)
            })
    }
}

/// A bit-true stepwise MISR.
///
/// Inputs are injected at consecutive stages: bit `i` of the word passed
/// to [`Misr::clock`] is `XORed` into stage `i`. Use one input bit for a
/// single scan chain, or `w` bits for `w` parallel meta scan chains.
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub struct Misr {
    model: MisrModel,
    state: u64,
}

impl Misr {
    /// Creates a zero-initialized MISR of the given width.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLfsrError::UnsupportedDegree`] for widths outside
    /// `2..=32`.
    pub fn new(degree: u32) -> Result<Self, BuildLfsrError> {
        Ok(Misr {
            model: MisrModel::new(degree)?,
            state: 0,
        })
    }

    /// Creates a zero-initialized MISR from an existing model.
    #[must_use]
    pub fn from_model(model: MisrModel) -> Self {
        Misr { model, state: 0 }
    }

    /// The linear model of this register.
    #[must_use]
    pub fn model(&self) -> MisrModel {
        self.model
    }

    /// Advances one clock, injecting `inputs` (bit `i` → stage `i`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has bits at or above the register width.
    pub fn clock(&mut self, inputs: u64) {
        assert_eq!(
            inputs & !self.model.mask(),
            0,
            "input bits beyond register width"
        );
        let carry = self.state >> (self.model.degree - 1) & 1 != 0;
        self.state = (self.state << 1) & self.model.mask();
        if carry {
            self.state ^= self.model.poly & self.model.mask();
        }
        self.state ^= inputs;
    }

    /// The current signature.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets the register to zero for a new session.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

/// A fused word-level MISR for single-chain scan-out compaction.
///
/// Functionally identical to clocking a single-input [`Misr`] bit by
/// bit, but advances up to 64 clocks per [`WordMisr::clock_word`] call
/// using the register's linearity: after `n` clocks with input bits
/// `b_0 .. b_{n−1}` (bit `j` of the packed word is the input of the
/// `j`-th clock, injected at stage 0),
///
/// ```text
/// state' = state · x^n  ⊕  Σ_j b_j · x^(n−1−j)   (mod p(x))
/// ```
///
/// with every needed power of `x` precomputed at construction. This is
/// the compaction half of the PPSFP word-level sweep: the simulator
/// hands over packed 64-pattern words and the signature advances a
/// word at a time instead of a clock at a time.
///
/// # Examples
///
/// ```
/// use scan_bist::{Misr, WordMisr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bitwise = Misr::new(16)?;
/// let mut fused = WordMisr::new(16)?;
/// let stream = 0xDEAD_BEEF_0123_4567u64;
/// for j in 0..50 {
///     bitwise.clock(stream >> j & 1);
/// }
/// fused.clock_word(stream & ((1 << 50) - 1), 50);
/// assert_eq!(bitwise.signature(), fused.signature());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Eq, PartialEq, Hash, Debug)]
pub struct WordMisr {
    model: MisrModel,
    /// `pows[k] = x^k mod p(x)` for `k` in `0..=64`.
    pows: [u64; 65],
    state: u64,
}

impl WordMisr {
    /// Creates a zero-initialized fused MISR of the given width.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLfsrError::UnsupportedDegree`] for widths outside
    /// `2..=32`.
    pub fn new(degree: u32) -> Result<Self, BuildLfsrError> {
        Ok(Self::from_model(MisrModel::new(degree)?))
    }

    /// Creates a zero-initialized fused MISR from an existing model.
    #[must_use]
    pub fn from_model(model: MisrModel) -> Self {
        let mut pows = [0u64; 65];
        for (k, p) in pows.iter_mut().enumerate() {
            *p = model.x_pow_mod(k as u64);
        }
        WordMisr {
            model,
            pows,
            state: 0,
        }
    }

    /// The linear model of this register.
    #[must_use]
    pub fn model(&self) -> MisrModel {
        self.model
    }

    /// Advances `n` clocks (1..=64) in one step: bit `j` of `bits` is
    /// the stage-0 input of the `j`-th of those clocks. Equivalent to
    /// `n` single-bit [`Misr::clock`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `1..=64` or `bits` has lanes at or
    /// beyond `n`.
    pub fn clock_word(&mut self, bits: u64, n: u32) {
        assert!((1..=64).contains(&n), "word advance must clock 1..=64");
        let lane_mask = if n == 64 { !0 } else { (1u64 << n) - 1 };
        assert_eq!(bits & !lane_mask, 0, "input lanes beyond word length");
        let mut acc = self.model.mul_mod(self.state, self.pows[n as usize]);
        let mut rest = bits;
        while rest != 0 {
            let j = rest.trailing_zeros();
            rest &= rest - 1;
            acc ^= self.pows[(n - 1 - j) as usize];
        }
        self.state = acc;
    }

    /// The current signature.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets the register to zero for a new session.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stepwise_signature(model: MisrModel, total: u64, bits: &[(u64, u32)]) -> u64 {
        let mut misr = Misr::from_model(model);
        for clock in 0..total {
            let mut word = 0u64;
            for &(c, s) in bits {
                if c == clock {
                    word ^= 1 << s;
                }
            }
            misr.clock(word);
        }
        misr.signature()
    }

    #[test]
    fn superposition_matches_stepwise_single_input() {
        let model = MisrModel::new(16).unwrap();
        let bits = [(0u64, 0u32), (5, 0), (99, 0), (100, 0)];
        let total = 321;
        assert_eq!(
            model.signature(total, bits.iter().copied()),
            stepwise_signature(model, total, &bits)
        );
    }

    #[test]
    fn superposition_matches_stepwise_multi_input() {
        let model = MisrModel::new(8).unwrap();
        let bits = [(0u64, 3u32), (1, 7), (2, 0), (17, 5), (17, 6), (40, 1)];
        let total = 41;
        assert_eq!(
            model.signature(total, bits.iter().copied()),
            stepwise_signature(model, total, &bits)
        );
    }

    #[test]
    fn superposition_randomized_cross_check() {
        let model = MisrModel::new(12).unwrap();
        // Simple deterministic pseudo-random bit placement.
        let mut x = 0x1234_5678u64;
        let total = 500u64;
        let mut bits = Vec::new();
        for _ in 0..64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            bits.push(((x >> 16) % total, ((x >> 40) % 12) as u32));
        }
        assert_eq!(
            model.signature(total, bits.iter().copied()),
            stepwise_signature(model, total, &bits)
        );
    }

    #[test]
    fn duplicate_bits_cancel() {
        // Injecting the same bit twice XOR-cancels: signature is zero.
        let model = MisrModel::new(16).unwrap();
        let sig = model.signature(10, [(4, 0), (4, 0)]);
        assert_eq!(sig, 0);
    }

    #[test]
    fn empty_stream_zero_signature() {
        let model = MisrModel::new(16).unwrap();
        assert_eq!(model.signature(1000, std::iter::empty()), 0);
    }

    #[test]
    fn x_pow_mod_small_cases() {
        let model = MisrModel::new(4).unwrap(); // p = x^4 + x^3 + 1
        assert_eq!(model.x_pow_mod(0), 1);
        assert_eq!(model.x_pow_mod(1), 2);
        assert_eq!(model.x_pow_mod(3), 8);
        // x^4 ≡ x^3 + 1 (mod x^4 + x^3 + 1)
        assert_eq!(model.x_pow_mod(4), 0b1001);
        // The multiplicative order of x is 15 for a primitive degree-4 p.
        assert_eq!(model.x_pow_mod(15), 1);
    }

    #[test]
    fn mul_mod_is_commutative_and_distributive() {
        let model = MisrModel::new(8).unwrap();
        let (a, b, c) = (0x5A, 0x3C, 0x81);
        assert_eq!(model.mul_mod(a, b), model.mul_mod(b, a));
        assert_eq!(
            model.mul_mod(a, b ^ c),
            model.mul_mod(a, b) ^ model.mul_mod(a, c)
        );
    }

    #[test]
    fn word_misr_matches_bitwise_across_degrees_and_lengths() {
        // Deterministic stream; split into word advances of varying
        // width, including full 64-bit words and ragged tails.
        let mut x = 0x0DA7_E200_3BAD_C0DEu64;
        let mut next = move || {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            x
        };
        for degree in [2u32, 8, 16, 31, 32] {
            let model = MisrModel::new(degree).unwrap();
            let mut bitwise = Misr::from_model(model);
            let mut fused = WordMisr::from_model(model);
            for n in [1u32, 7, 63, 64, 64, 33, 64, 5] {
                let word = if n == 64 { next() } else { next() & ((1 << n) - 1) };
                for j in 0..n {
                    bitwise.clock(word >> j & 1);
                }
                fused.clock_word(word, n);
                assert_eq!(
                    bitwise.signature(),
                    fused.signature(),
                    "degree {degree} after advance of {n}"
                );
            }
        }
    }

    #[test]
    fn word_misr_reset_and_model() {
        let mut fused = WordMisr::new(16).unwrap();
        fused.clock_word(0b1011, 4);
        assert_ne!(fused.signature(), 0);
        fused.reset();
        assert_eq!(fused.signature(), 0);
        assert_eq!(fused.model().degree(), 16);
    }

    #[test]
    #[should_panic(expected = "word advance must clock 1..=64")]
    fn word_misr_rejects_zero_advance() {
        let mut fused = WordMisr::new(16).unwrap();
        fused.clock_word(0, 0);
    }

    #[test]
    #[should_panic(expected = "input lanes beyond word length")]
    fn word_misr_rejects_stray_lanes() {
        let mut fused = WordMisr::new(16).unwrap();
        fused.clock_word(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "input bits beyond register width")]
    fn wide_input_rejected() {
        let mut misr = Misr::new(4).unwrap();
        misr.clock(0x10);
    }

    #[test]
    #[should_panic(expected = "clock index beyond session length")]
    fn late_clock_rejected() {
        let model = MisrModel::new(8).unwrap();
        let _ = model.contribution(10, 10, 0);
    }
}
