//! Pseudo-random pattern generation for scan-BIST sessions.
//!
//! A scan-BIST controller fills the scan chain and the primary inputs
//! with a pseudo-random bit stream each pattern. [`Prpg`] models the
//! classic LFSR-based generator: one maximal-length LFSR whose output
//! bit stream is consumed serially, so a test session is fully
//! determined by `(degree, seed)`.

use crate::error::BuildLfsrError;
use crate::lfsr::Lfsr;

/// An LFSR-based pseudo-random pattern generator.
///
/// # Examples
///
/// ```
/// use scan_bist::Prpg;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut prpg = Prpg::new(0xBEEF)?;
/// let first: Vec<bool> = (0..8).map(|_| prpg.next_bit()).collect();
/// let mut again = Prpg::new(0xBEEF)?;
/// let second: Vec<bool> = (0..8).map(|_| again.next_bit()).collect();
/// assert_eq!(first, second); // same seed, same stream
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct Prpg {
    lfsr: Lfsr,
}

/// Degree of the pattern-generation LFSR.
pub const PRPG_DEGREE: u32 = 32;

impl Prpg {
    /// Creates a generator seeded with `seed` (degree-32 maximal LFSR).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in degree; the `Result` mirrors the
    /// underlying constructor for API uniformity.
    pub fn new(seed: u64) -> Result<Self, BuildLfsrError> {
        let mut lfsr = Lfsr::new(PRPG_DEGREE)?;
        lfsr.load(seed);
        Ok(Prpg { lfsr })
    }

    /// Produces the next stimulus bit.
    pub fn next_bit(&mut self) -> bool {
        self.lfsr.step()
    }

    /// Fills a 64-pattern word: bit `i` of the result is the next bit of
    /// pattern `base + i` for a *bit-parallel* consumer that assigns one
    /// stream per pattern lane.
    ///
    /// Lanes are filled in order, so `fill_word` consumes 64 stream
    /// bits.
    pub fn fill_word(&mut self) -> u64 {
        let mut word = 0u64;
        for lane in 0..64 {
            if self.next_bit() {
                word |= 1 << lane;
            }
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_balanced() {
        let mut prpg = Prpg::new(12345).unwrap();
        let ones: usize = (0..10_000).filter(|_| prpg.next_bit()).count();
        // A maximal LFSR stream is balanced to within a few percent.
        assert!((4_500..=5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn fill_word_consumes_64_bits() {
        let mut a = Prpg::new(7).unwrap();
        let mut b = Prpg::new(7).unwrap();
        let word = a.fill_word();
        for lane in 0..64 {
            assert_eq!(word >> lane & 1 != 0, b.next_bit());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = Prpg::new(1).unwrap();
        let mut b = Prpg::new(2).unwrap();
        let wa: Vec<u64> = (0..4).map(|_| a.fill_word()).collect();
        let wb: Vec<u64> = (0..4).map(|_| b.fill_word()).collect();
        assert_ne!(wa, wb);
    }
}
