//! Galois linear-feedback shift registers over GF(2).

use crate::error::BuildLfsrError;

/// Tabulated primitive feedback polynomials for degrees 2..=32.
///
/// Entry `i` holds the polynomial for degree `i + 2`, encoded as a
/// coefficient bit mask: bit `k` set means the term `x^k` is present
/// (bit `degree` and bit 0 are always set). The tap sets follow the
/// classic maximal-length LFSR tables (Xilinx XAPP052).
pub const PRIMITIVE_POLYS: [u64; 31] = [
    poly(&[2, 1]),
    poly(&[3, 2]),
    poly(&[4, 3]),
    poly(&[5, 3]),
    poly(&[6, 5]),
    poly(&[7, 6]),
    poly(&[8, 6, 5, 4]),
    poly(&[9, 5]),
    poly(&[10, 7]),
    poly(&[11, 9]),
    poly(&[12, 6, 4, 1]),
    poly(&[13, 4, 3, 1]),
    poly(&[14, 5, 3, 1]),
    poly(&[15, 14]),
    poly(&[16, 15, 13, 4]),
    poly(&[17, 14]),
    poly(&[18, 11]),
    poly(&[19, 6, 2, 1]),
    poly(&[20, 17]),
    poly(&[21, 19]),
    poly(&[22, 21]),
    poly(&[23, 18]),
    poly(&[24, 23, 22, 17]),
    poly(&[25, 22]),
    poly(&[26, 6, 2, 1]),
    poly(&[27, 5, 2, 1]),
    poly(&[28, 25]),
    poly(&[29, 27]),
    poly(&[30, 6, 4, 1]),
    poly(&[31, 28]),
    poly(&[32, 22, 2, 1]),
];

const fn poly(taps: &[u32]) -> u64 {
    let mut p = 1u64; // the +1 term
    let mut i = 0;
    while i < taps.len() {
        p |= 1 << taps[i];
        i += 1;
    }
    p
}

/// Returns the tabulated primitive polynomial of the given degree.
///
/// # Errors
///
/// Returns [`BuildLfsrError::UnsupportedDegree`] for degrees outside
/// `2..=32`.
pub fn primitive_poly(degree: u32) -> Result<u64, BuildLfsrError> {
    if (2..=32).contains(&degree) {
        Ok(PRIMITIVE_POLYS[(degree - 2) as usize])
    } else {
        Err(BuildLfsrError::UnsupportedDegree { degree })
    }
}

/// A Galois-form LFSR: the state is a polynomial `S(x)` of degree
/// `< degree`, and each step computes `S := S·x mod p(x)`.
///
/// With a primitive `p(x)` and a nonzero state the sequence of states is
/// maximal (period `2^degree − 1`).
///
/// # Examples
///
/// ```
/// use scan_bist::Lfsr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lfsr = Lfsr::new(4)?;
/// lfsr.load(0b0001);
/// let mut seen = std::collections::HashSet::new();
/// for _ in 0..15 {
///     assert!(seen.insert(lfsr.state()), "maximal LFSR repeats early");
///     lfsr.step();
/// }
/// assert_eq!(lfsr.state(), 0b0001); // full period
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Eq, PartialEq, Hash, Debug)]
pub struct Lfsr {
    poly: u64,
    degree: u32,
    state: u64,
}

impl Lfsr {
    /// Creates an LFSR of the given degree using the tabulated primitive
    /// polynomial, with initial state `1`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLfsrError::UnsupportedDegree`] for degrees outside
    /// `2..=32`.
    pub fn new(degree: u32) -> Result<Self, BuildLfsrError> {
        Ok(Lfsr {
            poly: primitive_poly(degree)?,
            degree,
            state: 1,
        })
    }

    /// Creates an LFSR from an explicit feedback polynomial (bit `k` =
    /// coefficient of `x^k`; the top set bit determines the degree).
    ///
    /// # Errors
    ///
    /// Returns [`BuildLfsrError::InvalidPolynomial`] if the polynomial
    /// has degree 0 or ≥ 64, or lacks the `+1` term (which would make
    /// the recurrence singular).
    pub fn with_poly(poly: u64) -> Result<Self, BuildLfsrError> {
        if poly <= 1 || poly & 1 == 0 {
            return Err(BuildLfsrError::InvalidPolynomial { poly });
        }
        let degree = poly.ilog2();
        if degree == 0 {
            return Err(BuildLfsrError::InvalidPolynomial { poly });
        }
        Ok(Lfsr {
            poly,
            degree,
            state: 1,
        })
    }

    /// The feedback polynomial (coefficient bit mask, including the top
    /// term).
    #[must_use]
    pub fn poly(&self) -> u64 {
        self.poly
    }

    /// The register length in bits.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The current state (low `degree` bits).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Bit mask covering the register (`2^degree − 1`).
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.degree == 64 {
            !0
        } else {
            (1u64 << self.degree) - 1
        }
    }

    /// Loads a seed, masked to the register width. A zero seed is mapped
    /// to `1` (the all-zero state is a fixed point and never useful for
    /// pattern generation).
    pub fn load(&mut self, seed: u64) {
        let s = seed & self.mask();
        self.state = if s == 0 { 1 } else { s };
    }

    /// Advances one step and returns the bit shifted out (the previous
    /// coefficient of `x^(degree−1)`).
    pub fn step(&mut self) -> bool {
        let out = self.state >> (self.degree - 1) & 1 != 0;
        self.state = (self.state << 1) & self.mask();
        if out {
            self.state ^= self.poly & self.mask();
        }
        out
    }

    /// The low `k` bits of the current state, as a small pseudo-random
    /// number. This models reading `k` selected stages of the register.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the degree.
    #[must_use]
    pub fn low_bits(&self, k: u32) -> u64 {
        assert!(k >= 1 && k <= self.degree, "k must be in 1..=degree");
        self.state & ((1u64 << k) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn period(degree: u32) -> u64 {
        let mut l = Lfsr::new(degree).unwrap();
        l.load(1);
        let start = l.state();
        let mut n = 0u64;
        loop {
            l.step();
            n += 1;
            if l.state() == start {
                return n;
            }
            assert!(n < 1 << (degree + 1), "period overflow at degree {degree}");
        }
    }

    #[test]
    fn tabulated_polys_are_maximal_up_to_degree_18() {
        for degree in 2..=18 {
            assert_eq!(
                period(degree),
                (1u64 << degree) - 1,
                "degree {degree} polynomial is not primitive"
            );
        }
    }

    #[test]
    fn degree_16_paper_lfsr_is_maximal() {
        // The paper uses a degree-16 primitive-polynomial LFSR to create
        // partitions; check that specific degree explicitly.
        assert_eq!(period(16), 65535);
    }

    #[test]
    fn zero_seed_coerced() {
        let mut l = Lfsr::new(8).unwrap();
        l.load(0);
        assert_eq!(l.state(), 1);
        l.step();
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn unsupported_degree_rejected() {
        assert!(Lfsr::new(1).is_err());
        assert!(Lfsr::new(33).is_err());
    }

    #[test]
    fn with_poly_checks_shape() {
        assert!(Lfsr::with_poly(0).is_err());
        assert!(Lfsr::with_poly(1).is_err());
        assert!(Lfsr::with_poly(0b110).is_err()); // missing +1 term
        assert!(Lfsr::with_poly(0b111).is_ok()); // x^2 + x + 1
    }

    #[test]
    fn low_bits_window() {
        let mut l = Lfsr::new(16).unwrap();
        l.load(0b1010_1100);
        assert_eq!(l.low_bits(4), 0b1100);
        assert_eq!(l.low_bits(8), 0b1010_1100);
    }

    #[test]
    fn step_matches_polynomial_multiplication() {
        // S·x mod p, computed independently.
        let mut l = Lfsr::new(8).unwrap();
        let p = l.poly();
        l.load(0xB5);
        let mut s = 0xB5u64;
        for _ in 0..100 {
            l.step();
            s <<= 1;
            if s & 0x100 != 0 {
                s ^= p;
            }
            assert_eq!(l.state(), s & 0xFF);
        }
    }
}
