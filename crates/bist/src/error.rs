//! Error types for the scan-BIST building blocks.

use std::error::Error;
use std::fmt;

/// Error returned when constructing an LFSR or MISR.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a
/// wildcard arm so new failure modes can be added without a breaking
/// release.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
#[non_exhaustive]
pub enum BuildLfsrError {
    /// No primitive polynomial is tabulated for the requested degree.
    UnsupportedDegree {
        /// The requested degree.
        degree: u32,
    },
    /// A caller-supplied polynomial was malformed (degree 0, or degree
    /// above 63).
    InvalidPolynomial {
        /// The offending polynomial, as a coefficient bit mask.
        poly: u64,
    },
}

impl fmt::Display for BuildLfsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildLfsrError::UnsupportedDegree { degree } => {
                write!(f, "no tabulated primitive polynomial of degree {degree}")
            }
            BuildLfsrError::InvalidPolynomial { poly } => {
                write!(f, "invalid feedback polynomial {poly:#x}")
            }
        }
    }
}

impl Error for BuildLfsrError {}

/// Error returned when an interval-cover seed cannot be found.
#[derive(Clone, Copy, Eq, PartialEq, Debug)]
pub struct FindSeedError {
    /// Scan chain length the search was run for.
    pub chain_len: usize,
    /// Number of groups requested.
    pub groups: u16,
    /// Number of candidate seeds examined.
    pub examined: u64,
}

impl fmt::Display for FindSeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no interval seed covers a chain of {} cells with {} groups after {} candidates",
            self.chain_len, self.groups, self.examined
        )
    }
}

impl Error for FindSeedError {}
