//! Pinned-stream regression tests for the fused word-level MISR.
//!
//! `WordMisr` must be bit-true to clocking the per-bit `Misr` once per
//! stream bit — the checked-in campaign results depend on the exact
//! signatures. These tests feed the canonical PRPG stream (seed
//! `0xACE1`, the workspace's default) through both registers at stream
//! lengths that exercise every word shape — a single bit, one lane
//! short of a word, exactly one word, a ragged tail, and multi-word
//! runs — and pin the literal signatures so any drift in the
//! polynomial tables, the `x^n` power ladder, or the injection order
//! fails loudly.

use scan_bist::{Misr, Prpg, WordMisr};

const STREAM_SEED: u64 = 0xACE1;

/// Stream lengths deliberately not multiples of 64 (plus the exact
/// word boundaries as controls).
const LENGTHS: [usize; 7] = [1, 63, 64, 65, 100, 129, 1000];

fn bit_serial_signature(degree: u32, len: usize) -> u64 {
    let mut misr = Misr::new(degree).expect("degree supported");
    let mut prpg = Prpg::new(STREAM_SEED).expect("PRPG seed accepted");
    for _ in 0..len {
        misr.clock(u64::from(prpg.next_bit()));
    }
    misr.signature()
}

fn fused_signature(degree: u32, len: usize) -> u64 {
    let mut misr = WordMisr::new(degree).expect("degree supported");
    let mut prpg = Prpg::new(STREAM_SEED).expect("PRPG seed accepted");
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(64) as u32;
        let mut word = 0u64;
        for lane in 0..n {
            word |= u64::from(prpg.next_bit()) << lane;
        }
        misr.clock_word(word, n);
        remaining -= n as usize;
    }
    misr.signature()
}

#[test]
fn fused_matches_bit_serial_at_ragged_lengths() {
    for degree in [8u32, 16, 31, 32] {
        for len in LENGTHS {
            assert_eq!(
                fused_signature(degree, len),
                bit_serial_signature(degree, len),
                "degree {degree}, {len} bits"
            );
        }
    }
}

#[test]
fn degree16_signatures_are_pinned() {
    for (len, expected) in LENGTHS.iter().copied().zip(PINS_D16) {
        assert_eq!(
            fused_signature(16, len),
            expected,
            "fused signature moved at {len} bits"
        );
        assert_eq!(
            bit_serial_signature(16, len),
            expected,
            "bit-serial signature moved at {len} bits"
        );
    }
}

#[test]
fn degree32_signatures_are_pinned() {
    for (len, expected) in LENGTHS.iter().copied().zip(PINS_D32) {
        assert_eq!(
            fused_signature(32, len),
            expected,
            "fused signature moved at {len} bits"
        );
        assert_eq!(
            bit_serial_signature(32, len),
            expected,
            "bit-serial signature moved at {len} bits"
        );
    }
}

const PINS_D16: [u64; 7] = [
    0x0000, 0xB621, 0xCC52, 0x38B4, 0xF7D8, 0x4E15, 0xD21F,
];
const PINS_D32: [u64; 7] = [
    0x0000_0000,
    0x8546_5197,
    0x0ACC_A328,
    0x1599_4651,
    0x1025_FE27,
    0x59D4_74BE,
    0x6CE2_DD16,
];

#[test]
#[ignore = "pin generator: run with --ignored --nocapture to regenerate the tables"]
fn print_pins() {
    for degree in [16u32, 32] {
        let sigs: Vec<String> = LENGTHS
            .iter()
            .map(|&len| format!("0x{:04X}", bit_serial_signature(degree, len)))
            .collect();
        // lint:allow(L006): the regenerated pin table is this helper's payload
        println!("const PINS_D{degree}: [u64; 7] = [{}];", sigs.join(", "));
    }
}
