//! Umbrella crate for the scan-BIST failing-cell diagnosis workspace —
//! a reproduction of *Liu & Chakrabarty, "A Partition-Based Approach
//! for Identifying Failing Scan Cells in Scan-BIST with Applications to
//! System-on-Chip Fault Diagnosis"* (DATE 2003).
//!
//! Re-exports the workspace crates under one roof and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). For the library itself see:
//!
//! * [`netlist`] — circuits, `.bench` parsing, synthetic benchmarks;
//! * [`sim`] — logic & stuck-at fault simulation;
//! * [`bist`] — LFSRs, MISRs, partitioning schemes, selection hardware;
//! * [`diagnosis`] — the partition-based diagnosis engine (the paper's
//!   contribution);
//! * [`soc`] — TestRail meta scan chains and the two paper SOCs.
//!
//! # Examples
//!
//! ```
//! use scan_bist_suite::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = scan_bist_suite::netlist::bench::s27();
//! let mut spec = CampaignSpec::new(32, 2, 2);
//! spec.num_faults = 5;
//! let campaign = PreparedCampaign::from_circuit(&circuit, &spec)?;
//! let report = campaign.run(Scheme::TWO_STEP_DEFAULT)?;
//! assert!(report.faults > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use scan_atpg as atpg;
pub use scan_bist as bist;
pub use scan_diagnosis as diagnosis;
pub use scan_netlist as netlist;
pub use scan_sim as sim;
pub use scan_soc as soc;

/// The most commonly used types, for glob import in examples and quick
/// experiments.
pub mod prelude {
    pub use scan_bist::{Lfsr, Misr, MisrModel, Partition, PartitionConfig, Prpg, Scheme};
    pub use scan_diagnosis::{
        diagnose, diagnose_checked, prune_by_cover, BistConfig, CampaignSpec, ChainLayout,
        DiagnosisPlan, DrAccumulator, PreparedCampaign, ResponseModel, SchemeReport,
    };
    pub use scan_netlist::{GateKind, Netlist, NetlistBuilder, ScanOrdering, ScanView};
    pub use scan_sim::{EventFaultSimulator, Fault, FaultSimulator, FaultUniverse, PatternSet};
    pub use scan_soc::{CoreModule, Soc, SocDescriptor};
}
