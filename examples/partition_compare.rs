//! Compare the paper's partitioning schemes on one circuit: diagnostic
//! resolution as the number of partitions grows, for interval-based,
//! random-selection, fixed-interval, and two-step partitioning.
//!
//! ```sh
//! cargo run --release --example partition_compare [circuit] [faults]
//! ```
//!
//! `circuit` defaults to `s5378`; any ISCAS-89 name works.

use scan_bist_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "s5378".to_owned());
    let faults: usize = args.next().map_or(Ok(200), |s| s.parse())?;

    let circuit = scan_bist_suite::netlist::generate::benchmark(&name);
    let mut spec = CampaignSpec::new(128, 8, 8);
    spec.num_faults = faults;
    println!(
        "{name}: {} cells under diagnosis, {} faults, 8 groups, up to 8 partitions",
        ScanView::natural(&circuit, true).len(),
        faults
    );
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec)?;

    let schemes = [
        Scheme::IntervalBased,
        Scheme::RandomSelection,
        Scheme::FixedInterval,
        Scheme::TWO_STEP_DEFAULT,
    ];
    let reports: Vec<SchemeReport> = schemes
        .iter()
        .map(|&s| campaign.run(s))
        .collect::<Result<_, _>>()?;

    println!();
    println!(
        "{:<11} {:>14} {:>17} {:>15} {:>10}",
        "partitions", "interval-based", "random-selection", "fixed-interval", "two-step"
    );
    for k in 0..spec.partitions {
        println!(
            "{:<11} {:>14.3} {:>17.3} {:>15.3} {:>10.3}",
            k + 1,
            reports[0].dr_by_prefix[k],
            reports[1].dr_by_prefix[k],
            reports[2].dr_by_prefix[k],
            reports[3].dr_by_prefix[k],
        );
    }
    println!();
    println!(
        "with pruning after 8 partitions: random {:.3}, two-step {:.3}",
        reports[1].dr_pruned, reports[3].dr_pruned
    );
    Ok(())
}
