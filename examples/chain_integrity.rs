//! Scan chain integrity checking: the step that comes *before* logic
//! diagnosis. A stuck shift stage floods the response with constants;
//! flush tests localize it exactly, after which logic diagnosis can be
//! trusted.
//!
//! ```sh
//! cargo run --release --example chain_integrity
//! ```

use scan_bist_suite::prelude::*;
use scan_bist_suite::sim::chain_fault::flush_observation;
use scan_bist_suite::sim::{locate_chain_fault, simulate_chain_fault, ChainFault};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = scan_bist_suite::netlist::generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let chain_cells = view.num_cells();
    println!("{}: scan chain of {chain_cells} cells", circuit.name());

    // A manufacturing defect breaks the shift path at cell 11.
    let defect = ChainFault {
        position: 11,
        stuck: true,
    };

    // Step 1: flush tests (no capture) — the standard chain integrity
    // check run before any logic test.
    let zeros = flush_observation(chain_cells, Some(&defect), false);
    let ones = flush_observation(chain_cells, Some(&defect), true);
    match locate_chain_fault(&zeros, &ones) {
        Some(found) => {
            println!(
                "flush test: chain defect at position {} stuck-at-{} — located exactly: {}",
                found.position,
                u8::from(found.stuck),
                found == defect
            );
            assert_eq!(found, defect);
        }
        None => println!("flush test: chain healthy"),
    }

    // Step 2: what the BIST session would have observed through the
    // broken chain — and why logic diagnosis must not run on it.
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, 64, 0xACE1);
    let observed = simulate_chain_fault(&circuit, &view, &patterns, &defect)?;
    let fsim = FaultSimulator::new(&circuit, &view, &patterns)?;
    let flooded = observed.xor(fsim.golden()).failing_positions().len();
    println!(
        "uncaught, the defect would look like {flooded} failing positions of {} — \
         far beyond any single logic fault",
        view.len()
    );

    // Step 3: with the chain repaired (or the defect known), logic
    // diagnosis proceeds normally.
    let fault = fsim.sample_detected_faults(1, 7)[0];
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        64,
        &BistConfig::new(4, 4, Scheme::TWO_STEP_DEFAULT),
    )?;
    let errors = fsim.error_map(&fault);
    let diag = diagnose_checked(&plan, &plan.analyze(errors.iter_bits()))?;
    println!(
        "healthy chain: logic fault {} narrows to {} candidate cells",
        fault.describe(&circuit),
        diag.num_candidates()
    );
    Ok(())
}
