//! Bring your own circuit: define a netlist in ISCAS-89 `.bench` text
//! (or with [`NetlistBuilder`]), pick your own BIST configuration, and
//! diagnose an injected defect — everything a downstream user needs to
//! apply the library outside the benchmark suite.
//!
//! ```sh
//! cargo run --release --example custom_circuit
//! ```

use scan_bist_suite::prelude::*;

/// A small synchronous accumulator-and-flags design, written directly
/// in `.bench` syntax.
const MY_DESIGN: &str = "
# acc4: 4-bit accumulator with zero flag
INPUT(in0)
INPUT(in1)
INPUT(en)
OUTPUT(zero)

r0 = DFF(n0)
r1 = DFF(n1)
r2 = DFF(n2)
r3 = DFF(n3)

s0  = XOR(r0, in0)
c0  = AND(r0, in0)
s1  = XOR(r1, in1, c0)
t1  = AND(r1, in1)
t2  = AND(r1, c0)
t3  = AND(in1, c0)
c1a = OR(t1, t2)
c1  = OR(c1a, t3)
s2  = XOR(r2, c1)
c2  = AND(r2, c1)
s3  = XOR(r3, c2)

n0 = AND(s0, en)
n1 = AND(s1, en)
n2 = AND(s2, en)
n3 = AND(s3, en)

nz0 = NOR(r0, r1)
nz1 = NOR(r2, r3)
zero = AND(nz0, nz1)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = Netlist::from_bench("acc4", MY_DESIGN)?;
    println!(
        "parsed `{}`: {} gates, {} flip-flops, depth {}",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_dffs(),
        circuit.depth()
    );

    // Custom BIST setup: 32 patterns, 2 groups, 4 partitions, and a
    // wider 24-bit MISR.
    let view = ScanView::natural(&circuit, true);
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, 32, 7);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns)?;

    let mut config = BistConfig::new(2, 4, Scheme::TWO_STEP_DEFAULT);
    config.misr_degree = 24;
    let plan = DiagnosisPlan::new(ChainLayout::single_chain(view.len()), 32, &config)?;

    // Diagnose every detected collapsed fault and report resolution.
    let mut acc = DrAccumulator::new();
    for fault in FaultUniverse::collapsed(&circuit).faults() {
        let errors = fsim.error_map(fault);
        if !errors.is_detected() {
            continue;
        }
        let outcome = plan.analyze(errors.iter_bits());
        let diag = diagnose_checked(&plan, &outcome)?;
        acc.add(diag.num_candidates(), errors.failing_positions().len());
    }
    println!("diagnosed {} detected faults: {acc}", acc.num_faults());
    Ok(())
}
