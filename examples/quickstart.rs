//! Quickstart: parse a `.bench` netlist, inject a stuck-at fault, and
//! identify the failing scan cells with two-step partitioning.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scan_bist_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A circuit: the real ISCAS-89 s27 netlist, full-scan.
    let circuit = scan_bist_suite::netlist::bench::s27();
    let view = ScanView::natural(&circuit, true);
    println!(
        "{}: {} gates, {} scan cells (+{} POs observed)",
        circuit.name(),
        circuit.num_gates(),
        circuit.num_dffs(),
        circuit.num_outputs()
    );

    // 2. A BIST session: 64 pseudo-random patterns from the LFSR PRPG.
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, 64, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns)?;

    // 3. Inject a fault the tester doesn't know about.
    let net = circuit.find_net("G10").expect("net exists");
    let fault = Fault::stem(net, true);
    let errors = fsim.error_map(&fault);
    let truth: Vec<usize> = errors.failing_positions().iter().collect();
    println!("injected {}: true failing cells {truth:?}", fault.describe(&circuit));

    // 4. Diagnose from signatures only: 2 groups per partition, 3
    //    partitions, two-step scheme.
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        64,
        &BistConfig::new(2, 3, Scheme::TWO_STEP_DEFAULT),
    )?;
    let outcome = plan.analyze(errors.iter_bits());
    let diag = diagnose_checked(&plan, &outcome)?;
    let suspects: Vec<usize> = diag.candidates().iter().collect();
    println!("diagnosed candidate failing cells: {suspects:?}");

    // 5. The candidates always contain the truth (no false negatives
    //    without signature aliasing).
    for cell in &truth {
        assert!(diag.candidates().contains(*cell));
    }
    println!("all true failing cells are in the candidate set ✓");
    Ok(())
}
