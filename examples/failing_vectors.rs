//! Time-domain diagnosis: identify the failing test *vectors* (which
//! patterns exposed the defect) from the same BIST signatures used for
//! failing-cell identification — the companion scheme of the paper's
//! reference [4].
//!
//! ```sh
//! cargo run --release --example failing_vectors
//! ```

use scan_bist_suite::diagnosis::vector_diag::{actual_failing_vectors, VectorDiagnosisPlan};
use scan_bist_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = scan_bist_suite::netlist::generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 128usize;
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns)?;

    // One fault; which patterns exposed it?
    let fault = fsim.sample_detected_faults(1, 2003)[0];
    let errors = fsim.error_map(&fault);
    let bits: Vec<(usize, usize)> = errors.iter_bits().collect();
    let actual = actual_failing_vectors(num_patterns, bits.iter().copied());
    println!(
        "fault {}: {} of {num_patterns} patterns actually failed",
        fault.describe(&circuit),
        actual.len()
    );

    // Diagnose from pattern-axis sessions: 8 pattern-groups, 4
    // partitions, two-step.
    let model = ResponseModel::new(ChainLayout::single_chain(view.len()), num_patterns, 16)?;
    let plan = VectorDiagnosisPlan::new(model, 8, 4, Scheme::TWO_STEP_DEFAULT, 16, 1)?;
    let outcome = plan.analyze(bits.iter().copied());
    let candidates = plan.diagnose(&outcome);
    println!(
        "diagnosed {} candidate failing vectors: {:?}",
        candidates.len(),
        candidates.iter().take(16).collect::<Vec<_>>()
    );
    assert!(actual.is_subset(&candidates), "no false negatives");
    println!("every actually-failing vector is among the candidates ✓");
    Ok(())
}
