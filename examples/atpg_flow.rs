//! A small DFT flow: measure pseudorandom BIST coverage, prove the
//! leftover faults redundant or top them off with PODEM cubes, and
//! export the circuit to structural Verilog for inspection.
//!
//! ```sh
//! cargo run --release --example atpg_flow [circuit]
//! ```

use scan_atpg::{run_atpg, Podem, PodemLimits, PodemResult};
use scan_bist_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s953".to_owned());
    let circuit = scan_bist_suite::netlist::generate::benchmark(&name);
    let view = ScanView::natural(&circuit, true);
    println!(
        "{name}: {} gates, {} FFs, depth {}",
        circuit.num_gates(),
        circuit.num_dffs(),
        circuit.depth()
    );

    // 1. Pseudorandom BIST session.
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, 128, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns)?;
    let universe = FaultUniverse::collapsed(&circuit);
    let missed: Vec<Fault> = universe
        .faults()
        .iter()
        .filter(|f| !fsim.is_detected(f))
        .copied()
        .collect();
    println!(
        "128 pseudorandom patterns detect {}/{} collapsed faults",
        universe.len() - missed.len(),
        universe.len()
    );

    // 2. Resolve the leftovers deterministically.
    let mut podem = Podem::new(&circuit);
    let (mut cubes, mut redundant, mut aborted) = (0usize, 0usize, 0usize);
    for fault in &missed {
        match podem.generate(fault, &PodemLimits::default()) {
            PodemResult::Test(_) => cubes += 1,
            PodemResult::Untestable => redundant += 1,
            PodemResult::Aborted => aborted += 1,
        }
    }
    println!("top-off: {cubes} deterministic cubes, {redundant} proven redundant, {aborted} aborted");

    // 3. Full standalone ATPG for comparison.
    let atpg = run_atpg(&circuit, &PodemLimits::default(), 1);
    println!(
        "pure ATPG: {} patterns, coverage {:.1}%, efficiency {:.1}%",
        atpg.patterns.len(),
        atpg.coverage() * 100.0,
        atpg.efficiency() * 100.0
    );

    // 4. Export for external tools.
    let verilog = scan_bist_suite::netlist::verilog::to_verilog(&circuit);
    let path = std::env::temp_dir().join(format!("{name}.v"));
    std::fs::write(&path, verilog)?;
    println!("wrote structural Verilog to {}", path.display());
    Ok(())
}
