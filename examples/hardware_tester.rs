//! Run the diagnosis the way the silicon does: drive the Fig. 1
//! selection hardware and a stepwise MISR through every BIST session
//! with `VirtualTester`, and confirm the fast superposition engine
//! reaches the identical verdicts and candidates.
//!
//! ```sh
//! cargo run --release --example hardware_tester
//! ```

use scan_bist_suite::diagnosis::tester::VirtualTester;
use scan_bist_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = scan_bist_suite::netlist::generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 32usize;
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let config = BistConfig::new(4, 3, Scheme::TWO_STEP_DEFAULT);

    let fsim = FaultSimulator::new(&circuit, &view, &patterns)?;
    let fault = fsim.sample_detected_faults(1, 42)[0];
    println!(
        "injecting {} into {} ({} cells under diagnosis)",
        fault.describe(&circuit),
        circuit.name(),
        view.len()
    );

    // Hardware path: cycle-accurate selection logic + stepwise MISR.
    let tester = VirtualTester::new(&circuit, &view, &patterns, config)?;
    let hw = tester.diagnose(&fault);
    println!(
        "hardware path: {} sessions, {} candidates",
        hw.sessions,
        hw.candidates.len()
    );

    // Fast path: linear superposition over the sparse error map.
    let plan = DiagnosisPlan::new(ChainLayout::single_chain(view.len()), num_patterns, &config)?;
    let outcome = plan.analyze(fsim.error_map(&fault).iter_bits());
    let engine = diagnose_checked(&plan, &outcome)?;
    println!("fast engine:  {} candidates", engine.num_candidates());

    assert_eq!(&hw.candidates, engine.candidates());
    println!("both paths agree bit-for-bit ✓");
    Ok(())
}
