//! SOC-level diagnosis: build the paper's SOC 2 (a d695 variant on an
//! 8-bit TAM with 8 balanced meta scan chains), assume one embedded
//! core is hit by a spot defect, and locate the failing scan cells on
//! the meta chains.
//!
//! ```sh
//! cargo run --release --example soc_diagnosis [core] [faults]
//! ```
//!
//! `core` defaults to `s9234`.

use scan_bist_suite::prelude::*;
use scan_bist_suite::soc::d695;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let core_name = args.next().unwrap_or_else(|| "s9234".to_owned());
    let faults: usize = args.next().map_or(Ok(100), |s| s.parse())?;

    let soc = d695::soc2()?;
    println!(
        "SOC `{}`: {} cores, {} meta chains (longest {} cells), {} positions total",
        soc.name(),
        soc.cores().len(),
        soc.num_chains(),
        soc.max_chain_len(),
        soc.total_positions()
    );
    let core_index = soc
        .core_index(&core_name)
        .ok_or_else(|| format!("no core named {core_name}"))?;

    let mut spec = CampaignSpec::new(128, 8, 8);
    spec.num_faults = faults;
    let campaign = PreparedCampaign::from_soc(&soc, core_index, &spec)?;
    println!(
        "injected {} detected stuck-at faults into {core_name}",
        campaign.num_faults()
    );

    let random = campaign.run(Scheme::RandomSelection)?;
    let two_step = campaign.run(Scheme::TWO_STEP_DEFAULT)?;

    println!();
    println!("scheme            DR       DR(pruned)  mean candidates");
    for r in [&random, &two_step] {
        println!(
            "{:<16} {:>8.3} {:>11.3} {:>16.1}",
            r.scheme.name(),
            r.dr,
            r.dr_pruned,
            r.mean_candidates
        );
    }
    println!();
    println!(
        "two-step needs {} partition(s) for DR ≤ 0.5; random-selection needs {}",
        fmt_needed(two_step.partitions_to_reach(0.5)),
        fmt_needed(random.partitions_to_reach(0.5)),
    );
    Ok(())
}

fn fmt_needed(n: Option<usize>) -> String {
    n.map_or_else(|| "more than 8".to_owned(), |v| v.to_string())
}
