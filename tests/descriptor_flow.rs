//! Integration: descriptor-driven SOC flows — from `.soc` text through
//! campaign, localization, and chain-masked diagnosis.

use scan_bist_suite::diagnosis::chain_mask::{analyze_chain_masked, diagnose_chain_masked};
use scan_bist_suite::prelude::*;

const TRIO_SOC: &str = "
# three small cores on a 2-bit TAM
soc trio
tam 2
core s298
core s344
core s386
";

#[test]
fn descriptor_to_localization() {
    let descriptor = SocDescriptor::parse(TRIO_SOC).expect("descriptor parses");
    assert_eq!(descriptor.tam_width, 2);
    let soc = descriptor.build().expect("SOC builds");
    assert_eq!(soc.num_chains(), 2);

    let mut spec = CampaignSpec::new(64, 4, 5);
    spec.num_faults = 25;
    for faulty in 0..soc.cores().len() {
        let campaign = PreparedCampaign::from_soc(&soc, faulty, &spec).expect("campaign prepares");
        let report = campaign
            .run_localization(Scheme::TWO_STEP_DEFAULT)
            .expect("localization runs");
        assert!(
            report.top1_accuracy >= 0.6,
            "core {faulty}: accuracy {}",
            report.top1_accuracy
        );
    }
}

#[test]
fn chain_masking_beats_baseline_on_multi_chain_soc() {
    let soc = SocDescriptor::parse(TRIO_SOC)
        .unwrap()
        .build()
        .expect("SOC builds");
    let layout = ChainLayout::from_soc(&soc);
    let plan = DiagnosisPlan::new(
        layout,
        64,
        &BistConfig::new(4, 5, Scheme::TWO_STEP_DEFAULT),
    )
    .expect("plan builds");

    // Evidence from one fault in core 1.
    let core = &soc.cores()[1];
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(core.netlist(), 64, 7);
    let fsim = FaultSimulator::new(core.netlist(), core.view(), &patterns).expect("shapes");
    let fault = fsim.sample_detected_faults(1, 3)[0];
    let mut local_to_global = vec![usize::MAX; core.view().len()];
    for (global, (cell, _, _)) in soc.layout().into_iter().enumerate() {
        if cell.core == 1 {
            local_to_global[cell.local as usize] = global;
        }
    }
    let bits: Vec<(usize, usize)> = fsim
        .error_map(&fault)
        .iter_bits()
        .map(|(pos, pat)| (local_to_global[pos], pat))
        .collect();

    let baseline = scan_bist_suite::diagnosis::diagnose_checked(&plan, &plan.analyze(bits.iter().copied()))
        .expect("injected chain fault yields a consistent failing history");
    let masked = diagnose_chain_masked(&plan, &analyze_chain_masked(&plan, bits.iter().copied()));
    assert!(masked.is_subset(baseline.candidates()));
    for &(cell, _) in &bits {
        assert!(masked.contains(cell), "lost error cell {cell}");
    }
}

#[test]
fn descriptor_errors_are_reported() {
    assert!(SocDescriptor::parse("tam 4\ncore s27\n").is_err()); // missing soc name
    assert!(SocDescriptor::parse("soc x\ncore mystery9000\n").is_err());
}
