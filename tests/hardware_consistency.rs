//! Integration tests proving the three layers of BIST modelling agree:
//! the cycle-level selection hardware (Fig. 1), the algebraic partition
//! derivation, and the linear-superposition signature analysis.

use scan_bist_suite::prelude::*;
use scan_bist_suite::bist::selection::{SelectionHardware, SelectionMode};
use scan_bist_suite::bist::seed::find_interval_seed;
use scan_bist_suite::netlist::generate;

#[test]
fn hardware_masks_reproduce_two_step_partitions() {
    // Build a two-step plan, then replay the Fig. 1 hardware for each
    // partition and check every session mask matches the plan's groups.
    let chain_len = 228; // s5378 view
    let groups = 8u16;
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(chain_len),
        16,
        &BistConfig::new(groups, 4, Scheme::TWO_STEP_DEFAULT),
    )
    .unwrap();
    let partitions = plan.partitions();

    // Partition 0: interval mode with the covering seed the plan found.
    let found = find_interval_seed(chain_len, groups, 16, 0).expect("cover exists");
    let mut hw = SelectionHardware::new(
        Lfsr::new(16).unwrap(),
        found.seed,
        groups,
        SelectionMode::Interval {
            k_bits: found.k_bits,
        },
    );
    for g in 0..groups {
        let mask = hw.session_mask(g, chain_len);
        for (pos, &selected) in mask.iter().enumerate() {
            assert_eq!(
                selected,
                partitions[0].group_of(pos) == g,
                "interval partition, group {g}, position {pos}"
            );
        }
    }

    // Partitions 1..: random-selection mode chained through the IVR.
    let mut hw = SelectionHardware::new(
        Lfsr::new(16).unwrap(),
        1,
        groups,
        SelectionMode::RandomSelection,
    );
    for partition in &partitions[1..] {
        for g in 0..groups {
            let mask = hw.session_mask(g, chain_len);
            for (pos, &selected) in mask.iter().enumerate() {
                assert_eq!(
                    selected,
                    partition.group_of(pos) == g,
                    "random partition, group {g}, position {pos}"
                );
            }
        }
        hw.finish_partition(chain_len);
    }
}

#[test]
fn superposition_analysis_matches_full_misr_replay() {
    // Diagnose a real fault two ways: (a) the plan's superposition
    // analysis of the sparse error map, (b) a bit-true replay of every
    // BIST session through a stepwise MISR on the full golden/faulty
    // response streams. Verdicts must agree exactly.
    let circuit = generate::benchmark("s953");
    let view = ScanView::natural(&circuit, true);
    let num_patterns = 40usize;
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, num_patterns, 0xACE1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).unwrap();
    let faults = fsim.sample_detected_faults(5, 1);
    let plan = DiagnosisPlan::new(
        ChainLayout::single_chain(view.len()),
        num_patterns,
        &BistConfig::new(4, 3, Scheme::TWO_STEP_DEFAULT),
    )
    .unwrap();

    for fault in &faults {
        let golden = fsim.golden();
        let faulty = fsim.response(fault);
        let errors = faulty.xor(golden);
        let outcome = plan.analyze(errors.iter_bits());

        for (p, partition) in plan.partitions().iter().enumerate() {
            for g in 0..partition.num_groups() {
                let mut misr_golden = Misr::from_model(plan.misr());
                let mut misr_faulty = Misr::from_model(plan.misr());
                for t in 0..num_patterns {
                    for pos in 0..view.len() {
                        let selected = partition.group_of(pos) == g;
                        let gb = golden.bit(pos, t) && selected;
                        let fb = faulty.bit(pos, t) && selected;
                        misr_golden.clock(u64::from(gb));
                        misr_faulty.clock(u64::from(fb));
                    }
                }
                let hw_failed = misr_golden.signature() != misr_faulty.signature();
                assert_eq!(
                    outcome.failed(p, g),
                    hw_failed,
                    "fault {}, partition {p}, group {g}",
                    fault.describe(&circuit)
                );
            }
        }
    }
}

#[test]
fn prpg_stream_reproducibility_across_layers() {
    // The pattern set consumed by the simulator equals the raw PRPG
    // stream in scan-application order.
    let circuit = generate::benchmark("s298");
    let n = 10usize;
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, n, 42);
    let mut prpg = Prpg::new(42).unwrap();
    for p in 0..n {
        for ff in 0..circuit.num_dffs() {
            assert_eq!(patterns.state_bit(ff, p), prpg.next_bit(), "ff {ff} pat {p}");
        }
        for pi in 0..circuit.num_inputs() {
            assert_eq!(patterns.pi_bit(pi, p), prpg.next_bit(), "pi {pi} pat {p}");
        }
    }
}
