//! Serial and parallel diagnosis campaigns over the same injected
//! fault set must produce identical per-fault candidate sets and
//! bit-identical diagnostic resolution at any thread count — the
//! determinism guarantee of `scan_diagnosis::parallel`.

#![allow(clippy::float_cmp)] // bit-identical results are the contract

use scan_bist_suite::bist::Scheme;
use scan_bist_suite::diagnosis::{parallel, CampaignSpec, PreparedCampaign};
use scan_bist_suite::netlist::generate;
use scan_bist_suite::soc::{CoreModule, Soc};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

const SCHEMES: [Scheme; 4] = [
    Scheme::RandomSelection,
    Scheme::IntervalBased,
    Scheme::TWO_STEP_DEFAULT,
    Scheme::FixedInterval,
];

fn circuit_campaign() -> PreparedCampaign {
    let circuit = generate::benchmark("s953");
    let mut spec = CampaignSpec::new(100, 4, 4);
    spec.num_faults = 60;
    PreparedCampaign::from_circuit(&circuit, &spec).expect("campaign prepares")
}

#[test]
fn parallel_dr_is_bit_identical_across_thread_counts() {
    let campaign = circuit_campaign();
    for scheme in SCHEMES {
        let serial = campaign.run(scheme).expect("serial run");
        for threads in THREAD_COUNTS {
            let par = campaign.run_parallel(scheme, threads).expect("parallel run");
            assert_eq!(par.dr, serial.dr, "{scheme:?} DR differs at {threads} threads");
            assert_eq!(par.dr_pruned, serial.dr_pruned);
            assert_eq!(par.dr_by_prefix, serial.dr_by_prefix);
            assert_eq!(par.mean_candidates, serial.mean_candidates);
            assert_eq!(par.mean_actual, serial.mean_actual);
            assert_eq!(par.lost_cells, serial.lost_cells);
            assert_eq!(par.faults, serial.faults);
        }
    }
}

#[test]
fn parallel_candidate_sets_match_serial_exactly() {
    let campaign = circuit_campaign();
    for scheme in [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT] {
        let serial = campaign.candidate_sets(scheme).expect("serial candidates");
        assert_eq!(serial.len(), campaign.num_faults());
        for threads in THREAD_COUNTS {
            let par = parallel::candidate_sets(&campaign, scheme, threads)
                .expect("parallel candidates");
            assert_eq!(par, serial, "{scheme:?} candidates differ at {threads} threads");
        }
    }
}

#[test]
fn parallel_run_schemes_matches_individual_runs() {
    let campaign = circuit_campaign();
    let reports = parallel::run_schemes(&campaign, &SCHEMES, 8).expect("batched runs");
    assert_eq!(reports.len(), SCHEMES.len());
    for (scheme, report) in SCHEMES.iter().zip(&reports) {
        let serial = campaign.run(*scheme).expect("serial run");
        assert_eq!(report.dr, serial.dr);
        assert_eq!(report.dr_by_prefix, serial.dr_by_prefix);
    }
}

#[test]
fn parallel_x_masked_campaign_stays_deterministic() {
    let circuit = generate::benchmark("s953");
    let mut spec = CampaignSpec::new(64, 4, 4);
    spec.num_faults = 40;
    spec.x_mask_fraction = 0.1;
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec).expect("campaign prepares");
    let serial = campaign.run(Scheme::TWO_STEP_DEFAULT).expect("serial run");
    for threads in THREAD_COUNTS {
        let par = campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, threads)
            .expect("parallel run");
        assert_eq!(par.dr, serial.dr);
        assert_eq!(par.dr_pruned, serial.dr_pruned);
        assert_eq!(par.lost_cells, serial.lost_cells);
    }
}

#[test]
fn parallel_soc_localization_is_bit_identical() {
    let cores = vec![
        CoreModule::new(generate::benchmark("s298")),
        CoreModule::new(generate::benchmark("s344")),
        CoreModule::new(generate::benchmark("s386")),
    ];
    let soc = Soc::single_chain("trio", cores).expect("soc builds");
    let mut spec = CampaignSpec::new(64, 8, 6);
    spec.num_faults = 25;
    let campaign = PreparedCampaign::from_soc(&soc, 1, &spec).expect("campaign prepares");
    let serial_loc = campaign
        .run_localization(Scheme::TWO_STEP_DEFAULT)
        .expect("serial localization");
    let serial_dr = campaign.run(Scheme::TWO_STEP_DEFAULT).expect("serial run");
    for threads in THREAD_COUNTS {
        let par_loc = campaign
            .run_localization_parallel(Scheme::TWO_STEP_DEFAULT, threads)
            .expect("parallel localization");
        assert_eq!(par_loc.top1_accuracy, serial_loc.top1_accuracy);
        assert_eq!(par_loc.mean_margin, serial_loc.mean_margin);
        let par_dr = campaign
            .run_parallel(Scheme::TWO_STEP_DEFAULT, threads)
            .expect("parallel run");
        assert_eq!(par_dr.dr, serial_dr.dr);
        assert_eq!(par_dr.dr_by_prefix, serial_dr.dr_by_prefix);
    }
}

#[test]
fn parallel_robust_campaign_is_bit_identical_under_noise() {
    use scan_bist_suite::diagnosis::{NoiseConfig, NoiseModel, RobustPolicy};
    let campaign = circuit_campaign();
    let mut cfg = NoiseConfig::noiseless(17);
    cfg.flip_rate = 0.03;
    cfg.dropout_rate = 0.01;
    cfg.intermittent_rate = 0.1;
    cfg.intermittent_miss = 0.4;
    cfg.x_corrupt_fraction = 0.02;
    let noise = NoiseModel::new(cfg).expect("valid noise config");
    let policy = RobustPolicy::default();
    let serial = campaign
        .run_robust(Scheme::TWO_STEP_DEFAULT, &noise, &policy)
        .expect("serial robust run");
    assert!(serial.exact < serial.faults, "noise must perturb something");
    for threads in THREAD_COUNTS {
        let par = campaign
            .run_robust_parallel(Scheme::TWO_STEP_DEFAULT, &noise, &policy, threads)
            .expect("parallel robust run");
        assert_eq!(par.exact, serial.exact, "exact differs at {threads} threads");
        assert_eq!(par.degraded, serial.degraded);
        assert_eq!(par.inconclusive, serial.inconclusive);
        assert_eq!(par.dr, serial.dr);
        assert_eq!(par.mean_candidates, serial.mean_candidates);
        assert_eq!(par.retry_rounds, serial.retry_rounds);
        assert_eq!(par.retried_sessions, serial.retried_sessions);
        assert_eq!(par.fallbacks, serial.fallbacks);
        assert_eq!(par.strict_failures, serial.strict_failures);
        assert_eq!(par.recovered, serial.recovered);
        assert_eq!(par.hits, serial.hits);
    }
}

#[test]
fn auto_thread_count_is_deterministic_too() {
    let campaign = circuit_campaign();
    let serial = campaign.run(Scheme::IntervalBased).expect("serial run");
    let auto = campaign.run_parallel(Scheme::IntervalBased, 0).expect("auto run");
    assert_eq!(auto.dr, serial.dr);
    assert_eq!(auto.dr_by_prefix, serial.dr_by_prefix);
}
