//! Cross-crate integration tests: the full pipeline from netlist text
//! to diagnosed failing cells, exercised end to end.

use scan_bist_suite::prelude::*;
use scan_bist_suite::netlist::{bench, generate};

fn s953() -> Netlist {
    generate::benchmark("s953")
}

#[test]
fn diagnosis_contains_truth_for_every_s27_fault() {
    // Without signature aliasing, the candidate set must contain every
    // true failing cell; verify for the whole collapsed universe of the
    // real s27 netlist under all schemes.
    let circuit = bench::s27();
    let view = ScanView::natural(&circuit, true);
    let patterns = scan_bist_suite::diagnosis::lfsr_patterns(&circuit, 64, 1);
    let fsim = FaultSimulator::new(&circuit, &view, &patterns).unwrap();
    for scheme in [
        Scheme::RandomSelection,
        Scheme::IntervalBased,
        Scheme::TWO_STEP_DEFAULT,
        Scheme::FixedInterval,
    ] {
        let plan = DiagnosisPlan::new(
            ChainLayout::single_chain(view.len()),
            64,
            &BistConfig::new(2, 3, scheme),
        )
        .unwrap();
        for fault in FaultUniverse::collapsed(&circuit).faults() {
            let errors = fsim.error_map(fault);
            if !errors.is_detected() {
                continue;
            }
            let outcome = plan.analyze(errors.iter_bits());
            let diag = diagnose_checked(&plan, &outcome)
                .expect("a detected fault yields a consistent failing history");
            for cell in errors.failing_positions().iter() {
                // A 16-bit MISR aliases with probability ~2^-16 per
                // session; none of s27's few dozen faults hits it.
                assert!(
                    diag.candidates().contains(cell),
                    "scheme {scheme:?}, fault {} lost true cell {cell}",
                    fault.describe(&circuit)
                );
            }
        }
    }
}

#[test]
fn two_step_beats_random_selection_at_few_partitions() {
    // The paper's headline: with few partitions, two-step (clustering-
    // aware) resolves better than pure random selection on a circuit
    // with clustered failing cells.
    let circuit = s953();
    let mut spec = CampaignSpec::new(128, 4, 4);
    spec.num_faults = 150;
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec).unwrap();
    let random = campaign.run(Scheme::RandomSelection).unwrap();
    let two_step = campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
    assert!(
        two_step.dr_by_prefix[0] < random.dr_by_prefix[0],
        "after 1 partition: two-step {} vs random {}",
        two_step.dr_by_prefix[0],
        random.dr_by_prefix[0]
    );
    assert!(
        two_step.dr <= random.dr * 1.15,
        "after 4 partitions two-step must stay competitive: {} vs {}",
        two_step.dr,
        random.dr
    );
}

#[test]
fn interval_saturates_but_random_keeps_improving() {
    // Section 3's motivation: interval-only partitioning loses to
    // random selection once many partitions are used.
    let circuit = s953();
    let mut spec = CampaignSpec::new(128, 4, 8);
    spec.num_faults = 100;
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec).unwrap();
    let random = campaign.run(Scheme::RandomSelection).unwrap();
    let interval = campaign.run(Scheme::IntervalBased).unwrap();
    assert!(
        random.dr < interval.dr,
        "8 partitions: random {} must beat interval {}",
        random.dr,
        interval.dr
    );
}

#[test]
fn pruning_improves_or_preserves_dr() {
    let circuit = s953();
    let mut spec = CampaignSpec::new(128, 8, 4);
    spec.num_faults = 100;
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec).unwrap();
    for scheme in [Scheme::RandomSelection, Scheme::TWO_STEP_DEFAULT] {
        let report = campaign.run(scheme).unwrap();
        assert!(
            report.dr_pruned <= report.dr + 1e-12,
            "{scheme:?}: pruned {} > unpruned {}",
            report.dr_pruned,
            report.dr
        );
    }
}

#[test]
fn fixed_interval_gains_nothing_from_extra_partitions() {
    // Every fixed-interval partition is identical, so partitions 2..n
    // cannot refine the candidate set.
    let circuit = s953();
    let mut spec = CampaignSpec::new(64, 4, 5);
    spec.num_faults = 50;
    let campaign = PreparedCampaign::from_circuit(&circuit, &spec).unwrap();
    let report = campaign.run(Scheme::FixedInterval).unwrap();
    for w in report.dr_by_prefix.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-12, "prefix DRs differ: {w:?}");
    }
}

#[test]
fn bench_roundtrip_preserves_behaviour() {
    // Writing a netlist to .bench text and re-parsing it must preserve
    // functional behaviour: identical golden responses and identical
    // diagnosis for the same named fault. (Net *numbering* may change,
    // so sampled fault campaigns are not expected to be bit-identical.)
    let original = generate::benchmark("s386");
    let reparsed =
        Netlist::from_bench("s386", &original.to_bench_string()).expect("roundtrip parses");
    let view_a = ScanView::natural(&original, true);
    let view_b = ScanView::natural(&reparsed, true);
    let patterns_a = scan_bist_suite::diagnosis::lfsr_patterns(&original, 64, 5);
    let patterns_b = scan_bist_suite::diagnosis::lfsr_patterns(&reparsed, 64, 5);
    let fsim_a = FaultSimulator::new(&original, &view_a, &patterns_a).unwrap();
    let fsim_b = FaultSimulator::new(&reparsed, &view_b, &patterns_b).unwrap();
    assert_eq!(fsim_a.golden(), fsim_b.golden(), "golden responses differ");

    // Same named net, same stuck value → identical error maps.
    let name = "d3";
    let fault_a = Fault::stem(original.find_net(name).unwrap(), true);
    let fault_b = Fault::stem(reparsed.find_net(name).unwrap(), true);
    assert_eq!(fsim_a.error_map(&fault_a), fsim_b.error_map(&fault_b));
}

#[test]
fn multi_chain_soc_diagnosis_locates_faulty_core_region() {
    // On a balanced multi-chain SOC, the diagnosed candidates for a
    // fault in core k should be dominated by core k's cells once enough
    // partitions are used.
    use scan_bist_suite::soc::Soc;
    let cores = vec![
        CoreModule::new(generate::benchmark("s344")),
        CoreModule::new(generate::benchmark("s298")),
        CoreModule::new(generate::benchmark("s386")),
    ];
    let soc = Soc::balanced("trio", cores, 2).unwrap();
    let mut spec = CampaignSpec::new(64, 4, 6);
    spec.num_faults = 30;
    let faulty = 2usize;
    let campaign = PreparedCampaign::from_soc(&soc, faulty, &spec).unwrap();
    let report = campaign.run(Scheme::TWO_STEP_DEFAULT).unwrap();
    // Strong-but-robust property: mean candidates stays well below the
    // total SOC positions (the other cores are mostly pruned).
    assert!(
        report.mean_candidates < soc.total_positions() as f64 / 2.0,
        "mean candidates {} vs {} positions",
        report.mean_candidates,
        soc.total_positions()
    );
}

#[test]
fn campaign_prefix_equals_shorter_campaign() {
    // dr_by_prefix[k-1] of an n-partition run must equal the DR of a
    // k-partition run (prefix property of all schemes).
    let circuit = generate::benchmark("s386");
    let mut spec8 = CampaignSpec::new(64, 4, 6);
    spec8.num_faults = 40;
    let mut spec3 = spec8;
    spec3.partitions = 3;
    for scheme in [
        Scheme::RandomSelection,
        Scheme::IntervalBased,
        Scheme::TWO_STEP_DEFAULT,
    ] {
        let long = PreparedCampaign::from_circuit(&circuit, &spec8)
            .unwrap()
            .run(scheme)
            .unwrap();
        let short = PreparedCampaign::from_circuit(&circuit, &spec3)
            .unwrap()
            .run(scheme)
            .unwrap();
        assert!(
            (long.dr_by_prefix[2] - short.dr).abs() < 1e-12,
            "{scheme:?}: prefix {} vs short-run {}",
            long.dr_by_prefix[2],
            short.dr
        );
    }
}
